"""Query engine over a loaded :class:`~repro.serve.store.TreeArtifact`.

Each query kind maps request parameters (flat string maps, as they
arrive from a query string or JSON body) onto one artifact method and
shapes the answer as a JSON-safe dict.  All answers come from resident
columns in O(answer) time; the engine performs **zero** raw-graph I/O —
the HTTP tests assert this through the store device's IOStats.

Malformed parameters raise :class:`~repro.errors.QueryError` with a
stable machine-readable ``code`` (``bad-query``, ``bad-node``,
``column-missing``, ``source-not-pinned``, ``undecidable``);
:mod:`repro.serve.app` maps codes onto HTTP statuses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import NotADAGError, QueryError
from .store import TreeArtifact

#: Cap on one response's node list; clients page with offset/limit.
MAX_SLICE = 100_000


def _int_param(
    params: Mapping[str, str], key: str, default: Optional[int] = None
) -> int:
    raw = params.get(key)
    if raw is None or raw == "":
        if default is None:
            raise QueryError(f"missing required parameter {key!r}")
        return default
    try:
        return int(raw)
    except ValueError:
        raise QueryError(
            f"parameter {key!r} must be an integer, got {raw!r}"
        ) from None


def _slice_params(params: Mapping[str, str]) -> Tuple[int, int]:
    offset = _int_param(params, "offset", 0)
    limit = _int_param(params, "limit", 0)
    if offset < 0 or limit < 0:
        raise QueryError("offset/limit must be non-negative")
    if limit == 0 or limit > MAX_SLICE:
        limit = MAX_SLICE
    return offset, limit


class QueryEngine:
    """Dispatches named queries against one loaded artifact."""

    def __init__(self, artifact: TreeArtifact) -> None:
        self.artifact = artifact
        self._handlers: Dict[
            str, Callable[[Mapping[str, str]], Dict[str, Any]]
        ] = {
            "order": self._query_order,
            "position": self._query_position,
            "ancestor": self._query_ancestor,
            "path": self._query_path,
            "toposort": self._query_toposort,
            "topo-position": self._query_topo_position,
            "cycle": self._query_cycle,
            "scc": self._query_scc,
            "reachable": self._query_reachable,
            "reachable-set": self._query_reachable_set,
        }

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._handlers))

    def execute(
        self, kind: str, params: Mapping[str, str]
    ) -> Dict[str, Any]:
        """Run one query; raises QueryError/NotADAGError on bad input."""
        handler = self._handlers.get(kind)
        if handler is None:
            raise QueryError(
                f"unknown query kind {kind!r} (known: {', '.join(self.kinds)})",
                code="unknown-query",
            )
        answer = handler(params)
        answer["query"] = kind
        if self.artifact.ref is not None:
            answer["artifact"] = str(self.artifact.ref)
        return answer

    # -- handlers ------------------------------------------------------
    def _query_order(self, params: Mapping[str, str]) -> Dict[str, Any]:
        offset, limit = _slice_params(params)
        nodes = self.artifact.order_slice(offset, limit)
        return {
            "offset": offset,
            "total": self.artifact.node_count,
            "nodes": nodes,
        }

    def _query_position(self, params: Mapping[str, str]) -> Dict[str, Any]:
        node = _int_param(params, "node")
        return {"node": node, "position": self.artifact.position_of(node)}

    def _query_ancestor(self, params: Mapping[str, str]) -> Dict[str, Any]:
        u = _int_param(params, "u")
        v = _int_param(params, "v")
        return {"u": u, "v": v, "ancestor": self.artifact.is_ancestor(u, v)}

    def _query_path(self, params: Mapping[str, str]) -> Dict[str, Any]:
        u = _int_param(params, "u")
        v = _int_param(params, "v")
        return {"u": u, "v": v, "path": self.artifact.tree_path(u, v)}

    def _query_toposort(self, params: Mapping[str, str]) -> Dict[str, Any]:
        offset, limit = _slice_params(params)
        try:
            nodes = self.artifact.toposort_slice(offset, limit)
        except NotADAGError as error:
            raise QueryError(str(error), code="not-a-dag") from error
        return {
            "offset": offset,
            "total": self.artifact.node_count,
            "nodes": nodes,
        }

    def _query_topo_position(
        self, params: Mapping[str, str]
    ) -> Dict[str, Any]:
        node = _int_param(params, "node")
        try:
            position = self.artifact.topo_position(node)
        except NotADAGError as error:
            raise QueryError(str(error), code="not-a-dag") from error
        return {"node": node, "position": position}

    def _query_cycle(self, params: Mapping[str, str]) -> Dict[str, Any]:
        has = self.artifact.has_cycle()
        return {
            "has_cycle": has,
            "witness": self.artifact.cycle_witness if has else None,
        }

    def _query_scc(self, params: Mapping[str, str]) -> Dict[str, Any]:
        if "u" in params or "v" in params:
            u = _int_param(params, "u")
            v = _int_param(params, "v")
            return {"u": u, "v": v, "same_scc": self.artifact.same_scc(u, v)}
        if "node" in params:
            node = _int_param(params, "node")
            return {
                "node": node,
                "scc": self.artifact.scc_of(node),
                "size": self.artifact.scc_size(node),
                "in_cycle": self.artifact.in_cycle(node),
            }
        return {
            "scc_count": self.artifact.scc_count,
            "nodes": self.artifact.node_count,
        }

    def _query_reachable(self, params: Mapping[str, str]) -> Dict[str, Any]:
        u = _int_param(params, "u")
        v = _int_param(params, "v")
        verdict, proof = self.artifact.reachable(u, v)
        return {
            "u": u,
            "v": v,
            "reachable": verdict,
            "certain": verdict is not None,
            "proof": proof or None,
        }

    def _query_reachable_set(
        self, params: Mapping[str, str]
    ) -> Dict[str, Any]:
        source = _int_param(params, "source")
        nodes = self.artifact.reachable_set(source)
        offset, limit = _slice_params(params)
        return {
            "source": source,
            "count": len(nodes),
            "offset": offset,
            "nodes": nodes[offset:offset + limit],
        }


#: The query kinds one engine answers (for docs and the CLI).
QUERY_KINDS: Tuple[str, ...] = (
    "ancestor",
    "cycle",
    "order",
    "path",
    "position",
    "reachable",
    "reachable-set",
    "scc",
    "toposort",
    "topo-position",
)
