"""Versioned artifact store for sealed spanning trees.

The paper's economics are *compute once, query many times*: a
semi-external DFS pays ``O(sort(E))``-ish block I/O once, and every
order / ancestor / toposort / SCC question afterwards is answerable from
the ``O(n)`` resident result.  This module makes that split durable.

An **artifact** is a directory holding a manifest plus CRC-framed
columnar payloads, published atomically under ``<root>/<name>/v<NNNNNN>``::

    <root>/
      <name>/
        v000001/
          manifest.json   # control-plane metadata (schema, digests, counts)
          tree.tree       # the sealed SpanningTree, tree_io wire format
          order.col       # DFS/BFS total order, one int32 per position
          pre.col         # preorder number per node (interval labelling)
          size.col        # subtree size per node
          parent.col      # tree parent per node (-1 at forest roots)
          topo.col        # topological order (DAG artifacts only)
          scc.col         # SCC id per node (when sealed with SCCs)
          selfloop.col    # 1 where the graph has a self-loop
          reach-<s>.col   # exact reachability bitset for pinned source s

Payload files are written through :class:`~repro.storage.BlockDevice`
(every block framed, CRC'd, charged to IOStats, and fault-injectable);
the manifest records a SHA-256 per payload so a swapped or truncated
file is detected at open time even when each individual frame is intact.
Publishing stages the version in a dot-prefixed temp directory and
``os.rename``\\ s it into place, so readers never observe a partial
version.  Versions are immutable once published; re-publishing a name
allocates the next version number.

:class:`TreeArtifact` is the loaded, read-only handle: dense columns
indexed by node id, answering queries in O(answer) time with **zero**
raw-graph I/O.  It is also the new first-class argument to the
``repro.apps`` functions (see docs/API.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import zlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.classify import IntervalIndex
from ..core.tree import SpanningTree
from ..core.tree_io import tree_from_values, tree_values
from ..errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFound,
    NotADAGError,
    QueryError,
)
from ..storage.block_device import DEFAULT_BLOCK_ELEMENTS, BlockDevice
from ..storage.serialization import pack_ints, unpack_ints

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..algorithms.base import RunResult
    from ..graph.disk_graph import DiskGraph

#: Manifest schema version; bumped on any incompatible layout change.
SCHEMA_VERSION = 1

MANIFEST_FILE = "manifest.json"
TREE_FILE = "tree.tree"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_VERSION_DIR_RE = re.compile(r"^v(\d{6})$")
_NO_PARENT = -1


@dataclass(frozen=True)
class ArtifactRef:
    """Resolved address of one published artifact version."""

    name: str
    version: int
    path: str

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}"


def parse_ref(ref: str) -> Tuple[str, Optional[int]]:
    """Split ``"name"`` / ``"name@v3"`` / ``"name@3"`` into name + version.

    Raises:
        ArtifactError: when the reference is syntactically invalid.
    """
    name, sep, tail = ref.partition("@")
    if not _NAME_RE.match(name):
        raise ArtifactError(f"invalid artifact name {name!r}")
    if not sep:
        return name, None
    digits = tail[1:] if tail[:1] == "v" else tail
    if not digits.isdigit():
        raise ArtifactError(f"invalid artifact version {tail!r} in {ref!r}")
    return name, int(digits)


def _json_safe_options(options: object) -> Optional[Dict[str, Any]]:
    """Render a RunOptions-ish object as a JSON-safe string map."""
    if options is None:
        return None
    if isinstance(options, Mapping):
        items = dict(options)
    else:
        items = {
            key: value
            for key, value in vars(options).items()
            if not key.startswith("_")
        }
    return {
        key: value
        for key, value in sorted(items.items())
        if isinstance(value, (str, int, float, bool)) or value is None
    }


class TreeArtifact:
    """A sealed, read-only spanning-tree artifact with query columns.

    All columns are dense lists indexed by node id (``0..n-1``); the
    virtual root ``γ`` never appears in a column.  Query methods answer
    in O(answer) time from resident state and never touch the raw
    graph.  Column-less artifacts (lightweight checkpoints sealed by a
    run) still expose the tree; column queries raise
    :class:`~repro.errors.QueryError` with code ``column-missing``.
    """

    def __init__(
        self,
        manifest: Dict[str, Any],
        tree: SpanningTree,
        *,
        order: Optional[List[int]] = None,
        pre: Optional[List[int]] = None,
        size: Optional[List[int]] = None,
        parent: Optional[List[int]] = None,
        topo: Optional[List[int]] = None,
        scc: Optional[List[int]] = None,
        selfloop: Optional[List[int]] = None,
        reach: Optional[Dict[int, List[int]]] = None,
        ref: Optional[ArtifactRef] = None,
    ) -> None:
        self.manifest = manifest
        self.tree = tree
        self.order = order
        self.pre = pre
        self.size = size
        self.parent = parent
        self.topo = topo
        self.scc = scc
        self.selfloop = selfloop
        self.reach: Dict[int, List[int]] = dict(reach or {})
        self.ref = ref
        self._position: Optional[List[int]] = None
        self._topo_position: Optional[List[int]] = None
        self._scc_sizes: Optional[List[int]] = None
        if order is not None:
            position = [-1] * self.node_count
            for index, node in enumerate(order):
                position[node] = index
            self._position = position
        if topo is not None:
            topo_position = [-1] * self.node_count
            for index, node in enumerate(topo):
                topo_position[node] = index
            self._topo_position = topo_position
        if scc is not None:
            count = int(self.manifest.get("scc_count") or 0)
            sizes = [0] * count
            for component in scc:
                sizes[component] += 1
            self._scc_sizes = sizes

    # -- metadata ------------------------------------------------------
    @property
    def node_count(self) -> int:
        graph = self.manifest.get("graph") or {}
        return int(graph.get("nodes", 0))

    @property
    def edge_count(self) -> int:
        graph = self.manifest.get("graph") or {}
        return int(graph.get("edges", 0))

    @property
    def kind(self) -> str:
        return str(self.manifest.get("kind", ""))

    @property
    def algorithm(self) -> str:
        return str(self.manifest.get("algorithm", ""))

    @property
    def is_dag(self) -> Optional[bool]:
        value = self.manifest.get("is_dag")
        return None if value is None else bool(value)

    @property
    def cycle_witness(self) -> Optional[List[int]]:
        value = self.manifest.get("cycle_witness")
        return None if value is None else [int(node) for node in value]

    @property
    def scc_count(self) -> Optional[int]:
        value = self.manifest.get("scc_count")
        return None if value is None else int(value)

    @property
    def sources(self) -> List[int]:
        return sorted(self.reach)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary of what this artifact can answer."""
        return {
            "ref": None if self.ref is None else str(self.ref),
            "kind": self.kind,
            "algorithm": self.algorithm,
            "nodes": self.node_count,
            "edges": self.edge_count,
            "is_dag": self.is_dag,
            "scc_count": self.scc_count,
            "sources": self.sources,
            "columns": sorted(
                dict(self.manifest.get("columns") or {})
            ),
        }

    # -- validation helpers --------------------------------------------
    def _check_node(self, node: int, role: str = "node") -> None:
        if not 0 <= node < self.node_count:
            raise QueryError(
                f"{role} {node} out of range for {self.node_count} nodes",
                code="bad-node",
            )

    def _require(self, column: Optional[List[int]], name: str) -> List[int]:
        if column is None:
            raise QueryError(
                f"artifact was sealed without the {name!r} column",
                code="column-missing",
            )
        return column

    # -- order ---------------------------------------------------------
    def order_slice(self, offset: int = 0, limit: int = 0) -> List[int]:
        """Nodes in the sealed total order, from ``offset`` (0 = all)."""
        order = self._require(self.order, "order")
        if offset < 0 or limit < 0:
            raise QueryError("offset/limit must be non-negative")
        end = len(order) if limit == 0 else min(len(order), offset + limit)
        return order[offset:end]

    def position_of(self, node: int) -> int:
        """Position of ``node`` in the sealed total order."""
        self._check_node(node)
        position = self._require(self._position, "order")[node]
        if position < 0:
            raise QueryError(
                f"node {node} is not covered by the sealed order",
                code="bad-node",
            )
        return position

    # -- ancestry ------------------------------------------------------
    def is_ancestor(self, u: int, v: int) -> bool:
        """Whether ``u`` is a (non-strict) tree ancestor of ``v``."""
        self._check_node(u, "u")
        self._check_node(v, "v")
        pre = self._require(self.pre, "pre")
        size = self._require(self.size, "size")
        return pre[u] <= pre[v] < pre[u] + size[u]

    def tree_path(self, u: int, v: int) -> Optional[List[int]]:
        """Tree path ``u -> ... -> v`` when ``u`` is an ancestor, else None."""
        if not self.is_ancestor(u, v):
            return None
        parent = self._require(self.parent, "parent")
        path = [v]
        current = v
        while current != u:
            current = parent[current]
            if current == _NO_PARENT:
                raise ArtifactIntegrityError(
                    f"parent chain from {v} escaped the forest before "
                    f"reaching ancestor {u}"
                )
            path.append(current)
        path.reverse()
        return path

    # -- toposort ------------------------------------------------------
    def toposort_slice(self, offset: int = 0, limit: int = 0) -> List[int]:
        """Topological order slice; raises NotADAGError on cyclic graphs."""
        if self.is_dag is False:
            witness = self.cycle_witness or []
            raise NotADAGError(
                f"graph has a cycle: witness {witness}"
            )
        topo = self._require(self.topo, "topo")
        if offset < 0 or limit < 0:
            raise QueryError("offset/limit must be non-negative")
        end = len(topo) if limit == 0 else min(len(topo), offset + limit)
        return topo[offset:end]

    def topo_position(self, node: int) -> int:
        """Position of ``node`` in the sealed topological order."""
        self._check_node(node)
        if self.is_dag is False:
            raise NotADAGError(
                f"graph has a cycle: witness {self.cycle_witness or []}"
            )
        position = self._require(self._topo_position, "topo")[node]
        if position < 0:
            raise QueryError(
                f"node {node} is not covered by the sealed topo order",
                code="bad-node",
            )
        return position

    # -- cycles / SCCs -------------------------------------------------
    def has_cycle(self) -> bool:
        """Whether the sealed graph contains a directed cycle."""
        if self.is_dag is None:
            raise QueryError(
                "artifact was sealed without cycle verification",
                code="column-missing",
            )
        return not self.is_dag

    def find_cycle(self) -> Optional[List[int]]:
        """The sealed cycle witness, or None for acyclic graphs."""
        if self.has_cycle():
            return self.cycle_witness
        return None

    def scc_of(self, node: int) -> int:
        """SCC id of ``node`` (ids index the sealed largest-first list)."""
        self._check_node(node)
        return self._require(self.scc, "scc")[node]

    def scc_size(self, node: int) -> int:
        """Size of the SCC containing ``node``."""
        component = self.scc_of(node)
        sizes = self._scc_sizes or []
        return sizes[component]

    def same_scc(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are strongly connected."""
        return self.scc_of(u) == self.scc_of(v)

    def in_cycle(self, node: int) -> bool:
        """Whether ``node`` lies on some directed cycle."""
        if self.scc_size(node) > 1:
            return True
        selfloop = self._require(self.selfloop, "selfloop")
        return bool(selfloop[node])

    # -- reachability --------------------------------------------------
    def reachable_set(self, source: int) -> List[int]:
        """All nodes reachable from a *pinned* source, ascending."""
        self._check_node(source, "source")
        column = self.reach.get(source)
        if column is None:
            raise QueryError(
                f"source {source} was not pinned when the artifact was "
                f"sealed (pinned: {self.sources})",
                code="source-not-pinned",
            )
        return [node for node, bit in enumerate(column) if bit]

    def reachable(self, u: int, v: int) -> Tuple[Optional[bool], str]:
        """Decide ``u ->* v`` from sealed state alone.

        Returns ``(verdict, proof)`` where ``verdict`` is ``True`` /
        ``False`` when the columns certify an answer and ``None`` when
        they cannot (the caller may recompute from the graph).  Proofs:
        ``identity``, ``pinned-source``, ``tree-path``, ``same-scc``,
        ``topo-order``.
        """
        self._check_node(u, "u")
        self._check_node(v, "v")
        if u == v:
            return True, "identity"
        pinned = self.reach.get(u)
        if pinned is not None:
            return bool(pinned[v]), "pinned-source"
        if self.pre is not None and self.is_ancestor(u, v):
            return True, "tree-path"
        if self.scc is not None and self.scc_of(u) == self.scc_of(v):
            return True, "same-scc"
        if self.is_dag and self._topo_position is not None \
                and self._topo_position[v] < self._topo_position[u]:
            return False, "topo-order"
        return None, ""


def _graph_digest(graph: "DiskGraph") -> int:
    """CRC32 over the edge stream (codec- and kernel-independent).

    Chunking does not affect the digest — int32 packing is fixed-width —
    so the same edge sequence hashes identically under any block size,
    codec, or kernel backend.  Costs one full edge scan (charged).
    """
    digest = 0
    for u_col, v_col in graph.edge_file.scan_columns():
        digest = zlib.crc32(pack_ints(list(u_col)), digest)
        digest = zlib.crc32(pack_ints(list(v_col)), digest)
    return digest


def seal_result(
    graph: "DiskGraph",
    result: "RunResult",
    *,
    memory: Optional[int] = None,
    sources: Sequence[int] = (),
    with_scc: bool = True,
    graph_digest: bool = True,
    options: object = None,
) -> TreeArtifact:
    """Build a full query artifact from a finished run.

    One verification scan classifies every edge against the tree
    (acyclicity + cycle witness + self-loops, exactly the scan the
    ``repro.apps`` functions perform); SCCs are computed only when the
    graph turned out cyclic (on a DAG every node is its own SCC), which
    needs a ``memory`` budget for the backward Kosaraju pass.

    Args:
        graph: the graph the run traversed (scanned for verification).
        result: the finished run (tree + order + costs).
        memory: semi-external budget for the SCC pass; required only
            when ``with_scc`` and the graph has a cycle.
        sources: node ids to pin exact reachability bitsets for.
        with_scc: seal SCC membership columns.
        graph_digest: record a CRC32 of the edge stream (one extra scan).
        options: the RunOptions the run used, recorded in the manifest.

    Raises:
        QueryError: when SCCs are requested on a cyclic graph without a
            ``memory`` budget.
    """
    tree = result.tree
    n = graph.node_count
    order = list(result.order)
    index = IntervalIndex(tree)
    pre = [0] * n
    size = [0] * n
    parent = [_NO_PARENT] * n
    for node in range(n):
        pre[node] = index.pre.get(node, -1)
        size[node] = index.size.get(node, 0)
        up = tree.parent.get(node) if node in tree else None
        if up is not None and not tree.is_virtual(up):
            parent[node] = up

    # Verification scan: first witness in scan order, mirroring
    # apps.cycles.find_cycle / apps.toposort edge-for-edge.
    selfloop = [0] * n
    witness: Optional[List[int]] = None
    for u, v in graph.scan():
        if u == v:
            selfloop[u] = 1
            if witness is None:
                witness = [u]
        elif witness is None and index.is_ancestor(v, u):
            path = [u]
            current = u
            while current != v:
                current = tree.parent[current]
                path.append(current)
            path.reverse()
            witness = path
    is_dag = witness is None

    topo: Optional[List[int]] = None
    if is_dag:
        finish = [
            node for node in tree.postorder() if not tree.is_virtual(node)
        ]
        finish.reverse()
        topo = finish

    scc: Optional[List[int]] = None
    scc_count: Optional[int] = None
    if with_scc:
        if is_dag:
            # Every node is its own SCC; id nodes by traversal order so
            # ids are deterministic without a Kosaraju pass.
            scc = [0] * n
            for position, node in enumerate(order):
                scc[node] = position
            scc_count = n
        else:
            if memory is None:
                raise QueryError(
                    "sealing SCCs on a cyclic graph needs a memory "
                    "budget; pass memory= or with_scc=False",
                    code="bad-query",
                )
            from ..apps.components import strongly_connected_components

            components = strongly_connected_components(graph, memory)
            scc = [0] * n
            for component_id, component in enumerate(components):
                for node in component:
                    scc[node] = component_id
            scc_count = len(components)

    reach: Dict[int, List[int]] = {}
    if sources:
        from ..apps.reachability import reachable_mask

        for source in sorted(set(sources)):
            if not 0 <= source < n:
                raise QueryError(
                    f"pinned source {source} out of range for {n} nodes",
                    code="bad-node",
                )
            reach[source] = list(reachable_mask(graph, source))

    manifest: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": f"{result.algorithm}-tree" if result.algorithm else "tree",
        "algorithm": result.algorithm,
        "graph": {
            "nodes": n,
            "edges": graph.edge_count,
            "crc32": _graph_digest(graph) if graph_digest else None,
        },
        "root": tree.root,
        "kernel": result.kernel,
        "block_codec": result.block_codec,
        "io": {
            "reads": result.io.reads,
            "writes": result.io.writes,
            "passes": result.passes,
        },
        "options": _json_safe_options(options),
        "details": {
            key: value
            for key, value in sorted(result.details.items())
            if isinstance(value, (str, int, float, bool))
        },
        "is_dag": is_dag,
        "cycle_witness": witness,
        "scc_count": scc_count,
    }
    return TreeArtifact(
        manifest,
        tree,
        order=order,
        pre=pre,
        size=size,
        parent=parent,
        topo=topo,
        scc=scc,
        selfloop=selfloop,
        reach=reach,
    )


class ArtifactStore:
    """Filesystem-backed, versioned store of sealed tree artifacts.

    Payloads move through a :class:`BlockDevice` so store I/O is framed,
    CRC'd, charged to :attr:`stats`, and participates in fault
    injection.  Pass the run's own device to charge sealing I/O to the
    run (the algorithms do this); with no device the store owns a
    private one rooted at the store directory.
    """

    def __init__(
        self,
        root: str,
        *,
        device: Optional[BlockDevice] = None,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        if device is None:
            self._device = BlockDevice(
                block_elements=block_elements, directory=self.root
            )
            self._owns_device = True
        else:
            self._device = device
            self._owns_device = False

    @classmethod
    def for_run(cls, device: BlockDevice) -> "ArtifactStore":
        """The store a run seals its own trees into: ``<device>/artifacts``.

        Shares the run's device, so sealing I/O is charged to the run's
        IOStats and participates in its fault plan — checkpointing costs
        exactly what the paper's model says it costs.
        """
        return cls(os.path.join(device.directory, "artifacts"), device=device)

    # -- lifecycle -----------------------------------------------------
    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def stats(self) -> Any:
        """The backing device's :class:`~repro.storage.IOStats`."""
        return self._device.stats

    def close(self) -> None:
        if self._owns_device:
            self._device.close()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalogue -----------------------------------------------------
    def names(self) -> List[str]:
        """Artifact names with at least one published version, sorted."""
        found = []
        for entry in sorted(os.listdir(self.root)):
            if _NAME_RE.match(entry) and os.path.isdir(
                os.path.join(self.root, entry)
            ) and self.versions(entry):
                found.append(entry)
        return found

    def versions(self, name: str) -> List[int]:
        """Published versions of ``name``, ascending (empty if none)."""
        directory = os.path.join(self.root, name)
        if not os.path.isdir(directory):
            return []
        versions = []
        for entry in os.listdir(directory):
            match = _VERSION_DIR_RE.match(entry)
            if match and os.path.isfile(
                os.path.join(directory, entry, MANIFEST_FILE)
            ):
                versions.append(int(match.group(1)))
        return sorted(versions)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise ArtifactNotFound(f"no artifact named {name!r} in {self.root}")
        return versions[-1]

    def _version_dir(self, name: str, version: int) -> str:
        return os.path.join(self.root, name, f"v{version:06d}")

    # -- publish -------------------------------------------------------
    def publish(self, artifact: TreeArtifact, name: str) -> ArtifactRef:
        """Atomically publish ``artifact`` as the next version of ``name``."""
        if not _NAME_RE.match(name):
            raise ArtifactError(f"invalid artifact name {name!r}")
        name_dir = os.path.join(self.root, name)
        os.makedirs(name_dir, exist_ok=True)
        existing = self.versions(name)
        version = (existing[-1] + 1) if existing else 1
        staging = os.path.join(name_dir, f".tmp-v{version:06d}")
        if os.path.isdir(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        try:
            manifest = dict(artifact.manifest)
            manifest["schema"] = SCHEMA_VERSION
            manifest["name"] = name
            manifest["version"] = version

            tree_sha, tree_count = self._write_values(
                os.path.join(staging, TREE_FILE), tree_values(artifact.tree)
            )
            manifest["tree"] = {
                "file": TREE_FILE, "sha256": tree_sha, "values": tree_count,
            }

            columns: Dict[str, Dict[str, Any]] = {}
            for column_name, values in self._column_items(artifact):
                filename = f"{column_name}.col"
                sha, count = self._write_values(
                    os.path.join(staging, filename), values
                )
                columns[column_name] = {
                    "file": filename, "sha256": sha, "count": count,
                }
            manifest["columns"] = columns

            body = json.dumps(manifest, indent=2, sort_keys=True)
            # repro: allow[SEX101] control-plane manifest text, not modelled block I/O
            with open(os.path.join(staging, MANIFEST_FILE), "w",
                      encoding="utf-8") as handle:
                handle.write(body + "\n")

            final = self._version_dir(name, version)
            os.rename(staging, final)
        except OSError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        ref = ArtifactRef(name=name, version=version, path=final)
        artifact.ref = ref
        artifact.manifest = manifest
        return ref

    def publish_result(
        self,
        graph: "DiskGraph",
        result: "RunResult",
        name: str,
        *,
        memory: Optional[int] = None,
        sources: Sequence[int] = (),
        with_scc: bool = True,
        graph_digest: bool = True,
        options: object = None,
    ) -> ArtifactRef:
        """Seal a finished run (see :func:`seal_result`) and publish it."""
        artifact = seal_result(
            graph,
            result,
            memory=memory,
            sources=sources,
            with_scc=with_scc,
            graph_digest=graph_digest,
            options=options,
        )
        return self.publish(artifact, name)

    def publish_tree(
        self,
        tree: SpanningTree,
        name: str,
        *,
        kind: str = "checkpoint",
        algorithm: str = "",
        node_count: int = 0,
        details: Optional[Mapping[str, Any]] = None,
    ) -> ArtifactRef:
        """Publish a tree-only artifact (no query columns).

        This is the lightweight path runs use to seal checkpoints and
        result trees mid-flight: one tree payload plus a manifest, no
        verification scan, no columns.  Open it later and re-seal with
        :func:`seal_result` to add query columns.
        """
        manifest: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "algorithm": algorithm,
            "graph": {"nodes": node_count, "edges": 0, "crc32": None},
            "root": tree.root,
            "kernel": self._device.kernel.name,
            "block_codec": self._device.block_codec,
            "io": None,
            "options": None,
            "details": dict(details or {}),
            "is_dag": None,
            "cycle_witness": None,
            "scc_count": None,
        }
        artifact = TreeArtifact(manifest, tree)
        return self.publish(artifact, name)

    # -- open ----------------------------------------------------------
    def open(self, ref: str, version: Optional[int] = None) -> TreeArtifact:
        """Load an artifact by ``"name"`` / ``"name@vN"`` (read-only).

        Every payload's SHA-256 and value count are checked against the
        manifest; each block's CRC frame is checked by the device.

        Raises:
            ArtifactNotFound: unknown name or version.
            ArtifactIntegrityError: manifest/payload validation failed.
        """
        name, parsed = parse_ref(ref)
        if version is None:
            version = parsed if parsed is not None else self.latest_version(name)
        directory = self._version_dir(name, version)
        manifest = self.read_manifest(name, version)

        tree_meta = manifest.get("tree")
        if not isinstance(tree_meta, dict):
            raise ArtifactIntegrityError(
                f"{directory}: manifest has no tree section"
            )
        values = self._read_values(
            os.path.join(directory, str(tree_meta.get("file", TREE_FILE))),
            expected_sha=str(tree_meta.get("sha256", "")),
            expected_count=int(tree_meta.get("values", -1)),
        )
        tree = tree_from_values(values, context=directory)
        if tree.root != manifest.get("root"):
            raise ArtifactIntegrityError(
                f"{directory}: tree root {tree.root} does not match "
                f"manifest root {manifest.get('root')}"
            )

        columns: Dict[str, List[int]] = {}
        reach: Dict[int, List[int]] = {}
        manifest_columns = manifest.get("columns") or {}
        for column_name in sorted(manifest_columns):
            meta = manifest_columns[column_name]
            column = self._read_values(
                os.path.join(directory, str(meta["file"])),
                expected_sha=str(meta["sha256"]),
                expected_count=int(meta["count"]),
            )
            if column_name.startswith("reach-"):
                reach[int(column_name[len("reach-"):])] = column
            else:
                columns[column_name] = column

        return TreeArtifact(
            manifest,
            tree,
            order=columns.get("order"),
            pre=columns.get("pre"),
            size=columns.get("size"),
            parent=columns.get("parent"),
            topo=columns.get("topo"),
            scc=columns.get("scc"),
            selfloop=columns.get("selfloop"),
            reach=reach,
            ref=ArtifactRef(name=name, version=version, path=directory),
        )

    def read_manifest(self, name: str, version: Optional[int] = None) -> Dict[str, Any]:
        """Parse and schema-check one version's manifest."""
        if version is None:
            version = self.latest_version(name)
        directory = self._version_dir(name, version)
        path = os.path.join(directory, MANIFEST_FILE)
        if not os.path.isfile(path):
            raise ArtifactNotFound(f"no artifact {name}@v{version} in {self.root}")
        try:
            # repro: allow[SEX101] control-plane manifest text, not modelled block I/O
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except ValueError as error:
            raise ArtifactIntegrityError(
                f"{path}: manifest is not valid JSON ({error})"
            ) from error
        if not isinstance(manifest, dict):
            raise ArtifactIntegrityError(f"{path}: manifest is not an object")
        if manifest.get("schema") != SCHEMA_VERSION:
            raise ArtifactIntegrityError(
                f"{path}: unsupported manifest schema "
                f"{manifest.get('schema')!r} (supported: {SCHEMA_VERSION})"
            )
        return manifest

    # -- payload plumbing ----------------------------------------------
    @staticmethod
    def _column_items(
        artifact: TreeArtifact,
    ) -> List[Tuple[str, List[int]]]:
        items: List[Tuple[str, List[int]]] = []
        for column_name in ("order", "pre", "size", "parent", "topo",
                            "scc", "selfloop"):
            values = getattr(artifact, column_name)
            if values is not None:
                items.append((column_name, values))
        for source in sorted(artifact.reach):
            items.append((f"reach-{source}", artifact.reach[source]))
        return items

    def _write_values(
        self, path: str, values: List[int]
    ) -> Tuple[str, int]:
        """Write ``values`` as framed blocks; returns (sha256, count)."""
        digest = hashlib.sha256()
        step = self._device.block_elements
        # repro: allow[SEX101] artifact frames flow through device.write_block, so every block IS charged
        with open(path, "wb") as handle:
            for start in range(0, len(values), step):
                payload = pack_ints(values[start:start + step])
                digest.update(payload)
                self._device.write_block(handle, payload, context=path)
        return digest.hexdigest(), len(values)

    def _read_values(
        self, path: str, *, expected_sha: str, expected_count: int
    ) -> List[int]:
        """Read framed blocks back; verifies sha256 + value count."""
        if not os.path.isfile(path):
            raise ArtifactIntegrityError(f"{path}: payload file is missing")
        digest = hashlib.sha256()
        values: List[int] = []
        # repro: allow[SEX101] artifact frames flow through device.read_block, so every block IS charged
        with open(path, "rb") as handle:
            while True:
                chunk = self._device.read_block(handle, context=path)
                if chunk is None:
                    break
                digest.update(chunk)
                values.extend(unpack_ints(chunk))
        if expected_count >= 0 and len(values) != expected_count:
            raise ArtifactIntegrityError(
                f"{path}: expected {expected_count} values, got {len(values)}"
            )
        if digest.hexdigest() != expected_sha:
            raise ArtifactIntegrityError(
                f"{path}: payload sha256 does not match the manifest"
            )
        return values
