"""``repro.serve`` — publish sealed trees once, answer queries forever.

The serve layer turns the batch reproduction into a system that serves
traffic: a :class:`ArtifactStore` of versioned, checksummed artifacts
(sealed spanning tree + query columns + manifest), a
:class:`QueryEngine` answering order/ancestor/toposort/SCC/reachability
questions in O(answer) time with zero raw-graph I/O, and a stdlib
threaded HTTP service (:func:`serve_forever` / :func:`start_server`)
with request spans, metrics, deadlines, and typed JSON errors.

See docs/SERVE.md for the store layout, manifest schema, and endpoint
reference.
"""

from .app import ServeConfig, ReproServer, serve_forever, start_server
from .queries import QUERY_KINDS, QueryEngine
from .store import (
    SCHEMA_VERSION,
    ArtifactRef,
    ArtifactStore,
    TreeArtifact,
    parse_ref,
    seal_result,
)

__all__ = [
    "QUERY_KINDS",
    "SCHEMA_VERSION",
    "ArtifactRef",
    "ArtifactStore",
    "QueryEngine",
    "ReproServer",
    "ServeConfig",
    "TreeArtifact",
    "parse_ref",
    "seal_result",
    "serve_forever",
    "start_server",
]
