"""Stdlib HTTP service over an :class:`~repro.serve.store.ArtifactStore`.

``ThreadingHTTPServer`` gives a thread per client connection with
HTTP/1.1 keep-alive, so a handful of persistent clients drive thousands
of queries per second without any dependency beyond the standard
library.  Artifacts load once into an in-process cache; every query is
then answered from resident columns — the serve path performs zero
raw-graph I/O (the tests assert this through the store's IOStats).

Endpoints (all JSON):

* ``GET /healthz`` — liveness + artifact count.
* ``GET /metricsz`` — request/error counters and latency gauges.
* ``GET /artifacts`` — catalogue of names and versions.
* ``GET /artifacts/<name>`` — one artifact's manifest summary.
* ``GET|POST /v1/query/<kind>?artifact=<name[@vN]>&…`` — run a query
  (kinds in :data:`~repro.serve.queries.QUERY_KINDS`; POST accepts the
  same parameters as a JSON object body).

Failures return typed JSON ``{"error": {"code", "message"}}``: 400 for
malformed requests, 404 for unknown artifacts/routes, 409 for questions
the sealed columns cannot answer, 504 for requests that exceed their
deadline (``deadline_ms`` parameter, else the server default), 500 for
integrity failures and everything unexpected.

Each request runs under a :mod:`repro.obs` span (when the server is
configured with a trace sink) and updates shared
:class:`~repro.obs.Metrics`; tracers are per-request because span
stacks are not thread-safe, while the sink and metrics are shared
behind locks.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple, cast
from urllib.parse import parse_qsl, urlsplit

from ..errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFound,
    DeadlineExceeded,
    QueryError,
    ReproError,
)
from ..obs import JSONLSink, Metrics, SpanEvent, TraceSink, Tracer
from .queries import QueryEngine
from .store import ArtifactStore, parse_ref

#: QueryError codes that mean "the artifact cannot answer this", not
#: "the request is malformed" — they map to 409 rather than 400.
_CONFLICT_CODES = frozenset(
    {"column-missing", "not-a-dag", "source-not-pinned", "undecidable"}
)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration for one server instance."""

    store_root: str
    host: str = "127.0.0.1"
    port: int = 8080
    #: Default per-request deadline; requests may tighten (never loosen
    #: past ``max_deadline_seconds``) via the ``deadline_ms`` parameter.
    deadline_seconds: float = 2.0
    max_deadline_seconds: float = 30.0
    #: Optional JSONL file receiving one span event per request.
    trace_path: Optional[str] = None


class _LockedSink(TraceSink):
    """Serializes emits from per-request tracers into one shared sink."""

    def __init__(self, inner: TraceSink) -> None:
        self._inner = inner
        self._lock = threading.Lock()

    def emit(self, event: "SpanEvent") -> None:
        with self._lock:
            self._inner.emit(event)


class ReproServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one artifact store."""

    daemon_threads = True

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.store = ArtifactStore(config.store_root)
        self.metrics = Metrics()
        self.metrics_lock = threading.Lock()
        self._trace_file: Optional[JSONLSink] = (
            JSONLSink(config.trace_path) if config.trace_path else None
        )
        self.sink: Optional[TraceSink] = (
            _LockedSink(self._trace_file)
            if self._trace_file is not None else None
        )
        self._engines: Dict[Tuple[str, int], QueryEngine] = {}
        self._engine_lock = threading.Lock()
        super().__init__((config.host, config.port), _RequestHandler)

    # -- artifact cache ------------------------------------------------
    def engine_for(self, ref: str) -> QueryEngine:
        """The (cached) query engine for ``name[@vN]``; loads on miss."""
        name, version = parse_ref(ref)
        if version is None:
            version = self.store.latest_version(name)
        key = (name, version)
        with self._engine_lock:
            engine = self._engines.get(key)
            if engine is None:
                # repro: allow[SEX104] ArtifactStore.open resolves a sealed artifact by name; its payload reads flow through device.read_block
                artifact = self.store.open(name, version)
                engine = QueryEngine(artifact)
                self._engines[key] = engine
            return engine

    def count(self, name: str, amount: int = 1) -> None:
        with self.metrics_lock:
            self.metrics.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        with self.metrics_lock:
            self.metrics.gauge(name, value)

    def close(self) -> None:
        """Stop accepting, close the socket, the store, and the trace."""
        self.server_close()
        self.store.close()
        if self._trace_file is not None:
            self._trace_file.close()


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # Keep-alive responses must leave in one segment: with Nagle on, the
    # separately-written headers and body interact with the client's
    # delayed ACK and every request stalls ~40 ms.
    disable_nagle_algorithm = True

    @property
    def repro(self) -> ReproServer:
        return cast(ReproServer, self.server)

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (metrics cover it)."""

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self.repro.count(f"serve.errors.{code}")
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _deadline(self, params: Mapping[str, str]) -> float:
        config = self.repro.config
        seconds = config.deadline_seconds
        raw = params.get("deadline_ms")
        if raw is not None:
            try:
                seconds = int(raw) / 1000.0
            except ValueError:
                raise QueryError(
                    f"deadline_ms must be an integer, got {raw!r}"
                ) from None
            seconds = min(seconds, config.max_deadline_seconds)
        return time.monotonic() + seconds

    def _check_deadline(self, deadline_at: float) -> None:
        if time.monotonic() >= deadline_at:
            raise DeadlineExceeded("request exceeded its deadline")

    # -- request entry points ------------------------------------------
    def do_GET(self) -> None:
        self._handle(body_params=None)

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        body_params: Dict[str, str] = {}
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except ValueError:
                self._send_error_json(
                    400, "bad-query", "request body is not valid JSON"
                )
                return
            if not isinstance(decoded, dict):
                self._send_error_json(
                    400, "bad-query", "request body must be a JSON object"
                )
                return
            body_params = {
                str(key): str(value) for key, value in decoded.items()
            }
        self._handle(body_params=body_params)

    # -- routing -------------------------------------------------------
    def _handle(self, body_params: Optional[Dict[str, str]]) -> None:
        started = time.monotonic()
        server = self.repro
        server.count("serve.requests")
        split = urlsplit(self.path)
        params: Dict[str, str] = dict(parse_qsl(split.query))
        if body_params:
            params.update(body_params)
        tracer = Tracer(sinks=[server.sink]) if server.sink else None
        try:
            if tracer is not None:
                with tracer.span("request", route=split.path):
                    self._route(split.path, params)
            else:
                self._route(split.path, params)
        except DeadlineExceeded as error:
            self._send_error_json(504, "deadline-exceeded", str(error))
        except ArtifactNotFound as error:
            self._send_error_json(404, "artifact-not-found", str(error))
        except ArtifactIntegrityError as error:
            self._send_error_json(500, "artifact-corrupt", str(error))
        except QueryError as error:
            if error.code == "not-found":
                status = 404
            elif error.code in _CONFLICT_CODES:
                status = 409
            else:
                status = 400
            self._send_error_json(status, error.code, str(error))
        except (ArtifactError, ReproError) as error:
            self._send_error_json(500, "internal", str(error))
        # repro: allow[SEX402] HTTP process boundary: unexpected failures must become typed 500 responses, not dropped connections
        except Exception as error:
            self._send_error_json(500, "internal", f"{type(error).__name__}: {error}")
        finally:
            server.gauge(
                "serve.last_latency_ms",
                (time.monotonic() - started) * 1000.0,
            )

    def _route(self, path: str, params: Dict[str, str]) -> None:
        server = self.repro
        deadline_at = self._deadline(params)
        if path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "artifacts": len(server.store.names()),
            })
            return
        if path == "/metricsz":
            with server.metrics_lock:
                payload = {
                    "counters": dict(server.metrics.counters),
                    "gauges": dict(server.metrics.gauges),
                }
            self._send_json(200, payload)
            return
        if path == "/artifacts":
            names = server.store.names()
            self._send_json(200, {
                "artifacts": [
                    {
                        "name": name,
                        "versions": server.store.versions(name),
                        "latest": server.store.latest_version(name),
                    }
                    for name in names
                ],
            })
            return
        if path.startswith("/artifacts/"):
            ref = path[len("/artifacts/"):]
            engine = server.engine_for(ref)
            self._send_json(200, engine.artifact.describe())
            return
        if path.startswith("/v1/query/"):
            kind = path[len("/v1/query/"):]
            ref = params.get("artifact")
            if not ref:
                raise QueryError("missing required parameter 'artifact'")
            self._check_deadline(deadline_at)
            engine = server.engine_for(ref)
            self._check_deadline(deadline_at)
            answer = engine.execute(kind, params)
            server.count(f"serve.queries.{kind}")
            self._check_deadline(deadline_at)
            self._send_json(200, answer)
            return
        raise QueryError(f"no route for {path!r}", code="not-found")


def start_server(config: ServeConfig) -> ReproServer:
    """Build a server and start it on a background daemon thread.

    The caller owns shutdown: ``server.shutdown(); server.close()``.
    The bound port is ``server.server_address[1]`` (pass ``port=0`` to
    let the OS pick a free one — the tests and the bench harness do).
    """
    server = ReproServer(config)
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return server


def serve_forever(config: ServeConfig) -> None:
    """Run the server on the calling thread until interrupted."""
    server = ReproServer(config)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        server.close()
