"""Semi-external connected components.

Two flavours, both motivating applications from the paper's introduction:

* **weakly connected components** — a single edge scan into an in-memory
  union-find over the node set (``O(n)`` memory, ``scan(m)`` I/Os);
* **strongly connected components** — Kosaraju's algorithm lifted to the
  semi-external model: DFS the graph, reverse the edge file (one scan, one
  write), then DFS the reversal with γ's restart priority set to
  decreasing finish time.  Each tree of the second forest is one SCC.

The second phase uses ``edge-by-batch``, whose restructuring provably
preserves the relative order of γ's surviving children — the restart
priority Kosaraju requires.  (The divide & conquer algorithms reorder root
children during Merge, so they cannot be used for phase two.)
"""

from __future__ import annotations

from typing import Dict, List

from ..api import semi_external_dfs
from ..graph.disk_graph import DiskGraph
from ..algorithms.edge_by_batch import edge_by_batch


class UnionFind:
    """Union-find with path halving and union by size."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.size = [1] * size

    def find(self, node: int) -> int:
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True when they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]
        return True


def weakly_connected_components(graph: DiskGraph) -> List[List[int]]:
    """Components of the underlying undirected graph (one scan)."""
    dsu = UnionFind(graph.node_count)
    for u, v in graph.scan():
        dsu.union(u, v)
    groups: Dict[int, List[int]] = {}
    for node in range(graph.node_count):
        groups.setdefault(dsu.find(node), []).append(node)
    return sorted(groups.values(), key=len, reverse=True)


def _reverse_graph(graph: DiskGraph) -> DiskGraph:
    """Materialize the edge-reversed graph on the same device."""
    return DiskGraph.from_edges(
        graph.device,
        graph.node_count,
        ((v, u) for u, v in graph.scan()),
        validate=False,
    )


def strongly_connected_components(
    graph: DiskGraph,
    memory: int,
    first_pass_algorithm: str = "divide-td",
) -> List[List[int]]:
    """Kosaraju's SCC algorithm in the semi-external model.

    Args:
        graph: the graph on disk.
        memory: semi-external budget ``M`` per DFS phase.
        first_pass_algorithm: algorithm for the forward DFS (any; the
            finish order of *any* valid DFS works).

    Returns:
        The SCCs, largest first; together they partition the node set.
    """
    forward = semi_external_dfs(graph, memory, algorithm=first_pass_algorithm)
    finish_order = [
        node for node in forward.tree.postorder() if not forward.tree.is_virtual(node)
    ]
    priority = list(reversed(finish_order))  # decreasing finish time

    reversed_graph = _reverse_graph(graph)
    try:
        backward = edge_by_batch(reversed_graph, memory, order=priority)
        components = [
            [
                node
                for node in backward.tree.preorder(start=root)
                if not backward.tree.is_virtual(node)
            ]
            for root in backward.tree.children(backward.tree.root)
        ]
    finally:
        reversed_graph.delete()
    return sorted(components, key=len, reverse=True)
