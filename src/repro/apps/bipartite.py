"""Semi-external graph bipartiteness testing.

Another application from the paper's motivation list.  The graph is
symmetrized on disk (bipartiteness concerns the underlying undirected
graph), DFS'd semi-externally, and 2-colored by tree depth parity.  In a
DFS of a symmetric digraph every non-tree edge connects a node to an
ancestor or descendant, so one verification scan comparing endpoint
parities decides bipartiteness and, when it fails, returns an odd-cycle
witness edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..api import semi_external_dfs
from ..graph.disk_graph import DiskGraph


@dataclass
class BipartitenessReport:
    """Outcome of :func:`check_bipartite`."""

    bipartite: bool
    coloring: Optional[Dict[int, int]]  # node -> 0/1 when bipartite
    odd_edge: Optional[Tuple[int, int]]  # a same-color edge otherwise


def _symmetrize(graph: DiskGraph) -> DiskGraph:
    """Materialize ``G ∪ G^R`` on the same device."""

    def both_directions():
        for u, v in graph.scan():
            yield (u, v)
            yield (v, u)

    return DiskGraph.from_edges(
        graph.device, graph.node_count, both_directions(), validate=False
    )


def check_bipartite(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
) -> BipartitenessReport:
    """Test whether the underlying undirected graph is bipartite.

    Args:
        graph: the (directed) graph on disk; edge directions are ignored.
        memory: semi-external budget ``M``.

    Returns:
        A report with the 2-coloring (tree-depth parity) or a witness edge
        whose endpoints got the same color (certifying an odd cycle).
    """
    symmetric = _symmetrize(graph)
    try:
        result = semi_external_dfs(symmetric, memory, algorithm=algorithm)
        tree = result.tree
        color: Dict[int, int] = {}
        depth: Dict[int, int] = {tree.root: 0}
        for node in tree.preorder():
            if node == tree.root:
                continue
            depth[node] = depth[tree.parent[node]] + 1
            if not tree.is_virtual(node):
                color[node] = depth[node] % 2
        for u, v in symmetric.scan():
            if u != v and color[u] == color[v]:
                return BipartitenessReport(False, None, (u, v))
        return BipartitenessReport(True, color, None)
    finally:
        symmetric.delete()
