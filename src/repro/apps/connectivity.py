"""Semi-external articulation points and bridges.

Cut vertices and bridges of the underlying undirected graph are the
classic lowpoint applications of DFS (Tarjan's original use).  They fit
the semi-external model cleanly:

1. symmetrize the edge file and compute a DFS forest semi-externally;
2. one scan accumulates, per node, the minimum discovery time reachable
   through a single non-tree edge (``O(n)`` memory);
3. one bottom-up pass over the in-memory tree folds the per-subtree
   lowpoints and applies the standard criteria:

   * a tree edge ``(p, c)`` is a **bridge** iff ``low[c] > disc[p]``;
   * a non-root ``u`` is an **articulation point** iff some child ``c``
     has ``low[c] >= disc[u]``; the root is one iff it has >= 2 children.

The underlying undirected graph is treated as a *simple* graph: the
symmetrized edge file is deduplicated with one external sort (``sort(m)``
I/Os), so anti-parallel directed pairs and duplicates collapse into one
undirected edge.  Self-loops are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..api import semi_external_dfs
from ..graph.disk_graph import DiskGraph

Edge = Tuple[int, int]


@dataclass
class ConnectivityReport:
    """Articulation points and bridges of the underlying undirected graph."""

    articulation_points: Set[int]
    bridges: Set[Edge]  # canonical orientation: (parent, child) of the tree

    def is_biconnected(self, node_count: int) -> bool:
        """Whether the graph is biconnected (connected, no cut vertex).

        Only meaningful when the graph is connected and has >= 3 nodes.
        """
        return node_count >= 3 and not self.articulation_points


def _symmetrize_simple(graph: DiskGraph) -> DiskGraph:
    """``G ∪ G^R``, deduplicated: every undirected edge appears exactly
    twice (once per direction)."""
    from ..storage.external_sort import sort_edge_file

    def both():
        for u, v in graph.scan():
            if u != v:
                yield (u, v)
                yield (v, u)

    doubled = DiskGraph.from_edges(
        graph.device, graph.node_count, both(), validate=False
    )
    try:
        memory_edges = max(4096, graph.node_count)
        unique = sort_edge_file(
            graph.device, doubled.edge_file, memory_edges=memory_edges, unique=True
        )
    finally:
        doubled.delete()
    return DiskGraph(graph.device, graph.node_count, unique)


def connectivity_report(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
) -> ConnectivityReport:
    """Compute articulation points and bridges semi-externally.

    Args:
        graph: the (directed) graph on disk; direction is ignored.
        memory: semi-external budget ``M``.
        algorithm: which semi-external DFS computes the spanning forest.
    """
    symmetric = _symmetrize_simple(graph)
    try:
        result = semi_external_dfs(symmetric, memory, algorithm=algorithm)
        tree = result.tree

        disc: Dict[int, int] = {
            node: position for position, node in enumerate(result.order)
        }
        parent_of: Dict[int, int] = {}
        for node in result.order:
            parent = tree.parent[node]
            if parent is not None and not tree.is_virtual(parent):
                parent_of[node] = parent

        # Pass 2 (one scan): per node, the best (smallest) discovery time
        # reachable over ONE non-tree edge.  In a DFS forest of a symmetric
        # graph every non-tree edge joins an ancestor/descendant pair; the
        # (child -> parent) counterpart of each tree edge is skipped (the
        # file is deduplicated, so it appears exactly once per direction).
        best_back: Dict[int, int] = {node: disc[node] for node in disc}
        for u, v in symmetric.scan():
            if u == v:
                continue
            if parent_of.get(u) == v or parent_of.get(v) == u:
                continue
            if disc[v] < best_back[u]:
                best_back[u] = disc[v]
            if disc[u] < best_back[v]:
                best_back[v] = disc[u]

        # Pass 3: fold lowpoints bottom-up (reverse preorder = children
        # before parents).
        low = dict(best_back)
        for node in reversed(result.order):
            parent = parent_of.get(node)
            if parent is not None and low[node] < low[parent]:
                low[parent] = low[node]

        articulation: Set[int] = set()
        bridges: Set[Edge] = set()
        root_children: Dict[int, int] = {}
        for node in result.order:
            parent = parent_of.get(node)
            if parent is None:
                continue
            if low[node] > disc[parent]:
                bridges.add((parent, node))
            grand = parent_of.get(parent)
            if grand is None:
                root_children[parent] = root_children.get(parent, 0) + 1
            elif low[node] >= disc[parent]:
                articulation.add(parent)
        for root, children in root_children.items():
            if children >= 2:
                articulation.add(root)
        return ConnectivityReport(articulation, bridges)
    finally:
        symmetric.delete()


def articulation_points(
    graph: DiskGraph, memory: int, algorithm: str = "divide-td"
) -> Set[int]:
    """The cut vertices of the underlying undirected graph."""
    return connectivity_report(graph, memory, algorithm).articulation_points


def bridges(
    graph: DiskGraph, memory: int, algorithm: str = "divide-td"
) -> Set[Edge]:
    """The bridges (cut edges), oriented parent->child in the DFS forest."""
    return connectivity_report(graph, memory, algorithm).bridges


def biconnected_components(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
) -> List[Set[Edge]]:
    """Partition the undirected edges into biconnected components.

    Same semi-external recipe as :func:`connectivity_report` plus one more
    O(n) top-down pass: every non-root node ``c`` either *opens* a new
    component at its tree edge (``low[c] >= disc[parent(c)]``) or inherits
    its parent's component; a back edge belongs to its deep endpoint's
    component.  Edges are returned with canonical ``(min, max)``
    orientation; self-loops are ignored.

    Returns:
        Components (edge sets), largest first; together they partition
        the simple undirected edge set.
    """
    symmetric = _symmetrize_simple(graph)
    try:
        result = semi_external_dfs(symmetric, memory, algorithm=algorithm)
        tree = result.tree
        disc: Dict[int, int] = {
            node: position for position, node in enumerate(result.order)
        }
        parent_of: Dict[int, int] = {}
        for node in result.order:
            parent = tree.parent[node]
            if parent is not None and not tree.is_virtual(parent):
                parent_of[node] = parent

        best_back: Dict[int, int] = {node: disc[node] for node in disc}
        for u, v in symmetric.scan():
            if u == v or parent_of.get(u) == v or parent_of.get(v) == u:
                continue
            if disc[v] < best_back[u]:
                best_back[u] = disc[v]
            if disc[u] < best_back[v]:
                best_back[v] = disc[u]
        low = dict(best_back)
        for node in reversed(result.order):
            parent = parent_of.get(node)
            if parent is not None and low[node] < low[parent]:
                low[parent] = low[node]

        # component representative: preorder is top-down, so parents are
        # resolved before their children
        component_of: Dict[int, int] = {}
        for node in result.order:
            parent = parent_of.get(node)
            if parent is None:
                continue  # roots carry no tree edge
            if low[node] >= disc[parent]:
                component_of[node] = node  # opens a new component
            else:
                component_of[node] = component_of.get(parent, parent)

        groups: Dict[int, Set[Edge]] = {}
        for node, parent in parent_of.items():
            edge = (node, parent) if node < parent else (parent, node)
            groups.setdefault(component_of[node], set()).add(edge)
        for u, v in symmetric.scan():
            if u == v or parent_of.get(u) == v or parent_of.get(v) == u:
                continue
            # deep endpoint = the one discovered later
            deep = u if disc[u] > disc[v] else v
            edge = (u, v) if u < v else (v, u)
            groups[component_of[deep]].add(edge)
        return sorted(groups.values(), key=len, reverse=True)
    finally:
        symmetric.delete()
