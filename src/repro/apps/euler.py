"""Eulerian path / circuit computation — the paper's abstract lists it
among the graph problems that need DFS-style traversal machinery.

The *feasibility* test is fully semi-external: one scan accumulates all
in/out degrees (``O(n)`` memory) and a union-find over the same scan
checks that all edges share one weak component.  *Construction*
(Hierholzer's algorithm) inherently consumes edges in random order, so it
loads the adjacency once (``scan(m)`` I/Os, ``O(n + m)`` memory) — the
documented memory concession, same as the paper's in-memory base case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import InvalidGraphError
from ..graph.disk_graph import DiskGraph
from .components import UnionFind


@dataclass
class EulerReport:
    """Outcome of the Eulerian feasibility test."""

    has_circuit: bool
    has_path: bool
    start: Optional[int]  # a valid start node for the path/circuit
    reason: str


def check_eulerian(graph: DiskGraph) -> EulerReport:
    """Semi-external Eulerian feasibility (one scan).

    A digraph has an Eulerian circuit iff every node has equal in- and
    out-degree and all edges lie in one weakly connected component; a
    (non-circuit) path additionally allows exactly one node with
    ``out = in + 1`` (the start) and one with ``in = out + 1`` (the end).
    """
    n = graph.node_count
    out_degree = [0] * n
    in_degree = [0] * n
    dsu = UnionFind(n)
    edge_count = 0
    first_endpoint: Optional[int] = None
    for u, v in graph.scan():
        out_degree[u] += 1
        in_degree[v] += 1
        dsu.union(u, v)
        edge_count += 1
        if first_endpoint is None:
            first_endpoint = u

    if edge_count == 0:
        return EulerReport(True, True, None, "no edges")

    component = dsu.find(first_endpoint)
    for node in range(n):
        if (out_degree[node] or in_degree[node]) and dsu.find(node) != component:
            return EulerReport(False, False, None, "edges span multiple components")

    surplus_out = [node for node in range(n) if out_degree[node] == in_degree[node] + 1]
    surplus_in = [node for node in range(n) if in_degree[node] == out_degree[node] + 1]
    balanced = all(
        out_degree[node] == in_degree[node]
        for node in range(n)
        if node not in set(surplus_out) | set(surplus_in)
    )
    if not balanced or len(surplus_out) > 1 or len(surplus_in) > 1:
        return EulerReport(False, False, None, "degree imbalance")
    if not surplus_out and not surplus_in:
        return EulerReport(True, True, first_endpoint, "all degrees balanced")
    if len(surplus_out) == 1 and len(surplus_in) == 1:
        return EulerReport(False, True, surplus_out[0], "exactly one source/sink pair")
    return EulerReport(False, False, None, "degree imbalance")


def eulerian_path(graph: DiskGraph) -> Optional[List[int]]:
    """An Eulerian path/circuit as a node sequence, or ``None``.

    Feasibility is checked semi-externally first; construction then loads
    the adjacency once and runs iterative Hierholzer.

    Returns:
        ``[v0, v1, ..., vm]`` visiting every edge exactly once, or
        ``None`` when no Eulerian path exists.  An edgeless graph yields
        an empty list.
    """
    report = check_eulerian(graph)
    if not report.has_path:
        return None
    if report.start is None:
        return []

    adjacency: List[List[int]] = [[] for _ in range(graph.node_count)]
    for u, v in graph.scan():
        adjacency[u].append(v)
    cursor = [0] * graph.node_count

    path: List[int] = []
    stack = [report.start]
    while stack:
        node = stack[-1]
        targets = adjacency[node]
        if cursor[node] < len(targets):
            stack.append(targets[cursor[node]])
            cursor[node] += 1
        else:
            path.append(stack.pop())
    path.reverse()
    if len(path) != graph.edge_count + 1:
        raise InvalidGraphError(
            "internal error: Hierholzer did not consume every edge"
        )
    return path
