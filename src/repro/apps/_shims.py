"""Deprecation plumbing for the graph-signature apps shims.

PR 4 migrated loose keyword options to :class:`~repro.options.RunOptions`
with a warn-once-per-name shim; this module applies the same pattern to
the apps redesign: ``fn(graph, memory, ...)`` still works everywhere,
but warns once per function name that ``fn(artifact, ...)`` answers the
same question from a sealed artifact without recomputing DFS.
"""

from __future__ import annotations

import warnings
from typing import Set

#: Function names whose graph-signature deprecation already fired.
_WARNED_GRAPH_API: Set[str] = set()


def warn_graph_signature(name: str) -> None:
    """Warn (once per process per name) about a graph-first apps call."""
    if name in _WARNED_GRAPH_API:
        return
    _WARNED_GRAPH_API.add(name)
    warnings.warn(
        f"{name}(graph, ...) recomputes from the raw graph on every "
        f"call; publish the run once (repro.serve.ArtifactStore) and "
        f"call {name}(artifact, ...) to answer from the sealed tree",
        DeprecationWarning,
        stacklevel=4,
    )
