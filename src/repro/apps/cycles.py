"""Semi-external cycle detection via DFS back edges.

The graph spellings run one semi-external DFS plus one verification
scan per call; a sealed :class:`~repro.serve.TreeArtifact` already
carries the scan's outcome (``is_dag`` + the first witness in scan
order), so the artifact spellings are O(1) resident reads.  See
docs/API.md for the migration table.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..api import semi_external_dfs
from ..graph.disk_graph import DiskGraph
from ..core.classify import IntervalIndex
from ..serve.store import TreeArtifact
from ._shims import warn_graph_signature


def find_cycle(
    source_data: Union[DiskGraph, TreeArtifact],
    memory: Optional[int] = None,
    algorithm: str = "divide-td",
) -> Optional[List[int]]:
    """Find a directed cycle, or ``None`` when the graph is acyclic.

    On a graph: one semi-external DFS plus one scan — a digraph
    contains a cycle iff a DFS of it has a back edge ``(u, v)`` (``v``
    an ancestor of ``u``); the cycle is then the tree path
    ``v -> ... -> u`` closed by the edge.  On a sealed artifact the
    witness was recorded by the publish-time verification scan (same
    scan order, same first witness) and is returned with zero I/O.

    Returns:
        The cycle as a node list ``[v, ..., u]`` (so that consecutive
        nodes, wrapping around, are connected by edges), or ``None``.
    """
    if isinstance(source_data, TreeArtifact):
        return source_data.find_cycle()
    warn_graph_signature("find_cycle")
    if memory is None:
        raise TypeError("find_cycle(graph, ...) requires a memory budget")
    result = semi_external_dfs(source_data, memory, algorithm=algorithm)
    tree = result.tree
    index = IntervalIndex(tree)
    for u, v in source_data.scan():
        if u == v:
            return [u]
        if index.is_ancestor(v, u):
            # Walk the tree path u -> v upward, then reverse it.
            path = [u]
            current = u
            while current != v:
                current = tree.parent[current]
                path.append(current)
            path.reverse()
            return path
    return None


def has_cycle(
    source_data: Union[DiskGraph, TreeArtifact],
    memory: Optional[int] = None,
    algorithm: str = "divide-td",
) -> bool:
    """Whether the graph (or sealed artifact) contains a directed cycle."""
    if isinstance(source_data, TreeArtifact):
        return source_data.has_cycle()
    return find_cycle(source_data, memory, algorithm=algorithm) is not None
