"""Semi-external cycle detection via DFS back edges."""

from __future__ import annotations

from typing import List, Optional

from ..api import semi_external_dfs
from ..graph.disk_graph import DiskGraph
from ..core.classify import IntervalIndex


def find_cycle(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
) -> Optional[List[int]]:
    """Find a directed cycle, or ``None`` when the graph is acyclic.

    One semi-external DFS plus one scan: a digraph contains a cycle iff a
    DFS of it has a back edge ``(u, v)`` (``v`` an ancestor of ``u``); the
    cycle is then the tree path ``v -> ... -> u`` closed by the edge.

    Returns:
        The cycle as a node list ``[v, ..., u]`` (so that consecutive
        nodes, wrapping around, are connected by edges), or ``None``.
    """
    result = semi_external_dfs(graph, memory, algorithm=algorithm)
    tree = result.tree
    index = IntervalIndex(tree)
    for u, v in graph.scan():
        if u == v:
            return [u]
        if index.is_ancestor(v, u):
            # Walk the tree path u -> v upward, then reverse it.
            path = [u]
            current = u
            while current != v:
                current = tree.parent[current]
                path.append(current)
            path.reverse()
            return path
    return None


def has_cycle(graph: DiskGraph, memory: int, algorithm: str = "divide-td") -> bool:
    """Whether the on-disk graph contains a directed cycle."""
    return find_cycle(graph, memory, algorithm=algorithm) is not None
