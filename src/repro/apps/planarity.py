"""Semi-external planar graph testing.

Planarity testing appears twice in the paper's motivation for DFS (the
abstract and §1).  It has a natural semi-external decomposition:

1. **one scan** deduplicates and counts the simple undirected edges
   (``sort(m)`` I/Os).  Euler's bound says a simple planar graph has
   ``m <= 3n - 6``; a billion-edge graph on few nodes is rejected without
   ever being loaded — for dense inputs the scan *is* the whole test;
2. a graph that survives the bound has ``m < 3n`` edges, i.e.
   ``|G| < 4n = O(n)`` — within the semi-external memory regime — so it
   is loaded and decided by the **left-right (LR) planarity test**
   (Brandes' formulation of de Fraysseix–Rosenstiehl), itself a pure DFS
   algorithm: orient by DFS, sort by nesting depth, and maintain
   conflict pairs of return-edge intervals.

The LR implementation below is iterative throughout (no recursion-depth
limits) and tests only (no embedding is produced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graph.disk_graph import DiskGraph
from ..storage.external_sort import sort_edge_file

Edge = Tuple[int, int]


@dataclass
class PlanarityReport:
    """Outcome of :func:`check_planarity`."""

    planar: bool
    reason: str
    simple_edge_count: int
    loaded: bool  # False when the Euler bound decided without loading


# ----------------------------------------------------------------------
# The left-right planarity test (Brandes' pseudocode, iterative)
# ----------------------------------------------------------------------
class _Interval:
    __slots__ = ("low", "high")

    def __init__(self, low=None, high=None):
        self.low = low
        self.high = high

    def empty(self):
        return self.low is None and self.high is None

    def conflicting(self, b, lowpt):
        """Whether this interval conflicts with return point of edge b."""
        return not self.empty() and lowpt[self.high] > lowpt[b]


class _ConflictPair:
    __slots__ = ("L", "R")

    def __init__(self, L=None, R=None):
        self.L = L if L is not None else _Interval()
        self.R = R if R is not None else _Interval()

    def swap(self):
        self.L, self.R = self.R, self.L

    def lowest(self, lowpt):
        if self.L.empty():
            return lowpt[self.R.low]
        if self.R.empty():
            return lowpt[self.L.low]
        return min(lowpt[self.L.low], lowpt[self.R.low])


class _NotPlanar(Exception):
    pass


class _LRPlanarity:
    """Left-right planarity test over a simple undirected adjacency."""

    def __init__(self, node_count: int, adjacency: Dict[int, List[int]]):
        self.n = node_count
        self.adj = adjacency
        self.height: Dict[int, Optional[int]] = {v: None for v in adjacency}
        self.parent_edge: Dict[int, Optional[Edge]] = {v: None for v in adjacency}
        self.lowpt: Dict[Edge, int] = {}
        self.lowpt2: Dict[Edge, int] = {}
        self.nesting_depth: Dict[Edge, int] = {}
        self.oriented: Set[Edge] = set()
        self.ordered_adj: Dict[int, List[int]] = {}
        self.ref: Dict[Edge, Optional[Edge]] = {}
        self.lowpt_edge: Dict[Edge, Edge] = {}
        self.S: List[_ConflictPair] = []
        self.stack_bottom: Dict[Edge, Optional[_ConflictPair]] = {}

    # -- phase 1: orientation ------------------------------------------
    def _dfs_orientation(self, root: int) -> None:
        adj = self.adj
        height = self.height
        lowpt = self.lowpt
        lowpt2 = self.lowpt2
        nesting_depth = self.nesting_depth
        parent_edge = self.parent_edge
        oriented = self.oriented

        height[root] = 0
        dfs_stack = [root]
        ind: Dict[int, int] = {}
        skip_init: Set[Edge] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = parent_edge[v]
            neighbors = adj[v]
            position = ind.get(v, 0)
            descend = False
            while position < len(neighbors):
                w = neighbors[position]
                vw = (v, w)
                if vw not in skip_init:
                    if vw in oriented or (w, v) in oriented:
                        position += 1
                        continue
                    oriented.add(vw)
                    lowpt[vw] = height[v]
                    lowpt2[vw] = height[v]
                    if height[w] is None:  # tree edge: descend into w
                        parent_edge[w] = vw
                        height[w] = height[v] + 1
                        skip_init.add(vw)
                        ind[v] = position
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        descend = True
                        break
                    lowpt[vw] = height[w]  # back edge
                # post-processing of vw (after recursion for tree edges)
                nesting_depth[vw] = 2 * lowpt[vw]
                if lowpt2[vw] < height[v]:
                    nesting_depth[vw] += 1  # chordal
                if e is not None:
                    if lowpt[vw] < lowpt[e]:
                        lowpt2[e] = min(lowpt[e], lowpt2[vw])
                        lowpt[e] = lowpt[vw]
                    elif lowpt[vw] > lowpt[e]:
                        lowpt2[e] = min(lowpt2[e], lowpt[vw])
                    else:
                        lowpt2[e] = min(lowpt2[e], lowpt2[vw])
                position += 1
            if not descend:
                ind[v] = position

    # -- phase 2: testing -----------------------------------------------
    def _top(self) -> Optional[_ConflictPair]:
        return self.S[-1] if self.S else None

    def _add_constraints(self, ei: Edge, e: Edge) -> None:
        lowpt = self.lowpt
        S = self.S
        ref = self.ref
        P = _ConflictPair()
        # merge return edges of ei into P.R
        while True:
            Q = S.pop()
            if not Q.L.empty():
                Q.swap()
            if not Q.L.empty():
                raise _NotPlanar
            if lowpt[Q.R.low] > lowpt[e]:  # merge intervals
                if P.R.empty():
                    P.R.high = Q.R.high
                else:
                    ref[P.R.low] = Q.R.high
                P.R.low = Q.R.low
            else:  # align
                ref[Q.R.low] = self.lowpt_edge[e]
            if self._top() is self.stack_bottom[ei]:
                break
        # merge conflicting return edges of e1,...,e_{i-1} into P.L
        while self._top() is not None and (
            self._top().L.conflicting(ei, lowpt)
            or self._top().R.conflicting(ei, lowpt)
        ):
            Q = S.pop()
            if Q.R.conflicting(ei, lowpt):
                Q.swap()
            if Q.R.conflicting(ei, lowpt):
                raise _NotPlanar
            # merge interval below lowpt(ei) into P.R
            ref[P.R.low] = Q.R.high
            if Q.R.low is not None:
                P.R.low = Q.R.low
            if P.L.empty():
                P.L.high = Q.L.high
            else:
                ref[P.L.low] = Q.L.high
            P.L.low = Q.L.low
        if not (P.L.empty() and P.R.empty()):
            S.append(P)

    def _trim_back_edges(self, u: int) -> None:
        """Remove back edges returning to parent u (when leaving v)."""
        lowpt = self.lowpt
        S = self.S
        height_u = self.height[u]
        # drop entire conflict pairs
        while S and S[-1].lowest(lowpt) == height_u:
            P = S.pop()
            if P.L.low is not None:
                self.side[P.L.low] = -1
        if S:
            P = S.pop()
            # trim left interval
            while P.L.high is not None and P.L.high[1] == u:
                P.L.high = self.ref.get(P.L.high)
            if P.L.high is None and P.L.low is not None:
                # just emptied
                self.ref[P.L.low] = P.R.low
                self.side[P.L.low] = -1
                P.L.low = None
            # trim right interval
            while P.R.high is not None and P.R.high[1] == u:
                P.R.high = self.ref.get(P.R.high)
            if P.R.high is None and P.R.low is not None:
                self.ref[P.R.low] = P.L.low
                self.side[P.R.low] = -1
                P.R.low = None
            S.append(P)

    def _dfs_testing(self, root: int) -> None:
        height = self.height
        lowpt = self.lowpt
        parent_edge = self.parent_edge
        S = self.S
        stack_bottom = self.stack_bottom
        lowpt_edge = self.lowpt_edge

        dfs_stack = [root]
        ind: Dict[int, int] = {}
        skip_init: Set[Edge] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = parent_edge[v]
            neighbors = self.ordered_adj[v]
            position = ind.get(v, 0)
            descend = False
            while position < len(neighbors):
                w = neighbors[position]
                ei = (v, w)
                if ei not in skip_init:
                    stack_bottom[ei] = self._top()
                    if ei == parent_edge[w]:  # tree edge: descend
                        skip_init.add(ei)
                        ind[v] = position
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        descend = True
                        break
                    # back edge
                    lowpt_edge[ei] = ei
                    S.append(_ConflictPair(R=_Interval(ei, ei)))
                # Integrate new return edges.  ``lowpt[ei] < height[v]``
                # implies v is not a root (height 0 is minimal), so the
                # parent edge ``e`` exists in both branches.
                if lowpt[ei] < height[v]:
                    if position == 0:
                        lowpt_edge[e] = lowpt_edge[ei]
                    else:
                        self._add_constraints(ei, e)
                position += 1
            if descend:
                continue
            ind[v] = position
            # leaving v: remove back edges returning to the parent
            if e is not None:
                u = e[0]
                self._trim_back_edges(u)
                if lowpt[e] < height[u]:  # e has return edge
                    top = self._top()
                    if top is not None:
                        hl = top.L.high
                        hr = top.R.high
                        if hl is not None and (
                            hr is None or lowpt[hl] > lowpt[hr]
                        ):
                            self.ref[e] = hl
                        else:
                            self.ref[e] = hr

    # -- driver ----------------------------------------------------------
    def is_planar(self) -> bool:
        # Euler bound (cheap second guard; the caller already applied it)
        edge_total = sum(len(t) for t in self.adj.values()) // 2
        if self.n > 2 and edge_total > 3 * self.n - 6:
            return False
        self.side: Dict[Edge, int] = {}
        roots = []
        for v in self.adj:
            if self.height[v] is None:
                roots.append(v)
                self._dfs_orientation(v)
        # sort adjacency by nesting depth
        nesting = self.nesting_depth
        for v in self.adj:
            outgoing = [w for w in self.adj[v] if (v, w) in self.oriented]
            outgoing.sort(key=lambda w: nesting[(v, w)])
            self.ordered_adj[v] = outgoing
        try:
            for root in roots:
                self._dfs_testing(root)
        except _NotPlanar:
            return False
        return True


def lr_planarity(node_count: int, edges) -> bool:
    """In-memory LR planarity test over an edge iterable (simple graph
    is derived internally: duplicates, directions, self-loops collapse)."""
    seen: Set[Edge] = set()
    adjacency: Dict[int, List[int]] = {v: [] for v in range(node_count)}
    for u, v in edges:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
    if node_count > 2 and len(seen) > 3 * node_count - 6:
        return False
    return _LRPlanarity(node_count, adjacency).is_planar()


def check_planarity(graph: DiskGraph, memory: int = 0) -> PlanarityReport:
    """Semi-external planarity test of the underlying undirected graph.

    Args:
        graph: the (directed) graph on disk; direction is ignored.
        memory: accepted for interface symmetry with the other apps; the
            post-filter graph always fits (``|G| < 4n``).

    Returns:
        A :class:`PlanarityReport`; ``loaded`` is False when the Euler
        bound rejected the graph from the dedup scan alone.
    """
    node_count = graph.node_count
    # one external-sort pass gives the simple undirected edge count
    canonical = DiskGraph.from_edges(
        graph.device,
        node_count,
        (((u, v) if u < v else (v, u)) for u, v in graph.scan() if u != v),
        validate=False,
    )
    try:
        unique = sort_edge_file(
            graph.device,
            canonical.edge_file,
            memory_edges=max(4096, node_count),
            unique=True,
        )
    finally:
        canonical.delete()
    try:
        simple_m = unique.edge_count
        if node_count > 2 and simple_m > 3 * node_count - 6:
            return PlanarityReport(
                planar=False,
                reason=f"Euler bound: {simple_m} > 3n-6 = {3 * node_count - 6}",
                simple_edge_count=simple_m,
                loaded=False,
            )
        planar = lr_planarity(node_count, unique.scan())
        reason = "left-right test " + ("passed" if planar else "found a conflict")
        return PlanarityReport(
            planar=planar, reason=reason, simple_edge_count=simple_m, loaded=True
        )
    finally:
        unique.delete()
