"""DFS-powered applications from the paper's motivation list — topological
sort, connected components (weak, strong, biconnected), cycle detection,
bipartiteness, articulation points and bridges, Eulerian paths, planarity
testing, and reachability — all operating on graphs that live on disk."""

from .bipartite import BipartitenessReport, check_bipartite
from .euler import EulerReport, check_eulerian, eulerian_path
from .connectivity import (
    ConnectivityReport,
    articulation_points,
    biconnected_components,
    bridges,
    connectivity_report,
)
from .components import (
    UnionFind,
    strongly_connected_components,
    weakly_connected_components,
)
from .cycles import find_cycle, has_cycle
from .planarity import PlanarityReport, check_planarity, lr_planarity
from .reachability import (
    reachability_counts,
    reachable_mask,
    reachable_set,
    reaches,
)
from .toposort import sealed_topological_order, topological_order

__all__ = [
    "BipartitenessReport",
    "ConnectivityReport",
    "EulerReport",
    "PlanarityReport",
    "UnionFind",
    "articulation_points",
    "biconnected_components",
    "bridges",
    "check_bipartite",
    "check_eulerian",
    "check_planarity",
    "connectivity_report",
    "eulerian_path",
    "find_cycle",
    "has_cycle",
    "lr_planarity",
    "reachability_counts",
    "reachable_mask",
    "reachable_set",
    "reaches",
    "sealed_topological_order",
    "strongly_connected_components",
    "topological_order",
    "weakly_connected_components",
]
