"""Semi-external topological sort — the first motivating application.

A DFS forest's reverse finishing order is a topological order of a DAG, so
topological sort on disk reduces to one semi-external DFS plus one
verification scan that looks for back edges (which certify a cycle).
"""

from __future__ import annotations

from typing import List, Optional

from ..api import semi_external_dfs
from ..errors import NotADAGError
from ..graph.disk_graph import DiskGraph
from ..core.classify import IntervalIndex


def topological_order(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
    start: Optional[int] = None,
) -> List[int]:
    """Topologically sort an on-disk DAG.

    Args:
        graph: the graph on disk.
        memory: semi-external budget ``M`` (elements, ``>= 3 |V|``).
        algorithm: which semi-external DFS to use.

    Returns:
        A topological order over all nodes (sources first).

    Raises:
        NotADAGError: if the graph contains a cycle (detected by a back
            edge w.r.t. the computed DFS forest).
    """
    result = semi_external_dfs(graph, memory, algorithm=algorithm, start=start)
    index = IntervalIndex(result.tree)
    # A digraph is cyclic iff a DFS of it has a back edge: an edge whose
    # target is a (non-strict) ancestor of its source.
    for u, v in graph.scan():
        if u == v or index.is_ancestor(v, u):
            raise NotADAGError(
                f"graph has a cycle: edge ({u}, {v}) is a back edge"
            )
    finish_order = [
        node for node in result.tree.postorder() if not result.tree.is_virtual(node)
    ]
    finish_order.reverse()
    return finish_order
