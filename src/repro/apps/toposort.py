"""Semi-external topological sort — the first motivating application.

A DFS forest's reverse finishing order is a topological order of a DAG,
so topological sort on disk reduces to one semi-external DFS plus one
verification scan that looks for back edges (which certify a cycle).

The artifact-first API skips both: sealing a run
(:func:`repro.serve.seal_result`) performs the verification scan once
and stores the reverse finishing order as the ``topo`` column, so
``topological_order(artifact)`` is a resident O(n) read.  The
``topological_order(graph, memory, ...)`` spelling still computes from
scratch but warns once per process; see docs/API.md.
"""

from __future__ import annotations

from typing import List, Optional, Union, overload

from ..api import semi_external_dfs
from ..errors import NotADAGError
from ..graph.disk_graph import DiskGraph
from ..core.classify import IntervalIndex
from ..serve.store import TreeArtifact, seal_result
from ._shims import warn_graph_signature


@overload
def topological_order(
    source_data: TreeArtifact,
    memory: None = ...,
    algorithm: str = ...,
    start: Optional[int] = ...,
) -> List[int]: ...


@overload
def topological_order(
    source_data: DiskGraph,
    memory: int,
    algorithm: str = ...,
    start: Optional[int] = ...,
) -> List[int]: ...


def topological_order(
    source_data: Union[DiskGraph, TreeArtifact],
    memory: Optional[int] = None,
    algorithm: str = "divide-td",
    start: Optional[int] = None,
) -> List[int]:
    """Topologically sort an on-disk DAG (or a sealed artifact of one).

    Args:
        source_data: a sealed :class:`~repro.serve.TreeArtifact`
            (answers from the resident ``topo`` column, zero graph
            I/O), or the graph on disk (deprecated; recomputes DFS).
        memory: semi-external budget ``M`` (elements, ``>= 3 |V|``);
            required for the graph spelling, ignored for artifacts.
        algorithm: which semi-external DFS to use (graph spelling only).

    Returns:
        A topological order over all nodes (sources first).

    Raises:
        NotADAGError: if the graph contains a cycle (detected by a back
            edge w.r.t. the computed DFS forest).
    """
    if isinstance(source_data, TreeArtifact):
        return source_data.toposort_slice()
    warn_graph_signature("topological_order")
    if memory is None:
        raise TypeError(
            "topological_order(graph, ...) requires a memory budget"
        )
    result = semi_external_dfs(
        source_data, memory, algorithm=algorithm, start=start
    )
    index = IntervalIndex(result.tree)
    # A digraph is cyclic iff a DFS of it has a back edge: an edge whose
    # target is a (non-strict) ancestor of its source.
    for u, v in source_data.scan():
        if u == v or index.is_ancestor(v, u):
            raise NotADAGError(
                f"graph has a cycle: edge ({u}, {v}) is a back edge"
            )
    finish_order = [
        node for node in result.tree.postorder() if not result.tree.is_virtual(node)
    ]
    finish_order.reverse()
    return finish_order


def sealed_topological_order(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
    start: Optional[int] = None,
) -> List[int]:
    """Compute-and-seal helper: run DFS, seal, and read the topo column.

    Equivalent to the deprecated graph spelling (identical order; a
    cycle raises :class:`~repro.errors.NotADAGError` with the sealed
    witness) but routed through :func:`repro.serve.seal_result` — the
    CLI uses it so ``repro toposort`` exercises the artifact path
    without a deprecation warning.
    """
    result = semi_external_dfs(graph, memory, algorithm=algorithm, start=start)
    artifact = seal_result(graph, result, with_scc=False, graph_digest=False)
    return artifact.toposort_slice()
