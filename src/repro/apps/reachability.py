"""Semi-external single-source reachability.

Reachability queries are another §1 motivation.  With only ``O(n)``
memory, the reachable set of a source is computed by *semi-external
label propagation*: keep one bit per node, scan the edge file, and mark
``v`` whenever ``u`` is already marked; repeat until a scan makes no
change.  Each scan costs ``scan(m)`` I/Os and the pass count is bounded
by the depth of the BFS layering compressed by in-scan chaining (edges
that happen to be ordered source-first propagate within one pass —
another face of the locality observation in the paper's §4.1).
"""

from __future__ import annotations

from typing import List, Set

from ..graph.disk_graph import DiskGraph


def reachable_set(graph: DiskGraph, source: int, max_passes: int = 0) -> Set[int]:
    """All nodes reachable from ``source`` (including itself).

    Args:
        max_passes: optional safety cap; 0 means unlimited (the loop
            always terminates in at most ``n`` passes).
    """
    if not 0 <= source < graph.node_count:
        raise ValueError(f"source {source} out of range")
    marked = bytearray(graph.node_count)
    marked[source] = 1
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        for u, v in graph.scan():
            if marked[u] and not marked[v]:
                marked[v] = 1
                changed = True
        if max_passes and passes >= max_passes:
            break
    return {node for node in range(graph.node_count) if marked[node]}


def reaches(graph: DiskGraph, source: int, target: int) -> bool:
    """Whether ``target`` is reachable from ``source``."""
    if not 0 <= target < graph.node_count:
        raise ValueError(f"target {target} out of range")
    return target in reachable_set(graph, source)


def reachability_counts(graph: DiskGraph, sources: List[int]) -> List[int]:
    """Size of the reachable set for each source (one propagation each)."""
    return [len(reachable_set(graph, source)) for source in sources]
