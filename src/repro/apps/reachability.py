"""Semi-external single-source reachability.

Reachability queries are another §1 motivation.  With only ``O(n)``
memory, the reachable set of a source is computed by *semi-external
label propagation*: keep one bit per node, scan the edge file, and mark
``v`` whenever ``u`` is already marked; repeat until a scan makes no
change.  Each scan costs ``scan(m)`` I/Os and the pass count is bounded
by the depth of the BFS layering compressed by in-scan chaining (edges
that happen to be ordered source-first propagate within one pass —
another face of the locality observation in the paper's §4.1).

The artifact-first API answers from a sealed
:class:`~repro.serve.TreeArtifact` instead: exact bitsets for sources
pinned at publish time, and certificate-based verdicts (tree path, SCC
membership, topological order) for arbitrary pairs — zero graph I/O
either way.  The graph-scanning spellings below still work but warn
once per name; see docs/API.md for the migration table.
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from ..errors import QueryError
from ..graph.disk_graph import DiskGraph
from ..serve.store import TreeArtifact
from ._shims import warn_graph_signature


def reachable_mask(
    graph: DiskGraph, source: int, max_passes: int = 0
) -> bytearray:
    """One bit per node: reachable from ``source`` (the propagation core).

    Args:
        max_passes: optional safety cap; 0 means unlimited (the loop
            always terminates in at most ``n`` passes).
    """
    if not 0 <= source < graph.node_count:
        raise ValueError(f"source {source} out of range")
    marked = bytearray(graph.node_count)
    marked[source] = 1
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        for u, v in graph.scan():
            if marked[u] and not marked[v]:
                marked[v] = 1
                changed = True
        if max_passes and passes >= max_passes:
            break
    return marked


def reachable_set(
    source_data: Union[DiskGraph, TreeArtifact],
    source: int,
    max_passes: int = 0,
) -> Set[int]:
    """All nodes reachable from ``source`` (including itself).

    Pass a :class:`~repro.serve.TreeArtifact` to answer from the sealed
    bitset of a pinned source with zero graph I/O; passing a graph
    propagates labels over the edge file (deprecated spelling).
    """
    if isinstance(source_data, TreeArtifact):
        return set(source_data.reachable_set(source))
    warn_graph_signature("reachable_set")
    marked = reachable_mask(source_data, source, max_passes=max_passes)
    return {node for node in range(source_data.node_count) if marked[node]}


def reaches(
    source_data: Union[DiskGraph, TreeArtifact], source: int, target: int
) -> bool:
    """Whether ``target`` is reachable from ``source``.

    On an artifact this uses the sealed certificates (pinned bitset,
    tree path, SCC membership, topological order); when none of them
    decides the pair it raises :class:`~repro.errors.QueryError` with
    code ``undecidable`` rather than guessing — recompute from the
    graph, or pin the source at publish time.
    """
    if isinstance(source_data, TreeArtifact):
        verdict, _proof = source_data.reachable(source, target)
        if verdict is None:
            raise QueryError(
                f"sealed columns cannot decide {source} ->* {target}; "
                "pin the source at publish time for exact answers",
                code="undecidable",
            )
        return verdict
    warn_graph_signature("reaches")
    if not 0 <= target < source_data.node_count:
        raise ValueError(f"target {target} out of range")
    return bool(reachable_mask(source_data, source)[target])


def reachability_counts(
    source_data: Union[DiskGraph, TreeArtifact], sources: List[int]
) -> List[int]:
    """Size of the reachable set for each source (one propagation each)."""
    if isinstance(source_data, TreeArtifact):
        return [len(source_data.reachable_set(source)) for source in sources]
    warn_graph_signature("reachability_counts")
    return [
        sum(reachable_mask(source_data, source)) for source in sources
    ]
