"""repro — semi-external, I/O-efficient depth-first search.

A production-quality reproduction of Zhang, Yu, Qin & Shang,
*"Divide & Conquer: I/O Efficient Depth-First Search"* (SIGMOD 2015):
DFS a directed graph whose edge set lives on disk, holding only a spanning
tree (plus a bounded batch of edges) in memory.

Quickstart::

    from repro import BlockDevice, DiskGraph, semi_external_dfs
    from repro.graph import random_graph

    with BlockDevice() as device:
        graph = DiskGraph.from_digraph(device, random_graph(50_000, 5, seed=1))
        result = semi_external_dfs(graph, memory=250_000, algorithm="divide-td")
        print(result.order[:10], result.io.total, "block I/Os")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from ._version import __version__
from .api import ALGORITHMS, register_algorithm, semi_external_dfs
from .algorithms.base import BFSResult, DFSResult, RunResult
from .algorithms.bfs import semi_external_bfs
from .obs import NullTracer, SpanEvent, Tracer
from .options import RunOptions
from .registry import AlgorithmRegistry, AlgorithmSpec
from .errors import (
    ConvergenceError,
    CorruptBlockError,
    InvalidDivisionError,
    InvalidGraphError,
    MemoryBudgetExceeded,
    NotADAGError,
    ReproError,
    RetriesExhausted,
    StorageError,
    TransientIOError,
)
from .graph.digraph import Digraph
from .graph.disk_graph import DiskGraph
from .storage.block_device import BlockDevice
from .storage.buffer_pool import MemoryBudget
from .storage.faults import FaultPlan

__all__ = [
    "ALGORITHMS",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "BFSResult",
    "BlockDevice",
    "ConvergenceError",
    "CorruptBlockError",
    "DFSResult",
    "Digraph",
    "DiskGraph",
    "FaultPlan",
    "InvalidDivisionError",
    "InvalidGraphError",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "NotADAGError",
    "NullTracer",
    "ReproError",
    "RetriesExhausted",
    "RunOptions",
    "RunResult",
    "SpanEvent",
    "StorageError",
    "Tracer",
    "TransientIOError",
    "__version__",
    "register_algorithm",
    "semi_external_bfs",
    "semi_external_dfs",
]
