"""The algorithm registry: declared specs instead of a bare name→callable dict.

Each algorithm is described by an :class:`AlgorithmSpec` — canonical
name, aliases (the paper calls the batch baseline ``SEMI-DFS``), the
runner callable, the set of :class:`~repro.options.RunOptions` fields it
understands, and a one-line description for ``--help`` output.  The
:class:`AlgorithmRegistry` resolves names and aliases, drives the CLI's
``--algorithm`` choices and ``repro compare`` enumeration, and stays a
``Mapping[str, callable]`` so existing ``ALGORITHMS[...]`` callers keep
working unchanged.  Third parties add entries with
:func:`register_algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Tuple,
)

if TYPE_CHECKING:
    from .algorithms.base import RunResult

#: The runner signature every registered algorithm implements:
#: ``runner(graph, memory, start=..., **option_kwargs) -> RunResult``
#: (a :class:`~repro.algorithms.base.DFSResult` for the DFS family, a
#: :class:`~repro.algorithms.base.BFSResult` for semi-external BFS).
AlgorithmRunner = Callable[..., "RunResult"]

#: Options every algorithm understands.
BASE_OPTIONS = frozenset(
    {"max_passes", "deadline_seconds", "tracer", "block_codec"}
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declared metadata for one registered DFS algorithm.

    Attributes:
        name: canonical registry name (``divide-td``).
        runner: the callable implementing the algorithm.
        description: one line for CLI help and ``repro compare`` output.
        aliases: alternative lookup names (``semi-dfs``).
        options: the :class:`~repro.options.RunOptions` field names the
            runner accepts; explicitly setting any other option raises.
        slow: excluded from ``repro compare`` sweeps unless explicitly
            requested (the quadratic edge-by-edge heuristic).
    """

    name: str
    runner: AlgorithmRunner
    description: str
    aliases: Tuple[str, ...] = ()
    options: "frozenset[str]" = field(default=BASE_OPTIONS)
    slow: bool = False


class AlgorithmRegistry(Mapping[str, AlgorithmRunner]):
    """Name → algorithm resolution with alias support.

    Iteration (and therefore ``len``/``in``/``set(...)``) covers both
    canonical names and aliases, preserving the historical shape of the
    ``repro.ALGORITHMS`` dict; :meth:`specs` yields each algorithm once.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, AlgorithmSpec] = {}
        self._by_name: Dict[str, AlgorithmSpec] = {}

    def register(self, spec: AlgorithmSpec) -> AlgorithmSpec:
        """Add ``spec``; every name and alias must be unused."""
        names = (spec.name,) + spec.aliases
        for name in names:
            if name in self._by_name:
                raise ValueError(f"algorithm name {name!r} is already registered")
        self._specs[spec.name] = spec
        for name in names:
            self._by_name[name] = spec
        return spec

    def spec(self, name: str) -> AlgorithmSpec:
        """Resolve a canonical name or alias to its spec.

        Raises:
            ValueError: for unknown names, listing the registered ones.
        """
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise ValueError(
                f"unknown algorithm {name!r}; known: {known}"
            ) from None

    def specs(self) -> List[AlgorithmSpec]:
        """Every registered spec once, in registration order."""
        return list(self._specs.values())

    # Mapping[str, AlgorithmRunner] — the legacy ``ALGORITHMS`` dict shape.
    def __getitem__(self, name: str) -> AlgorithmRunner:
        spec = self._by_name.get(name)
        if spec is None:
            raise KeyError(name)
        return spec.runner

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:
        return f"AlgorithmRegistry({sorted(self._by_name)})"
