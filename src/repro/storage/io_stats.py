"""I/O accounting for the simulated external-memory model.

The paper analyses algorithms in the external-memory (EM) model of
Aggarwal & Vitter: main memory holds ``M`` elements, disk transfers move one
block of ``B`` elements per I/O.  Everything the paper plots in its "(b) I/O"
panels is a count of such block transfers.  :class:`IOStats` is the mutable
counter threaded through the storage layer; :class:`IOSnapshot` is an
immutable point-in-time copy used to compute per-phase deltas.

Since the resilience layer landed, the counter also tracks the *physical*
cost of surviving failures — ``retries`` (extra attempts beyond the first),
``faults`` (injected or observed block-level failures), and
``checksum_failures`` (blocks whose CRC did not match).  Those never feed
into :attr:`IOSnapshot.total`: the logical read/write charges the paper
reasons about are identical with and without faults, which is exactly the
invariant the fault tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable point-in-time copy of an :class:`IOStats` counter.

    ``reads``/``writes`` are logical block transfers; ``retries``,
    ``faults`` and ``checksum_failures`` are resilience-layer observables
    (see the module docstring) and are excluded from :attr:`total`.
    ``edge_bytes_raw``/``edge_bytes_stored`` track the edge-block codec:
    logical (uncompressed, 8 bytes/edge) versus on-disk payload bytes of
    every edge block moved in either direction.
    """

    reads: int
    writes: int
    retries: int = 0
    faults: int = 0
    checksum_failures: int = 0
    edge_bytes_raw: int = 0
    edge_bytes_stored: int = 0

    @property
    def total(self) -> int:
        """Total logical block transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def compression_ratio(self) -> float:
        """Raw-over-stored edge bytes (``1.0`` when nothing moved)."""
        if self.edge_bytes_stored <= 0:
            return 1.0
        return self.edge_bytes_raw / self.edge_bytes_stored

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            self.reads - other.reads,
            self.writes - other.writes,
            self.retries - other.retries,
            self.faults - other.faults,
            self.checksum_failures - other.checksum_failures,
            self.edge_bytes_raw - other.edge_bytes_raw,
            self.edge_bytes_stored - other.edge_bytes_stored,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            self.reads + other.reads,
            self.writes + other.writes,
            self.retries + other.retries,
            self.faults + other.faults,
            self.checksum_failures + other.checksum_failures,
            self.edge_bytes_raw + other.edge_bytes_raw,
            self.edge_bytes_stored + other.edge_bytes_stored,
        )


class IOStats:
    """Mutable counter of block reads and writes (plus fault observables).

    One :class:`IOStats` instance belongs to each
    :class:`~repro.storage.block_device.BlockDevice`; every block transfer
    performed through that device increments it.  Algorithms observe costs
    by snapshotting before and after a phase::

        before = device.stats.snapshot()
        ...          # do I/O
        cost = device.stats.snapshot() - before
    """

    __slots__ = (
        "reads", "writes", "retries", "faults", "checksum_failures",
        "edge_bytes_raw", "edge_bytes_stored",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.retries = 0
        self.faults = 0
        self.checksum_failures = 0
        self.edge_bytes_raw = 0
        self.edge_bytes_stored = 0

    def add_reads(self, blocks: int = 1) -> None:
        """Record ``blocks`` block reads."""
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        self.reads += blocks

    def add_writes(self, blocks: int = 1) -> None:
        """Record ``blocks`` block writes."""
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        self.writes += blocks

    def add_retries(self, attempts: int = 1) -> None:
        """Record ``attempts`` extra block-transfer attempts (not charged)."""
        if attempts < 0:
            raise ValueError("attempt count must be non-negative")
        self.retries += attempts

    def add_faults(self, count: int = 1) -> None:
        """Record ``count`` block-level faults (injected or observed)."""
        if count < 0:
            raise ValueError("fault count must be non-negative")
        self.faults += count

    def add_checksum_failures(self, count: int = 1) -> None:
        """Record ``count`` blocks whose CRC did not match on read."""
        if count < 0:
            raise ValueError("failure count must be non-negative")
        self.checksum_failures += count

    def add_edge_bytes(self, raw: int, stored: int) -> None:
        """Record one edge block moved: logical vs on-disk payload bytes.

        Charged by the edge-file layer on every edge-block read and write
        (never for non-edge payloads such as stack pages or checkpoints),
        so ``edge_bytes_raw / edge_bytes_stored`` is the block codec's
        measured compression ratio.
        """
        if raw < 0 or stored < 0:
            raise ValueError("byte counts must be non-negative")
        self.edge_bytes_raw += raw
        self.edge_bytes_stored += stored

    def absorb(self, delta: IOSnapshot) -> None:
        """Fold another run's measured delta into this counter.

        The parallel part scheduler uses this to aggregate each worker
        process's I/O (measured on the worker's own device) into the
        parent run's counter, so ``DFSResult.io`` reports the whole
        run's block transfers no matter which process paid them.
        """
        if min(delta.reads, delta.writes, delta.retries, delta.faults,
               delta.checksum_failures, delta.edge_bytes_raw,
               delta.edge_bytes_stored) < 0:
            raise ValueError("cannot absorb a negative I/O delta")
        self.reads += delta.reads
        self.writes += delta.writes
        self.retries += delta.retries
        self.faults += delta.faults
        self.checksum_failures += delta.checksum_failures
        self.edge_bytes_raw += delta.edge_bytes_raw
        self.edge_bytes_stored += delta.edge_bytes_stored

    @property
    def total(self) -> int:
        """Total logical block transfers so far."""
        return self.reads + self.writes

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(
            self.reads, self.writes, self.retries, self.faults,
            self.checksum_failures, self.edge_bytes_raw,
            self.edge_bytes_stored,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.reads = 0
        self.writes = 0
        self.retries = 0
        self.faults = 0
        self.checksum_failures = 0
        self.edge_bytes_raw = 0
        self.edge_bytes_stored = 0

    def __repr__(self) -> str:
        extras = ""
        if self.retries or self.faults or self.checksum_failures:
            extras = (
                f", retries={self.retries}, faults={self.faults}, "
                f"checksum_failures={self.checksum_failures}"
            )
        return f"IOStats(reads={self.reads}, writes={self.writes}{extras})"
