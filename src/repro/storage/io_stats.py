"""I/O accounting for the simulated external-memory model.

The paper analyses algorithms in the external-memory (EM) model of
Aggarwal & Vitter: main memory holds ``M`` elements, disk transfers move one
block of ``B`` elements per I/O.  Everything the paper plots in its "(b) I/O"
panels is a count of such block transfers.  :class:`IOStats` is the mutable
counter threaded through the storage layer; :class:`IOSnapshot` is an
immutable point-in-time copy used to compute per-phase deltas.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable point-in-time copy of an :class:`IOStats` counter."""

    reads: int
    writes: int

    @property
    def total(self) -> int:
        """Total block transfers (reads + writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(self.reads - other.reads, self.writes - other.writes)

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(self.reads + other.reads, self.writes + other.writes)


class IOStats:
    """Mutable counter of block reads and writes.

    One :class:`IOStats` instance belongs to each
    :class:`~repro.storage.block_device.BlockDevice`; every block transfer
    performed through that device increments it.  Algorithms observe costs
    by snapshotting before and after a phase::

        before = device.stats.snapshot()
        ...          # do I/O
        cost = device.stats.snapshot() - before
    """

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0

    def add_reads(self, blocks: int = 1) -> None:
        """Record ``blocks`` block reads."""
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        self.reads += blocks

    def add_writes(self, blocks: int = 1) -> None:
        """Record ``blocks`` block writes."""
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        self.writes += blocks

    @property
    def total(self) -> int:
        """Total block transfers so far."""
        return self.reads + self.writes

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(self.reads, self.writes)

    def reset(self) -> None:
        """Zero both counters."""
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        return f"IOStats(reads={self.reads}, writes={self.writes})"
