"""Logical memory accounting for the semi-external model.

The paper's problem statement fixes a memory budget ``M`` with
``k * |V| <= M <= |G|`` where ``k`` is a small constant (the paper uses
``k = 3`` as its example) and ``|G| = |V| + |E|``.  :class:`MemoryBudget`
tracks named charges against ``M`` in *elements* — the same unit as the EM
model — so the algorithms can ask "how many more edges fit next to the
spanning tree?" without the answer depending on Python object overheads.
"""

from __future__ import annotations

from typing import Dict

from ..errors import MemoryBudgetExceeded

#: The paper's example constant: an in-memory spanning tree over ``n`` nodes
#: is charged ``k * n`` elements (parent pointer, sibling order key, depth).
TREE_NODE_COST = 3


class MemoryBudget:
    """Named element charges against a fixed budget ``M``.

    >>> budget = MemoryBudget(100)
    >>> budget.charge("tree", 60)
    >>> budget.available
    40
    >>> budget.release("tree")
    >>> budget.available
    100
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("memory capacity must be positive")
        self.capacity = capacity
        self._charges: Dict[str, int] = {}

    @property
    def used(self) -> int:
        """Total elements currently charged."""
        return sum(self._charges.values())

    @property
    def available(self) -> int:
        """Elements still free under the budget."""
        return self.capacity - self.used

    def charged(self, label: str) -> int:
        """Current charge under ``label`` (0 when absent)."""
        return self._charges.get(label, 0)

    def can_fit(self, amount: int) -> bool:
        """Whether ``amount`` more elements fit in the budget."""
        return amount <= self.available

    def charge(self, label: str, amount: int) -> None:
        """Add ``amount`` elements under ``label``.

        Raises:
            MemoryBudgetExceeded: if the charge would exceed the capacity.
        """
        if amount < 0:
            raise ValueError("charge amount must be non-negative")
        if amount > self.available:
            raise MemoryBudgetExceeded(
                f"charging {amount} elements under {label!r} exceeds budget: "
                f"{self.used}/{self.capacity} used"
            )
        self._charges[label] = self._charges.get(label, 0) + amount

    def set_charge(self, label: str, amount: int) -> None:
        """Replace the charge under ``label`` with ``amount``.

        The new amount competes only with what *other* labels hold — the
        label's own current charge is released by the replacement — so
        the check (and the error message) compare ``amount`` against
        ``capacity - used_elsewhere``:

        >>> budget = MemoryBudget(10)
        >>> budget.charge("tree", 6)
        >>> budget.set_charge("tree", 9)   # 9 <= 10 - 0 used elsewhere
        >>> budget.charged("tree")
        9
        >>> budget.charge("batch", 1)
        >>> budget.set_charge("tree", 10)  # 10 > 10 - 1 used elsewhere
        Traceback (most recent call last):
            ...
        repro.errors.MemoryBudgetExceeded: setting 'tree' to 10 elements exceeds budget: 1/10 used elsewhere
        """
        if amount < 0:
            raise ValueError("charge amount must be non-negative")
        current = self._charges.get(label, 0)
        used_elsewhere = self.used - current
        if amount > self.capacity - used_elsewhere:
            raise MemoryBudgetExceeded(
                f"setting {label!r} to {amount} elements exceeds budget: "
                f"{used_elsewhere}/{self.capacity} used elsewhere"
            )
        if amount == 0:
            self._charges.pop(label, None)
        else:
            self._charges[label] = amount

    def release(self, label: str) -> None:
        """Drop the charge under ``label`` (no-op when absent)."""
        self._charges.pop(label, None)

    def release_all(self) -> None:
        """Drop every charge."""
        self._charges.clear()

    def tree_charge(self, node_count: int) -> int:
        """The element cost of an in-memory spanning tree over ``node_count``
        nodes (``k * n`` with the paper's ``k = 3``)."""
        return TREE_NODE_COST * node_count

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(capacity={self.capacity}, used={self.used}, "
            f"charges={self._charges!r})"
        )
