"""Deterministic fault injection for the storage stack.

A :class:`FaultPlan` is an immutable, seeded description of how a device
misbehaves: transient read/write errors, torn (in-flight) blocks, persistent
bit-flip corruption, and injected latency.  Passing a plan to
:class:`~repro.storage.block_device.BlockDevice` makes every block transfer
consult a :class:`FaultInjector` bound to the plan; because the injector
draws from a private ``random.Random(seed)`` in a fixed order per
operation, *the same workload under the same plan replays the exact same
failure schedule*.  That turns "does DFS survive disk trouble?" into a
reproducible one-line assertion (see ``tests/faults/``).

Fault taxonomy (and survivability):

``read-error`` / ``write-error``
    The transfer raises :class:`~repro.errors.TransientIOError` before any
    bytes move — the simulated ``EIO``/timeout.  Survivable: the device
    retries with backoff and the retry re-draws.
``torn-read``
    The block's bytes are damaged *in flight*: the payload the reader sees
    is truncated or bit-flipped but the disk is intact.  Survivable: the
    CRC check fails, the device re-reads, and the second read is clean.
``corrupt-write``
    A bit is flipped in the payload *as persisted*, after the CRC was
    computed.  Unsurvivable by retry: every read of that block fails its
    checksum and the device raises
    :class:`~repro.errors.CorruptBlockError` — the error is *detected*,
    never silently classified.
``latency``
    The transfer sleeps ``latency_seconds`` first.  Never fails anything;
    exists so time-based harnesses see realistic jitter.

``max_faults`` caps the total number of injected faults, so a plan can be
made survivable by construction ("exactly 50 transient faults, then a
clean disk").  The injector records every injection in
:attr:`FaultInjector.log` for tests that assert an exact schedule.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import TransientIOError

#: Environment variable consulted by :func:`FaultPlan.from_env` (and the
#: CLI's ``--fault-seed`` default) — the CI fault-injection matrix sets it.
FAULT_SEED_ENV_VAR = "REPRO_FAULT_SEED"

#: Fault kinds as they appear in :attr:`FaultInjector.log`.
READ_ERROR = "read-error"
WRITE_ERROR = "write-error"
TORN_READ = "torn-read"
CORRUPT_WRITE = "corrupt-write"
LATENCY = "latency"


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded description of a device's failure behaviour.

    Attributes:
        seed: seed for the private RNG; two injectors bound to equal plans
            produce identical schedules for identical operation sequences.
        read_error_rate: probability a read attempt raises
            :class:`~repro.errors.TransientIOError` (re-drawn per retry).
        write_error_rate: probability a write attempt raises
            :class:`~repro.errors.TransientIOError` (re-drawn per retry).
        torn_read_rate: probability a read's payload arrives damaged
            (detected by CRC, healed by re-read).
        corrupt_write_rate: probability a written block is persisted with a
            flipped bit (detected on every subsequent read; *unsurvivable*).
        latency_rate: probability a transfer sleeps ``latency_seconds``.
        latency_seconds: injected latency per latency fault.
        max_faults: total fault budget across all kinds; ``None`` is
            unlimited.  Latency injections count against the budget too.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_read_rate: float = 0.0
    corrupt_write_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "write_error_rate", "torn_read_rate",
                     "corrupt_write_rate", "latency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {value}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")

    @classmethod
    def transient(cls, seed: int, rate: float = 0.02,
                  max_faults: Optional[int] = None) -> "FaultPlan":
        """A survivable plan: transient read/write errors and torn reads only."""
        return cls(seed=seed, read_error_rate=rate, write_error_rate=rate,
                   torn_read_rate=rate / 2, max_faults=max_faults)

    @classmethod
    def from_env(cls, rate: float = 0.02,
                 max_faults: Optional[int] = None) -> Optional["FaultPlan"]:
        """Build a transient plan from ``$REPRO_FAULT_SEED``; ``None`` if unset."""
        raw = os.environ.get(FAULT_SEED_ENV_VAR)
        if not raw:
            return None
        return cls.transient(int(raw), rate=rate, max_faults=max_faults)

    def bind(self) -> "FaultInjector":
        """Create a fresh injector replaying this plan from the start."""
        return FaultInjector(self)


@dataclass
class FaultEvent:
    """One injected fault, as recorded in :attr:`FaultInjector.log`."""

    op_index: int  # ordinal of the block operation (reads + writes)
    kind: str  # one of the module's fault-kind constants
    attempt: int  # 0 = first attempt, 1+ = retries


class FaultInjector:
    """Mutable replay state for one :class:`FaultPlan` on one device.

    The :class:`~repro.storage.block_device.BlockDevice` calls the hook
    methods below from inside its retry loop.  Draw order per hook is
    fixed (latency, then error, then damage), so a schedule is a pure
    function of the plan and the operation sequence.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.log: List[FaultEvent] = []
        self._rng = random.Random(plan.seed)
        self._op_index = 0

    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    @property
    def exhausted(self) -> bool:
        """Whether the plan's fault budget is spent."""
        budget = self.plan.max_faults
        return budget is not None and self.injected >= budget

    def _fire(self, rate: float) -> bool:
        if rate <= 0.0 or self.exhausted:
            # Keep the draw even when the budget is spent so the schedule
            # *prefix* is identical between bounded and unbounded plans.
            if rate > 0.0:
                self._rng.random()
            return False
        return self._rng.random() < rate

    def _record(self, kind: str, attempt: int) -> None:
        self.log.append(FaultEvent(self._op_index, kind, attempt))

    def _maybe_sleep(self, attempt: int) -> None:
        if self._fire(self.plan.latency_rate):
            self._record(LATENCY, attempt)
            if self.plan.latency_seconds > 0:
                time.sleep(self.plan.latency_seconds)

    # ------------------------------------------------------------------
    # hooks called by BlockDevice
    # ------------------------------------------------------------------
    def begin_op(self) -> int:
        """Advance the operation ordinal (one logical block transfer)."""
        self._op_index += 1
        return self._op_index

    def before_read(self, attempt: int) -> None:
        """Latency / transient-error injection for one read attempt."""
        self._maybe_sleep(attempt)
        if self._fire(self.plan.read_error_rate):
            self._record(READ_ERROR, attempt)
            raise TransientIOError(
                f"injected transient read error (op {self._op_index}, "
                f"attempt {attempt})"
            )

    def before_write(self, attempt: int) -> None:
        """Latency / transient-error injection for one write attempt."""
        self._maybe_sleep(attempt)
        if self._fire(self.plan.write_error_rate):
            self._record(WRITE_ERROR, attempt)
            raise TransientIOError(
                f"injected transient write error (op {self._op_index}, "
                f"attempt {attempt})"
            )

    def damage_read(self, payload: bytes, attempt: int) -> bytes:
        """Possibly damage a read payload in flight (torn block)."""
        if payload and self._fire(self.plan.torn_read_rate):
            self._record(TORN_READ, attempt)
            return _damage(payload, self._rng)
        return payload

    def damage_write(self, payload: bytes) -> bytes:
        """Possibly damage a write payload as persisted (bit flip)."""
        if payload and self._fire(self.plan.corrupt_write_rate):
            self._record(CORRUPT_WRITE, attempt=0)
            return _damage(payload, self._rng, tear=False)
        return payload


def _damage(payload: bytes, rng: random.Random, tear: bool = True) -> bytes:
    """Return a damaged copy of ``payload``: a bit flip or (optionally) a tear."""
    if tear and rng.random() < 0.5:
        # Torn block: a prefix of the payload followed by nothing.
        return payload[: rng.randrange(len(payload))]
    position = rng.randrange(len(payload))
    flipped = payload[position] ^ (1 << rng.randrange(8))
    return payload[:position] + bytes((flipped,)) + payload[position + 1:]
