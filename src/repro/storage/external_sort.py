"""External merge sort over edge files.

Implements the classic ``sort(N)`` primitive of the EM model: form
memory-sized sorted runs in one scan, then k-way merge the runs.  The
library uses it to deduplicate generated datasets and for the edge-locality
ablation (sorting the edge file by the source's preorder position before
running the baselines).

All I/O flows through :class:`~repro.storage.edge_file.EdgeFile`, so run
formation and merging are charged exactly one I/O per block moved.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from .block_device import BlockDevice
from .edge_file import EdgeFile
from .serialization import Edge

SortKey = Callable[[Edge], object]


def _form_runs(
    device: BlockDevice,
    source: EdgeFile,
    memory_edges: int,
    key: Optional[SortKey],
) -> List[EdgeFile]:
    """Scan ``source`` once, emitting sorted runs of ``memory_edges`` edges."""
    runs: List[EdgeFile] = []
    buffer: List[Edge] = []

    def emit() -> None:
        if not buffer:
            return
        buffer.sort(key=key)
        run = device.create_edge_file()
        run.extend(buffer)
        runs.append(run.seal())
        buffer.clear()

    for edge in source.scan():
        buffer.append(edge)
        if len(buffer) >= memory_edges:
            emit()
    emit()
    return runs


def _merge_runs(
    device: BlockDevice,
    runs: List[EdgeFile],
    key: Optional[SortKey],
    unique: bool,
) -> EdgeFile:
    """K-way merge sorted runs into a single sealed edge file."""
    output = device.create_edge_file()
    key_fn = key if key is not None else lambda edge: edge

    streams: List[Iterator[Edge]] = [run.scan() for run in runs]
    heap: List[Tuple[object, int, Edge]] = []
    for index, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (key_fn(first), index, first))

    previous: Optional[Edge] = None
    while heap:
        _, index, edge = heapq.heappop(heap)
        if not unique or edge != previous:
            output.append(*edge)
            previous = edge
        following = next(streams[index], None)
        if following is not None:
            heapq.heappush(heap, (key_fn(following), index, following))
    return output.seal()


def sort_edge_file(
    device: BlockDevice,
    source: EdgeFile,
    memory_edges: int,
    key: Optional[SortKey] = None,
    unique: bool = False,
    delete_runs: bool = True,
) -> EdgeFile:
    """Sort ``source`` into a new sealed edge file on ``device``.

    Args:
        memory_edges: run size — how many edges fit in memory at once.
        key: sort key over ``(u, v)`` pairs; natural tuple order if omitted.
        unique: drop consecutive duplicate edges during the merge.
        delete_runs: remove intermediate run files afterwards.

    Returns:
        A new sealed :class:`EdgeFile` with the sorted (optionally deduped)
        edges.  ``source`` is left untouched.
    """
    if memory_edges <= 0:
        raise ValueError("memory_edges must be positive")
    tracer = device.tracer
    with tracer.span(
        "sort", edges=source.edge_count, memory_edges=memory_edges
    ) as sort_span:
        with tracer.span("sort.runs"):
            runs = _form_runs(device, source, memory_edges, key)
        sort_span.annotate(runs=len(runs))
        tracer.count("sort.runs_formed", len(runs))
        if not runs:
            return device.create_edge_file().seal()
        if len(runs) == 1 and not unique:
            return runs[0]
        with tracer.span("sort.merge", runs=len(runs)):
            merged = _merge_runs(device, runs, key, unique)
        if delete_runs:
            for run in runs:
                run.delete()
        return merged
