"""On-disk edge files: the representation of a graph's edge set on disk.

An :class:`EdgeFile` stores ``(u, v)`` pairs in blocks of
``device.block_elements`` edges.  Its life cycle is write-then-scan:

1. the file is created writable by
   :meth:`~repro.storage.block_device.BlockDevice.create_edge_file`;
2. edges are appended with :meth:`EdgeFile.append` /
   :meth:`EdgeFile.extend`;
3. :meth:`EdgeFile.seal` finishes writing, after which the file may be
   scanned any number of times (each scan paying ``ceil(m / B)`` read I/Os).

:class:`PartitionWriter` routes a single scan of a parent file into ``p``
part files — the one-pass division materialization used by Divide-Star and
Divide-TD.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Sequence

from ..errors import ClosedFileError, StorageError
from .block_device import BlockDevice
from .serialization import EDGE_BYTES, Edge, pack_edges, unpack_edges


class EdgeFile:
    """A block-structured file of directed edges on a :class:`BlockDevice`.

    Not constructed directly; use
    :meth:`BlockDevice.create_edge_file`.
    """

    def __init__(self, device: BlockDevice, path: str) -> None:
        self.device = device
        self.path = path
        self._write_buffer: List[Edge] = []
        self._handle = open(path, "wb")
        self._sealed = False
        self._deleted = False
        self.edge_count = 0
        self.block_count = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if self._sealed:
            raise StorageError(f"edge file {self.path} is sealed; cannot append")

    def append(self, u: int, v: int) -> None:
        """Append one edge.  Flushes a block when the buffer fills."""
        self._check_writable()
        self._write_buffer.append((u, v))
        if len(self._write_buffer) >= self.device.block_elements:
            self._flush_block()

    def extend(self, edges: Iterable[Edge]) -> None:
        """Append many edges."""
        for u, v in edges:
            self.append(u, v)

    def _flush_block(self) -> None:
        if not self._write_buffer:
            return
        self._handle.write(pack_edges(self._write_buffer))
        self.edge_count += len(self._write_buffer)
        self.block_count += 1
        self.device.stats.add_writes(1)
        self._write_buffer.clear()

    def seal(self) -> "EdgeFile":
        """Finish writing.  Idempotent; returns ``self`` for chaining."""
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if not self._sealed:
            self._flush_block()
            self._handle.close()
            self._sealed = True
        return self

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def sealed(self) -> bool:
        """Whether the file is finished and scannable."""
        return self._sealed

    def _check_readable(self) -> None:
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if not self._sealed:
            raise StorageError(f"edge file {self.path} must be sealed before scanning")

    def scan_blocks(self) -> Iterator[List[Edge]]:
        """Yield one list of edges per block, charging one read I/O each."""
        self._check_readable()
        block_bytes = self.device.block_elements * EDGE_BYTES
        with open(self.path, "rb") as handle:
            while True:
                data = handle.read(block_bytes)
                if not data:
                    break
                self.device.stats.add_reads(1)
                yield unpack_edges(data)

    def scan(self) -> Iterator[Edge]:
        """Yield every edge in file order, charging one read I/O per block."""
        for block in self.scan_blocks():
            yield from block

    def read_all(self) -> List[Edge]:
        """Read the whole file into memory (charging the full scan cost)."""
        edges: List[Edge] = []
        for block in self.scan_blocks():
            edges.extend(block)
        return edges

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def delete(self) -> None:
        """Remove the backing file.  Safe to call more than once."""
        if self._deleted:
            return
        if not self._sealed and not self._handle.closed:
            self._handle.close()
        self._deleted = True
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return self.edge_count

    def __repr__(self) -> str:
        state = "deleted" if self._deleted else ("sealed" if self._sealed else "writable")
        return (
            f"EdgeFile({os.path.basename(self.path)!r}, edges={self.edge_count}, "
            f"blocks={self.block_count}, {state})"
        )


def edge_file_from_edges(device: BlockDevice, edges: Iterable[Edge]) -> EdgeFile:
    """Write ``edges`` to a fresh sealed :class:`EdgeFile` on ``device``."""
    edge_file = device.create_edge_file()
    edge_file.extend(edges)
    return edge_file.seal()


class PartitionWriter:
    """Route edges into ``p`` part files during a single scan.

    Parts are addressed by arbitrary hashable keys (subgraph indices).  Each
    part buffers one block and pays write I/Os exactly as a standalone
    :class:`EdgeFile` would — the paper's division step writes each surviving
    edge back to disk exactly once.
    """

    def __init__(self, device: BlockDevice, part_keys: Sequence[object]) -> None:
        if len(set(part_keys)) != len(part_keys):
            raise ValueError("part keys must be unique")
        self.device = device
        self._parts: Dict[object, EdgeFile] = {
            key: device.create_edge_file() for key in part_keys
        }

    def route(self, key: object, u: int, v: int) -> None:
        """Append edge ``(u, v)`` to the part addressed by ``key``."""
        try:
            part = self._parts[key]
        except KeyError:
            raise KeyError(f"unknown partition key: {key!r}") from None
        part.append(u, v)

    def seal(self) -> Dict[object, EdgeFile]:
        """Seal all parts and return the ``key -> EdgeFile`` mapping."""
        return {key: part.seal() for key, part in self._parts.items()}

    def discard(self) -> None:
        """Delete all part files (used on error paths)."""
        for part in self._parts.values():
            part.delete()
