"""On-disk edge files: the representation of a graph's edge set on disk.

An :class:`EdgeFile` stores ``(u, v)`` pairs in blocks of
``device.block_elements`` edges.  Its life cycle is write-then-scan:

1. the file is created writable by
   :meth:`~repro.storage.block_device.BlockDevice.create_edge_file`;
2. edges are appended with :meth:`EdgeFile.append` /
   :meth:`EdgeFile.extend`;
3. :meth:`EdgeFile.seal` finishes writing, after which the file may be
   scanned any number of times (each scan paying ``ceil(m / B)`` read I/Os).

:class:`PartitionWriter` routes a single scan of a parent file into ``p``
part files — the one-pass division materialization used by Divide-Star and
Divide-TD.
"""

from __future__ import annotations

import mmap
import os
from itertools import islice
from typing import (
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ClosedFileError, StorageError
from .block_device import BlockDevice
from .serialization import (
    CODEC_FIXED32,
    EDGE_BYTES,
    DeltaVarintBlockEncoder,
    Edge,
    classify_edge_block,
    decode_edge_block,
    decode_varint_columns,
    pack_edges,
)


class EdgeFile:
    """A block-structured file of directed edges on a :class:`BlockDevice`.

    Not constructed directly; use
    :meth:`BlockDevice.create_edge_file`.

    The file is written under the device's edge-block codec
    (:attr:`BlockDevice.block_codec`) captured at creation time.  Under
    ``fixed32`` every block holds exactly ``block_elements`` edges (the
    legacy raw layout); under a compressed codec blocks hold as many
    edges as fit in the same byte budget, so a scan touches fewer
    blocks.  Reading is self-describing per block, so a device may scan
    files sealed under any codec.
    """

    def __init__(self, device: BlockDevice, path: str) -> None:
        self.device = device
        self.path = path
        self.codec = device.block_codec
        self._mapped = False
        self._write_buffer: List[Edge] = []
        self._encoder: Optional[DeltaVarintBlockEncoder] = (
            None
            if self.codec == CODEC_FIXED32
            else DeltaVarintBlockEncoder(device.block_elements * EDGE_BYTES)
        )
        self._handle = open(path, "wb")
        self._sealed = False
        self._deleted = False
        self.edge_count = 0
        self.block_count = 0

    @classmethod
    def open_sealed(
        cls,
        device: BlockDevice,
        path: str,
        edge_count: int,
        block_count: int,
        mapped: bool = False,
    ) -> "EdgeFile":
        """Adopt an already-sealed edge file written elsewhere.

        The normal constructor truncates ``path`` for writing; a pool
        worker instead *adopts* the sealed part file the parent process
        materialized, re-binding it to the worker's own device so every
        scan charges the worker's :class:`~repro.storage.io_stats.IOStats`.
        The caller supplies the counts the writer recorded — the file is
        never rescanned just to rediscover them.

        Args:
            mapped: scan through a read-only ``mmap`` of the file instead
                of buffered reads.  A sealed file is immutable, so the
                mapping shares the page cache across pool workers instead
                of each worker re-reading the bytes; logical I/O charges
                are identical because every block still flows through
                :meth:`BlockDevice.read_block`.
        """
        if not os.path.exists(path):
            raise StorageError(f"cannot adopt edge file {path}: no such file")
        if edge_count < 0 or block_count < 0:
            raise StorageError("adopted edge/block counts must be non-negative")
        adopted = cls.__new__(cls)
        adopted.device = device
        adopted.path = path
        adopted.codec = device.block_codec
        adopted._mapped = mapped
        adopted._write_buffer = []
        adopted._encoder = None
        handle = open(path, "rb")
        handle.close()
        adopted._handle = handle
        adopted._sealed = True
        adopted._deleted = False
        adopted.edge_count = edge_count
        adopted.block_count = block_count
        return adopted

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if self.device.closed:
            raise ClosedFileError(
                f"edge file {self.path} belongs to a closed BlockDevice"
            )
        if self._sealed:
            raise StorageError(f"edge file {self.path} is sealed; cannot append")

    def _write_payload(self, payload: bytes, count: int) -> None:
        """Write one already-encoded edge-block payload holding ``count`` edges."""
        self.device.write_block(
            self._handle, payload, context=self.path,
            raw_bytes=count * EDGE_BYTES,
        )
        self.edge_count += count
        self.block_count += 1

    def append(self, u: int, v: int) -> None:
        """Append one edge.  Flushes a block when the buffer fills."""
        self._check_writable()
        if self._encoder is not None:
            emitted = self._encoder.add(u, v)
            if emitted is not None:
                self._write_payload(*emitted)
            return
        self._write_buffer.append((u, v))
        if len(self._write_buffer) >= self.device.block_elements:
            self._flush_block()

    def extend(self, edges: Iterable[Edge]) -> None:
        """Append many edges.

        Buffers in block-sized chunks and flushes whole blocks: one
        writability check and one ``islice`` per block instead of a
        method call (plus re-check) per edge.
        """
        self._check_writable()
        if self._encoder is not None:
            add = self._encoder.add
            write = self._write_payload
            for u, v in edges:
                emitted = add(u, v)
                if emitted is not None:
                    write(*emitted)
            return
        buffer = self._write_buffer
        block_elements = self.device.block_elements
        iterator = iter(edges)
        while True:
            chunk = list(islice(iterator, block_elements - len(buffer)))
            if not chunk:
                break
            buffer.extend(chunk)
            if len(buffer) >= block_elements:
                self._flush_block()

    def extend_columns(self, u_col: Sequence[int], v_col: Sequence[int]) -> None:
        """Append many edges given as ``(u, v)`` columns.

        The columnar fast path: block-aligned spans of the columns are
        packed directly by the device's kernel (no per-edge tuples); only
        the ragged head/tail goes through the tuple write buffer.  I/O
        charges are identical to :meth:`extend` — one write per block.
        """
        self._check_writable()
        if len(u_col) != len(v_col):
            raise ValueError(
                f"column length mismatch: {len(u_col)} vs {len(v_col)}"
            )
        if self._encoder is not None:
            # Compressed path: the encoder consumes plain ints edge by
            # edge (block boundaries depend on encoded sizes, not counts).
            u_list = u_col.tolist() if hasattr(u_col, "tolist") else u_col
            v_list = v_col.tolist() if hasattr(v_col, "tolist") else v_col
            add = self._encoder.add
            write = self._write_payload
            for u, v in zip(u_list, v_list):
                emitted = add(u, v)
                if emitted is not None:
                    write(*emitted)
            return
        buffer = self._write_buffer
        block_elements = self.device.block_elements
        total = len(u_col)
        position = 0
        if buffer:  # top the partial block up to a boundary first
            take = min(block_elements - len(buffer), total)
            buffer.extend(zip(u_col[:take], v_col[:take]))
            position = take
            if len(buffer) >= block_elements:
                self._flush_block()
        pack_columns = self.device.kernel.pack_edge_columns
        while total - position >= block_elements:
            stop = position + block_elements
            self.device.write_block(
                self._handle,
                pack_columns(u_col[position:stop], v_col[position:stop]),
                context=self.path,
                raw_bytes=block_elements * EDGE_BYTES,
            )
            self.edge_count += block_elements
            self.block_count += 1
            position = stop
        if position < total:
            buffer.extend(zip(u_col[position:], v_col[position:]))

    def _flush_block(self) -> None:
        if self._encoder is not None:
            flushed = self._encoder.flush()
            if flushed is not None:
                self._write_payload(*flushed)
            return
        if not self._write_buffer:
            return
        count = len(self._write_buffer)
        self.device.write_block(
            self._handle, pack_edges(self._write_buffer), context=self.path,
            raw_bytes=count * EDGE_BYTES,
        )
        self.edge_count += count
        self.block_count += 1
        self._write_buffer.clear()

    def seal(self) -> "EdgeFile":
        """Finish writing.  Idempotent; returns ``self`` for chaining."""
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if not self._sealed:
            self._flush_block()
            self._handle.close()
            self._sealed = True
        return self

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def sealed(self) -> bool:
        """Whether the file is finished and scannable."""
        return self._sealed

    def _check_readable(self) -> None:
        if self._deleted:
            raise ClosedFileError(f"edge file {self.path} was deleted")
        if self.device.closed:
            raise ClosedFileError(
                f"edge file {self.path} belongs to a closed BlockDevice"
            )
        if not self._sealed:
            raise StorageError(f"edge file {self.path} must be sealed before scanning")

    def _open_reader(self) -> Union[BinaryIO, "mmap.mmap"]:
        """Open the sealed file for one scan: mmap when adopted ``mapped``.

        Both return types satisfy ``BlockReadHandle`` (read/seek/tell and
        the context-manager protocol), so scans are agnostic to which one
        they got.  Zero-length files cannot be mapped (POSIX mmap rejects
        them), so they fall back to the buffered handle — such a scan
        yields no blocks either way.
        """
        handle = open(self.path, "rb")
        if not self._mapped:
            return handle
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return handle  # empty file or mmap-hostile filesystem
        handle.close()  # the mapping outlives the descriptor
        return mapping

    def scan_blocks(self) -> Iterator[List[Edge]]:
        """Yield one list of edges per block, charging one read I/O each.

        Each block is decoded by whatever codec it was written with (the
        payload is self-describing), so a device scans sealed files from
        any codec setting.

        Raises:
            CorruptBlockError: when a block's checksum failure persists
                across the device's retry budget.
        """
        self._check_readable()
        device = self.device
        with self._open_reader() as handle:
            while True:
                data = device.read_block(handle, context=self.path)
                if data is None:
                    break
                block = decode_edge_block(data)
                device.stats.add_edge_bytes(len(block) * EDGE_BYTES, len(data))
                yield block

    def scan_columns(self) -> Iterator[Tuple[Sequence[int], Sequence[int]]]:
        """Yield ``(u, v)`` columns per block, charging one read I/O each.

        The columnar twin of :meth:`scan_blocks`: the same bytes and the
        same I/O charges, but each block arrives as two flat int32 columns
        decoded by the device's kernel (numpy arrays on the vectorized
        backend, stdlib ``array`` columns on the pure-Python one) instead
        of a list of per-edge tuples.
        """
        self._check_readable()
        device = self.device
        kernel = device.kernel
        with self._open_reader() as handle:
            while True:
                data = device.read_block(handle, context=self.path)
                if data is None:
                    break
                codec, body = classify_edge_block(data)
                if codec == CODEC_FIXED32:
                    u_col, v_col = kernel.unpack_edge_columns(body)
                else:
                    u_col, v_col = kernel.make_columns(
                        *decode_varint_columns(body)
                    )
                device.stats.add_edge_bytes(len(u_col) * EDGE_BYTES, len(data))
                yield u_col, v_col

    def scan(self) -> Iterator[Edge]:
        """Yield every edge in file order, charging one read I/O per block."""
        for block in self.scan_blocks():
            yield from block

    def read_all(self) -> List[Edge]:
        """Read the whole file into memory (charging the full scan cost)."""
        edges: List[Edge] = []
        for block in self.scan_blocks():
            edges.extend(block)
        return edges

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def delete(self) -> None:
        """Remove the backing file.  Safe to call more than once."""
        if self._deleted:
            return
        if not self._sealed and not self._handle.closed:
            self._handle.close()
        self._deleted = True
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return self.edge_count

    def __repr__(self) -> str:
        state = "deleted" if self._deleted else ("sealed" if self._sealed else "writable")
        return (
            f"EdgeFile({os.path.basename(self.path)!r}, edges={self.edge_count}, "
            f"blocks={self.block_count}, {state})"
        )


def edge_file_from_edges(device: BlockDevice, edges: Iterable[Edge]) -> EdgeFile:
    """Write ``edges`` to a fresh sealed :class:`EdgeFile` on ``device``."""
    edge_file = device.create_edge_file()
    edge_file.extend(edges)
    return edge_file.seal()


class PartitionWriter:
    """Route edges into ``p`` part files during a single scan.

    Parts are addressed by arbitrary hashable keys (subgraph indices).  Each
    part buffers one block and pays write I/Os exactly as a standalone
    :class:`EdgeFile` would — the paper's division step writes each surviving
    edge back to disk exactly once.
    """

    def __init__(self, device: BlockDevice, part_keys: Sequence[object]) -> None:
        if len(set(part_keys)) != len(part_keys):
            raise ValueError("part keys must be unique")
        self.device = device
        self._parts: Dict[object, EdgeFile] = {
            key: device.create_edge_file() for key in part_keys
        }

    def route(self, key: object, u: int, v: int) -> None:
        """Append edge ``(u, v)`` to the part addressed by ``key``."""
        try:
            part = self._parts[key]
        except KeyError:
            raise KeyError(f"unknown partition key: {key!r}") from None
        part.append(u, v)

    def route_columns(
        self, key: object, u_col: Sequence[int], v_col: Sequence[int]
    ) -> None:
        """Append whole ``(u, v)`` columns to the part addressed by ``key``.

        The columnar twin of :meth:`route`: same bytes, same I/O charges,
        one call per (part, block) span instead of one per edge.
        """
        try:
            part = self._parts[key]
        except KeyError:
            raise KeyError(f"unknown partition key: {key!r}") from None
        part.extend_columns(u_col, v_col)

    def seal(self) -> Dict[object, EdgeFile]:
        """Seal all parts and return the ``key -> EdgeFile`` mapping."""
        return {key: part.seal() for key, part in self._parts.items()}

    def discard(self) -> None:
        """Delete all part files (used on error paths)."""
        for part in self._parts.values():
            part.delete()
