"""Fixed-width binary codecs for on-disk graph data.

Edges are stored as pairs of little-endian signed 32-bit integers (8 bytes
per edge).  Signed width leaves headroom for virtual node ids, which the
library allocates *above* the real node range but well inside 2**31; the
codec validates the range on encode so corruption is caught at write time
rather than at a confusing distance later.

Every block written through :class:`~repro.storage.BlockDevice` is wrapped
in a self-describing *frame*::

    <u32 payload_len> <u32 crc32(payload)> <payload_len payload bytes>

The 8-byte header makes a torn or bit-flipped block *detectable* — a read
either returns exactly the bytes that were written or raises
:class:`~repro.errors.CorruptBlockError` — and makes partial final blocks
self-delimiting without relying on the file size.  Framing is invisible to
the logical I/O accounting: one frame is one block is one I/O charge.
"""

from __future__ import annotations

import struct
import zlib
from itertools import chain
from typing import Iterable, List, Sequence, Tuple

from ..errors import CorruptBlockError

Edge = Tuple[int, int]

_EDGE = struct.Struct("<ii")
_INT = struct.Struct("<i")

EDGE_BYTES = _EDGE.size
INT_BYTES = _INT.size

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

#: Per-block frame header: payload length, CRC-32 of the payload.
FRAME_HEADER = struct.Struct("<II")
FRAME_HEADER_BYTES = FRAME_HEADER.size

#: Upper bound on a sane frame payload (64 MiB) — a corrupt length field
#: must not turn into a gigabyte allocation.
MAX_FRAME_PAYLOAD = 1 << 26


def frame_block(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC-32 frame header.

    Raises:
        ValueError: on an empty or oversized payload (frames always carry
            at least one element; emptiness would be indistinguishable
            from zeroed disk space).
    """
    if not payload:
        raise ValueError("cannot frame an empty block payload")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(f"block payload of {len(payload)} bytes exceeds the frame limit")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def parse_frame_header(header: bytes, context: str = "block") -> Tuple[int, int]:
    """Decode and sanity-check a frame header read from disk.

    Returns:
        ``(payload_len, crc32)``.

    Raises:
        CorruptBlockError: on a truncated header or an insane length.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise CorruptBlockError(
            f"{context}: truncated frame header ({len(header)} of "
            f"{FRAME_HEADER_BYTES} bytes)"
        )
    payload_len, crc = FRAME_HEADER.unpack(header)
    if payload_len == 0 or payload_len > MAX_FRAME_PAYLOAD:
        raise CorruptBlockError(
            f"{context}: frame header claims an invalid payload length "
            f"({payload_len} bytes)"
        )
    return payload_len, crc


def verify_frame_payload(payload: bytes, expected_len: int, expected_crc: int,
                         context: str = "block") -> None:
    """Check a frame payload against its header.

    Raises:
        CorruptBlockError: when the payload is truncated or its CRC-32
            does not match the header.
    """
    if len(payload) != expected_len:
        raise CorruptBlockError(
            f"{context}: truncated frame payload ({len(payload)} of "
            f"{expected_len} bytes)"
        )
    if zlib.crc32(payload) != expected_crc:
        raise CorruptBlockError(f"{context}: frame checksum mismatch")


def pack_edges(edges: Sequence[Edge]) -> bytes:
    """Serialize a sequence of ``(u, v)`` pairs to bytes.

    The whole block is packed with one ``struct.pack`` call and
    range-checked with ``min()``/``max()`` — per-edge ``bytes`` objects
    were the dominant allocation in write-heavy phases.

    Raises:
        ValueError: if any endpoint falls outside the signed 32-bit range.
    """
    flat = list(chain.from_iterable(edges))
    if not flat:
        return b""
    if min(flat) < _INT32_MIN or max(flat) > _INT32_MAX:
        offender = next(
            edge
            for edge in edges
            if not (
                _INT32_MIN <= edge[0] <= _INT32_MAX
                and _INT32_MIN <= edge[1] <= _INT32_MAX
            )
        )
        raise ValueError(f"edge endpoint out of int32 range: {offender}")
    return struct.pack(f"<{len(flat)}i", *flat)


def unpack_edges(data: bytes) -> List[Edge]:
    """Deserialize bytes produced by :func:`pack_edges`.

    Raises:
        ValueError: if ``data`` is not a whole number of edge records.
    """
    if len(data) % EDGE_BYTES:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of the edge size {EDGE_BYTES}"
        )
    return list(_EDGE.iter_unpack(data))


def pack_ints(values: Sequence[int]) -> bytes:
    """Serialize a sequence of 32-bit signed ints (external stack pages)."""
    if not values:
        return b""
    if min(values) < _INT32_MIN or max(values) > _INT32_MAX:
        offender = next(
            value
            for value in values
            if not _INT32_MIN <= value <= _INT32_MAX
        )
        raise ValueError(f"value out of int32 range: {offender}")
    return struct.pack(f"<{len(values)}i", *values)


def unpack_ints(data: bytes) -> List[int]:
    """Deserialize bytes produced by :func:`pack_ints`."""
    if len(data) % INT_BYTES:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of the int size {INT_BYTES}"
        )
    return [value for (value,) in _INT.iter_unpack(data)]


def edges_to_blocks(edges: Iterable[Edge], block_edges: int) -> Iterable[bytes]:
    """Yield packed blocks of at most ``block_edges`` edges each."""
    if block_edges <= 0:
        raise ValueError("block_edges must be positive")
    buffer: List[Edge] = []
    for edge in edges:
        buffer.append(edge)
        if len(buffer) == block_edges:
            yield pack_edges(buffer)
            buffer.clear()
    if buffer:
        yield pack_edges(buffer)
