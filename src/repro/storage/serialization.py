"""Fixed-width binary codecs for on-disk graph data.

Edges are stored as pairs of little-endian signed 32-bit integers (8 bytes
per edge).  Signed width leaves headroom for virtual node ids, which the
library allocates *above* the real node range but well inside 2**31; the
codec validates the range on encode so corruption is caught at write time
rather than at a confusing distance later.

Every block written through :class:`~repro.storage.BlockDevice` is wrapped
in a self-describing *frame*::

    <u32 payload_len> <u32 crc32(payload)> <payload_len payload bytes>

The 8-byte header makes a torn or bit-flipped block *detectable* — a read
either returns exactly the bytes that were written or raises
:class:`~repro.errors.CorruptBlockError` — and makes partial final blocks
self-delimiting without relying on the file size.  Framing is invisible to
the logical I/O accounting: one frame is one block is one I/O charge.

Edge-block payloads come in two codecs (block format v2, see
docs/ARCHITECTURE.md):

* ``fixed32`` — the legacy raw layout: ``count`` interleaved ``<ii``
  pairs, 8 bytes per edge, no tag.  Bit-identical to every file the
  library ever sealed.
* ``delta-varint`` — a tagged compressed layout::

      0x01 <uvarint count> <u-stream> <v-stream> [0x00 pad]

  where each stream is ``count`` LEB128 varints of zig-zag-encoded
  deltas between consecutive endpoints (``prev`` starts at 0 per block,
  so every block decodes standalone).  The optional pad byte keeps the
  payload length from being a multiple of 8.

The two coexist per *block*: a reader looks at ``len(payload) % 8`` —
``0`` means legacy raw fixed32, anything else means the first byte is a
codec tag.  Old sealed files therefore read unchanged under any codec
setting, and a file may legally mix blocks of both kinds.
"""

from __future__ import annotations

import os
import struct
import zlib
from itertools import chain
from operator import index as _as_int
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import CorruptBlockError, ReproError

Edge = Tuple[int, int]

_EDGE = struct.Struct("<ii")
_INT = struct.Struct("<i")

EDGE_BYTES = _EDGE.size
INT_BYTES = _INT.size

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

#: Per-block frame header: payload length, CRC-32 of the payload.
FRAME_HEADER = struct.Struct("<II")
FRAME_HEADER_BYTES = FRAME_HEADER.size

#: Upper bound on a sane frame payload (64 MiB) — a corrupt length field
#: must not turn into a gigabyte allocation.
MAX_FRAME_PAYLOAD = 1 << 26

#: Edge-block codec names.  ``fixed32`` writes the legacy raw layout
#: (bit-identical to pre-codec files); ``delta-varint`` writes tagged
#: zig-zag-delta + LEB128 compressed blocks.
CODEC_FIXED32 = "fixed32"
CODEC_DELTA_VARINT = "delta-varint"
BLOCK_CODECS: Tuple[str, ...] = (CODEC_FIXED32, CODEC_DELTA_VARINT)

#: Environment variable consulted when no explicit codec is requested.
BLOCK_CODEC_ENV_VAR = "REPRO_BLOCK_CODEC"

#: Codec tag bytes (first payload byte of *tagged* edge blocks; legacy
#: raw fixed32 blocks carry no tag and are recognised by ``len % 8 == 0``).
CODEC_TAG_FIXED32 = 0x00
CODEC_TAG_DELTA_VARINT = 0x01

_TAG_TO_CODEC = {
    CODEC_TAG_FIXED32: CODEC_FIXED32,
    CODEC_TAG_DELTA_VARINT: CODEC_DELTA_VARINT,
}


def resolve_block_codec(name: Optional[str] = None) -> str:
    """Resolve an edge-block codec name (or ``None``) to a known codec.

    ``None`` falls back to ``$REPRO_BLOCK_CODEC``, then ``fixed32``.

    Raises:
        ReproError: for an unknown codec name.
    """
    if name is None:
        name = os.environ.get(BLOCK_CODEC_ENV_VAR) or CODEC_FIXED32
    name = name.strip().lower()
    if name not in BLOCK_CODECS:
        known = ", ".join(BLOCK_CODECS)
        raise ReproError(f"unknown block codec {name!r}; known: {known}")
    return name


def frame_block(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC-32 frame header.

    Raises:
        ValueError: on an empty or oversized payload (frames always carry
            at least one element; emptiness would be indistinguishable
            from zeroed disk space).
    """
    if not payload:
        raise ValueError("cannot frame an empty block payload")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(f"block payload of {len(payload)} bytes exceeds the frame limit")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def parse_frame_header(header: bytes, context: str = "block") -> Tuple[int, int]:
    """Decode and sanity-check a frame header read from disk.

    Returns:
        ``(payload_len, crc32)``.

    Raises:
        CorruptBlockError: on a truncated header or an insane length.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise CorruptBlockError(
            f"{context}: truncated frame header ({len(header)} of "
            f"{FRAME_HEADER_BYTES} bytes)"
        )
    payload_len, crc = FRAME_HEADER.unpack(header)
    if payload_len == 0 or payload_len > MAX_FRAME_PAYLOAD:
        raise CorruptBlockError(
            f"{context}: frame header claims an invalid payload length "
            f"({payload_len} bytes)"
        )
    return payload_len, crc


def verify_frame_payload(payload: bytes, expected_len: int, expected_crc: int,
                         context: str = "block") -> None:
    """Check a frame payload against its header.

    Raises:
        CorruptBlockError: when the payload is truncated or its CRC-32
            does not match the header.
    """
    if len(payload) != expected_len:
        raise CorruptBlockError(
            f"{context}: truncated frame payload ({len(payload)} of "
            f"{expected_len} bytes)"
        )
    if zlib.crc32(payload) != expected_crc:
        raise CorruptBlockError(f"{context}: frame checksum mismatch")


def pack_edges(edges: Sequence[Edge]) -> bytes:
    """Serialize a sequence of ``(u, v)`` pairs to bytes.

    The whole block is packed with one ``struct.pack`` call over a single
    flattening pass; ``struct`` itself performs the int32 range check, so
    the happy path never walks the data twice.  Only a failed pack pays a
    second walk to name the offending edge.

    Raises:
        ValueError: if any endpoint falls outside the signed 32-bit range.
    """
    flat = list(chain.from_iterable(edges))
    if not flat:
        return b""
    try:
        return struct.pack(f"<{len(flat)}i", *flat)
    except struct.error as error:
        for edge in edges:
            if not (
                _INT32_MIN <= edge[0] <= _INT32_MAX
                and _INT32_MIN <= edge[1] <= _INT32_MAX
            ):
                raise ValueError(
                    f"edge endpoint out of int32 range: {edge}"
                ) from None
        raise error  # non-integer value: not a range problem, re-raise as-is


def unpack_edges(data: bytes) -> List[Edge]:
    """Deserialize bytes produced by :func:`pack_edges`.

    Raises:
        ValueError: if ``data`` is not a whole number of edge records.
    """
    if len(data) % EDGE_BYTES:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of the edge size {EDGE_BYTES}"
        )
    return list(_EDGE.iter_unpack(data))


def pack_ints(values: Sequence[int]) -> bytes:
    """Serialize a sequence of 32-bit signed ints (external stack pages).

    One ``struct.pack`` call, no separate range pass — like
    :func:`pack_edges`, only a failed pack walks the data again to name
    the out-of-range value.
    """
    if not values:
        return b""
    try:
        return struct.pack(f"<{len(values)}i", *values)
    except struct.error as error:
        for value in values:
            if not _INT32_MIN <= value <= _INT32_MAX:
                raise ValueError(f"value out of int32 range: {value}") from None
        raise error


def unpack_ints(data: bytes) -> List[int]:
    """Deserialize bytes produced by :func:`pack_ints`."""
    if len(data) % INT_BYTES:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of the int size {INT_BYTES}"
        )
    return [value for (value,) in _INT.iter_unpack(data)]


def edges_to_blocks(edges: Iterable[Edge], block_edges: int) -> Iterable[bytes]:
    """Yield packed blocks of at most ``block_edges`` edges each."""
    if block_edges <= 0:
        raise ValueError("block_edges must be positive")
    buffer: List[Edge] = []
    for edge in edges:
        buffer.append(edge)
        if len(buffer) == block_edges:
            yield pack_edges(buffer)
            buffer.clear()
    if buffer:
        yield pack_edges(buffer)


# ----------------------------------------------------------------------
# delta-varint edge-block codec (block format v2)
# ----------------------------------------------------------------------
def _zigzag(value: int) -> int:
    """Map a signed int to an unsigned one with small absolute values first."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _uvarint_len(value: int) -> int:
    """Encoded byte length of an unsigned LEB128 varint."""
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def _append_uvarint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, position: int, context: str) -> Tuple[int, int]:
    """Decode one LEB128 varint; returns ``(value, next_position)``.

    Raises:
        CorruptBlockError: truncated stream or a varint wider than 64 bits
            (a CRC-valid frame can still be mis-assembled by a buggy
            writer; the decoder must fail loudly, not mis-decode).
    """
    value = 0
    shift = 0
    while True:
        if position >= len(data):
            raise CorruptBlockError(f"{context}: truncated varint stream")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7
        if shift > 63:
            raise CorruptBlockError(f"{context}: varint wider than 64 bits")


def classify_edge_block(payload: bytes) -> Tuple[str, bytes]:
    """Split a sealed edge-block payload into ``(codec_name, body)``.

    Legacy raw fixed32 blocks (``len % 8 == 0``) have no tag and the body
    *is* the payload; tagged blocks strip the leading codec tag byte.

    Raises:
        CorruptBlockError: unknown codec tag.
        ValueError: empty payload (frames never carry one).
    """
    if not payload:
        raise ValueError("empty edge block payload")
    if len(payload) % EDGE_BYTES == 0:
        return CODEC_FIXED32, payload
    tag = payload[0]
    codec = _TAG_TO_CODEC.get(tag)
    if codec is None:
        raise CorruptBlockError(f"unknown edge-block codec tag {tag:#04x}")
    return codec, payload[1:]


def decode_varint_columns(body: bytes) -> Tuple[List[int], List[int]]:
    """Decode a (tag-stripped) delta-varint body into ``(u, v)`` columns.

    Trailing bytes beyond the two streams (the anti-alignment pad) are
    ignored — the leading count delimits the streams exactly.

    Raises:
        CorruptBlockError: truncated or malformed varint streams.
    """
    context = "delta-varint block"
    count, position = _read_uvarint(body, 0, context)
    if count > MAX_FRAME_PAYLOAD:
        raise CorruptBlockError(f"{context}: implausible edge count {count}")
    us: List[int] = []
    vs: List[int] = []
    for column in (us, vs):
        previous = 0
        append = column.append
        for _ in range(count):
            encoded, position = _read_uvarint(body, position, context)
            previous += _unzigzag(encoded)
            append(previous)
    return us, vs


def decode_edge_block(payload: bytes) -> List[Edge]:
    """Decode one sealed edge-block payload (either codec) into edge tuples.

    Raises:
        CorruptBlockError: unknown codec tag or malformed compressed body.
        ValueError: a fixed32 body that is not whole edge records.
    """
    codec, body = classify_edge_block(payload)
    if codec == CODEC_FIXED32:
        return unpack_edges(body)
    us, vs = decode_varint_columns(body)
    return list(zip(us, vs))


class DeltaVarintBlockEncoder:
    """Incremental greedy packer of edges into ``delta-varint`` payloads.

    Unlike fixed32 blocks (always ``block_elements`` edges), compressed
    blocks hold however many edges fit in the same *byte* budget
    (``block_elements * EDGE_BYTES``), which is what turns compression
    into fewer blocks per scan.  The packing is a deterministic function
    of the edge sequence alone — append one at a time or in bulk, the
    block boundaries are identical.

    :meth:`add` returns a finished ``(payload, edge_count)`` pair when
    appending the edge closed the previous block, else ``None``;
    :meth:`flush` drains the remainder.  A single edge never splits: a
    block always holds at least one edge, even if a pathological delta
    overflows a tiny byte budget.
    """

    __slots__ = (
        "block_bytes", "_u_stream", "_v_stream", "_count",
        "_prev_u", "_prev_v",
    )

    def __init__(self, block_bytes: int) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self._u_stream = bytearray()
        self._v_stream = bytearray()
        self._count = 0
        self._prev_u = 0
        self._prev_v = 0

    @property
    def pending(self) -> int:
        """Edges buffered in the currently open block."""
        return self._count

    def _reset(self) -> None:
        self._u_stream.clear()
        self._v_stream.clear()
        self._count = 0
        self._prev_u = 0
        self._prev_v = 0

    def _payload(self) -> bytes:
        head = bytearray((CODEC_TAG_DELTA_VARINT,))
        _append_uvarint(head, self._count)
        payload = bytes(head) + bytes(self._u_stream) + bytes(self._v_stream)
        if len(payload) % EDGE_BYTES == 0:
            payload += b"\x00"  # keep tagged payloads off the raw-fixed32 grid
        return payload

    def add(self, u: int, v: int) -> Optional[Tuple[bytes, int]]:
        """Append one edge; returns a completed block when one closed.

        Raises:
            ValueError: endpoint outside the signed 32-bit range.
            TypeError: non-integer endpoint.
        """
        u = _as_int(u)
        v = _as_int(v)
        if not (
            _INT32_MIN <= u <= _INT32_MAX and _INT32_MIN <= v <= _INT32_MAX
        ):
            raise ValueError(f"edge endpoint out of int32 range: {(u, v)}")
        flushed: Optional[Tuple[bytes, int]] = None
        if self._count:
            cost = (
                _uvarint_len(_zigzag(u - self._prev_u))
                + _uvarint_len(_zigzag(v - self._prev_v))
            )
            size = (
                1  # tag
                + _uvarint_len(self._count + 1)
                + len(self._u_stream) + len(self._v_stream)
                + cost
            )
            if size > self.block_bytes:
                flushed = (self._payload(), self._count)
                self._reset()
        _append_uvarint(self._u_stream, _zigzag(u - self._prev_u))
        _append_uvarint(self._v_stream, _zigzag(v - self._prev_v))
        self._prev_u = u
        self._prev_v = v
        self._count += 1
        return flushed

    def flush(self) -> Optional[Tuple[bytes, int]]:
        """Close the open block, if any, and return it."""
        if not self._count:
            return None
        finished = (self._payload(), self._count)
        self._reset()
        return finished
