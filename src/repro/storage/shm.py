"""Shared-memory column segments: the zero-copy worker boundary.

A :class:`ColumnSegment` holds framed little-endian int32 columns in one
:class:`multiprocessing.shared_memory.SharedMemory` segment, mirroring
the framed-column idea of :mod:`repro.serve.store`: a tiny self-
describing header followed by the concatenated column data, so one
columnar representation feeds kernels, pool workers, and artifacts.

Layout (little-endian int32 words)::

    MAGIC  column_count  count_0 .. count_{k-1}  data_0 .. data_{k-1}

Lifecycle discipline (what makes ``/dev/shm`` leak-proof): segments are
**parent-owned**.  The process-pool scheduler (:mod:`repro.parallel`)
creates every segment *before* dispatch and unlinks every segment in a
``finally`` after the pool drains — workers only :meth:`attach`, read or
write columns, and :meth:`close` their mapping.  A worker that crashes,
is cancelled on ``FIRST_EXCEPTION``, or dies to a deadline therefore
cannot leak a segment: the parent's cleanup does not depend on the
worker ever running.  Workers share the parent's ``resource_tracker``
process (they are ``multiprocessing`` children), so their attach-time
re-registration is absorbed by the tracker's set-based cache instead of
triggering the separate-tracker double-unlink pitfall.

Packing and unpacking go through the kernel layer
(:meth:`~repro.kernels.base.Kernel.pack_int_column` /
:meth:`~repro.kernels.base.Kernel.int_column_from_buffer`), so the numpy
backend reads columns as zero-copy views over the shared buffer.
"""

from __future__ import annotations

import os
from itertools import count
from multiprocessing.shared_memory import SharedMemory
from typing import Callable, List, Optional, Sequence

from ..errors import StorageError
from ..kernels.base import Kernel

#: Format marker ("COL1" as a little-endian int).
SEGMENT_MAGIC = 0x434F4C31

#: Prefix of every segment name this module creates — the handle the
#: tests' leak checks (and CI's ``/dev/shm`` sweep) key on.
SEGMENT_PREFIX = "repro-"

_WORD_BYTES = 4
_HEADER_WORDS = 2  # MAGIC + column_count

#: Monotone per-process suffix so concurrent dispatches never collide.
_sequence = count()

#: Optional test hook: called with ``("create" | "unlink", name)`` for
#: every segment this process allocates or destroys — the tracking
#: allocator the lifecycle tests assert leak-freedom with.
SegmentObserver = Callable[[str, str], None]
_observer: Optional[SegmentObserver] = None


def set_segment_observer(observer: Optional[SegmentObserver]) -> None:
    """Install (or clear, with ``None``) the segment lifecycle observer."""
    global _observer
    _observer = observer


def _notify(action: str, name: str) -> None:
    if _observer is not None:
        _observer(action, name)


def words_for_columns(column_lengths: Sequence[int]) -> int:
    """Capacity (int32 words) a segment needs for columns of these lengths."""
    return _HEADER_WORDS + len(column_lengths) + sum(column_lengths)


class ColumnSegment:
    """Framed int32 columns in one shared-memory segment.

    Construct with :meth:`create` (owner side — the only side allowed to
    :meth:`unlink`) or :meth:`attach` (worker side).  A fresh segment is
    zero-filled, so its magic word is invalid until the first
    :meth:`write_columns` — reading an unwritten segment raises
    :class:`~repro.errors.StorageError` instead of yielding garbage.
    """

    def __init__(self, segment: SharedMemory, owner: bool) -> None:
        self._segment = segment
        self._owner = owner
        self._unlinked = False

    @property
    def name(self) -> str:
        """The attachable segment name (``repro-<pid>-<seq>`` when created)."""
        return self._segment.name

    @property
    def capacity_words(self) -> int:
        """How many int32 words the segment can hold (header included)."""
        return self._segment.size // _WORD_BYTES

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, capacity_words: int) -> "ColumnSegment":
        """Allocate an owner-side segment able to hold ``capacity_words``.

        Raises:
            StorageError: undersized capacity, or the host cannot provide
                shared memory (callers fall back to the pickle boundary).
        """
        if capacity_words < _HEADER_WORDS:
            raise StorageError(
                f"segment capacity must be >= {_HEADER_WORDS} words, "
                f"got {capacity_words}"
            )
        pid = os.getpid()
        while True:
            name = f"{SEGMENT_PREFIX}{pid}-{next(_sequence)}"
            try:
                segment = SharedMemory(
                    name=name, create=True, size=capacity_words * _WORD_BYTES
                )
            except FileExistsError:
                continue  # stale name from a recycled pid; take the next
            _notify("create", name)
            return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ColumnSegment":
        """Map an existing segment (worker side; never unlinks).

        Attaching re-registers the segment name with the resource
        tracker (CPython < 3.13 offers no way not to), but pool workers
        are ``multiprocessing`` children and therefore share the
        *parent's* tracker process — its cache is a set, so the
        duplicate registration is absorbed and the parent's
        :meth:`unlink` still unregisters exactly once.  Do not attach
        from a process outside the owner's ``multiprocessing`` tree:
        such a process runs its *own* tracker, which would unlink the
        owner's segment when it exits.
        """
        return cls(SharedMemory(name=name), owner=False)

    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        self._segment.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side).  Safe to call repeatedly."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already destroyed
            pass
        _notify("unlink", self.name)

    def destroy(self) -> None:
        """Owner-side teardown: release the mapping, then unlink."""
        self.close()
        self.unlink()

    # ------------------------------------------------------------------
    # framed columns
    # ------------------------------------------------------------------
    def write_columns(
        self, columns: Sequence[Sequence[int]], kernel: Kernel
    ) -> None:
        """Frame ``columns`` into the segment (header + packed data).

        Raises:
            StorageError: when the framed columns exceed the capacity the
                owner allocated.
        """
        header: List[int] = [SEGMENT_MAGIC, len(columns)]
        header.extend(len(column) for column in columns)
        needed = len(header) + sum(len(column) for column in columns)
        if needed > self.capacity_words:
            raise StorageError(
                f"segment {self.name} too small for its columns: need "
                f"{needed} words, capacity {self.capacity_words}"
            )
        buf = self._segment.buf
        offset = 0
        for chunk in [header, *columns]:
            packed = kernel.pack_int_column(chunk)
            buf[offset : offset + len(packed)] = packed
            offset += len(packed)

    def read_columns(self, kernel: Kernel) -> List[Sequence[int]]:
        """Decode the framed columns as backend-native int32 columns.

        The returned columns may alias the segment's buffer (the numpy
        backend returns zero-copy ``frombuffer`` views), so consume or
        copy them before :meth:`close` — or use
        :meth:`read_column_lists` for segment-independent copies.

        Raises:
            StorageError: bad magic (e.g. an unwritten segment) or a
                header whose counts overrun the segment.
        """
        buf = self._segment.buf
        words = self.capacity_words
        head = kernel.int_column_from_buffer(buf, 0, _HEADER_WORDS)
        magic, column_count = int(head[0]), int(head[1])
        del head  # a zero-copy view would pin the buffer
        if magic != SEGMENT_MAGIC:
            raise StorageError(
                f"segment {self.name} does not hold framed columns"
            )
        if column_count < 0 or _HEADER_WORDS + column_count > words:
            raise StorageError(f"segment {self.name} header truncated")
        counts_view = kernel.int_column_from_buffer(
            buf, _HEADER_WORDS, column_count
        )
        counts = [int(value) for value in counts_view]
        del counts_view
        offset = _HEADER_WORDS + column_count
        columns: List[Sequence[int]] = []
        for length in counts:
            if length < 0 or offset + length > words:
                raise StorageError(f"segment {self.name} truncated")
            columns.append(kernel.int_column_from_buffer(buf, offset, length))
            offset += length
        return columns

    def read_column_lists(self, kernel: Kernel) -> List[List[int]]:
        """Copy the framed columns out as plain int lists.

        The safe-by-construction reader for callers about to close or
        unlink the segment: nothing in the result aliases shared memory.
        """
        lists: List[List[int]] = []
        for column in self.read_columns(kernel):
            lists.append([int(value) for value in column])
        return lists

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"ColumnSegment({self.name!r}, words={self.capacity_words}, {role})"
        )
