"""An external-memory stack.

The paper's Exp-1 discussion attributes part of SEMI-DFS's cost to "the
external-memory stack used in the DFS procedure": when a DFS runs over a
graph near the memory limit, its node stack itself can outgrow memory.
:class:`ExternalStack` keeps at most ``hot_pages`` pages of ints in memory
and spills the deepest pages to a page file on the device, paying one write
I/O per spilled page and one read I/O per reloaded page.

Amortized, a sequence of ``N`` pushes and pops costs ``O(N / B)`` I/Os —
the textbook EM stack bound.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..errors import ClosedFileError, StorageError
from .block_device import BlockDevice
from .serialization import FRAME_HEADER_BYTES, INT_BYTES, pack_ints, unpack_ints


class ExternalStack:
    """A LIFO stack of 32-bit ints that spills cold pages to disk.

    Args:
        device: block device to spill pages to (and charge I/Os against).
        page_elements: ints per page; defaults to the device block size.
        hot_pages: number of pages kept in memory (minimum 1).
    """

    def __init__(
        self,
        device: BlockDevice,
        page_elements: Optional[int] = None,
        hot_pages: int = 2,
    ) -> None:
        if hot_pages < 1:
            raise ValueError("hot_pages must be at least 1")
        self.device = device
        if page_elements is None:
            page_elements = device.block_elements
        if page_elements <= 0:
            raise ValueError("page_elements must be positive")
        self.page_elements = page_elements
        self.hot_pages = hot_pages
        self._hot: List[List[int]] = [[]]
        self._spilled_pages = 0  # pages currently resident in the page file
        self._path = device.allocate_path(suffix=".stack")
        self._handle = open(self._path, "w+b")
        self._closed = False
        self._size = 0

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ClosedFileError("operation on a closed ExternalStack")

    def __len__(self) -> int:
        return self._size

    @property
    def spilled_pages(self) -> int:
        """Pages currently resident on disk (observability for tests)."""
        return self._spilled_pages

    # ------------------------------------------------------------------
    def push(self, value: int) -> None:
        """Push ``value``; spills the coldest page if memory is full."""
        self._check_open()
        top = self._hot[-1]
        if len(top) >= self.page_elements:
            self._hot.append([])
            top = self._hot[-1]
            if len(self._hot) > self.hot_pages:
                self._spill_coldest()
        top.append(value)
        self._size += 1

    def pop(self) -> int:
        """Pop and return the most recently pushed value.

        Raises:
            IndexError: when the stack is empty.
        """
        self._check_open()
        if self._size == 0:
            raise IndexError("pop from empty ExternalStack")
        top = self._hot[-1]
        if not top:
            # The in-memory top page is exhausted; drop it and, if no hot
            # pages remain, reload the most recently spilled page.
            self._hot.pop()
            if not self._hot:
                self._reload_hottest_spilled()
            top = self._hot[-1]
        self._size -= 1
        return top.pop()

    def peek(self) -> int:
        """Return the top value without removing it."""
        value = self.pop()
        self.push(value)
        return value

    # ------------------------------------------------------------------
    def _page_slot_bytes(self) -> int:
        # Spilled pages are always full, so each occupies a fixed slot:
        # one frame header plus the packed page payload.
        return FRAME_HEADER_BYTES + self.page_elements * INT_BYTES

    def _spill_coldest(self) -> None:
        page = self._hot.pop(0)
        if len(page) != self.page_elements:
            raise StorageError("internal error: spilling a non-full page")
        self._handle.seek(self._spilled_pages * self._page_slot_bytes())
        self.device.write_block(self._handle, pack_ints(page), context=self._path)
        self._spilled_pages += 1

    def _reload_hottest_spilled(self) -> None:
        if self._spilled_pages == 0:
            raise StorageError("internal error: nothing spilled to reload")
        self._spilled_pages -= 1
        self._handle.seek(self._spilled_pages * self._page_slot_bytes())
        data = self.device.read_block(self._handle, context=self._path)
        if data is None:
            raise StorageError("internal error: spilled page missing on disk")
        self._hot.append(unpack_ints(data))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the page file.  Safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self._handle.close()
        try:
            os.remove(self._path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ExternalStack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExternalStack(size={self._size}, hot_pages={len(self._hot)}, "
            f"spilled_pages={self._spilled_pages})"
        )
