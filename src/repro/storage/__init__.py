"""The external-memory storage substrate (simulated block device).

See DESIGN.md §3 and §5: this package substitutes a physical disk with an
I/O-accounted block device backed by real temporary files, plus the
external-memory primitives the paper's algorithms rely on (edge files,
partition routing, external sort, an external stack, and logical memory
budgeting).
"""

from .block_device import DEFAULT_BLOCK_ELEMENTS, DEFAULT_MAX_RETRIES, BlockDevice
from .buffer_pool import TREE_NODE_COST, MemoryBudget
from .edge_file import EdgeFile, PartitionWriter, edge_file_from_edges
from .external_sort import sort_edge_file
from .external_stack import ExternalStack
from .faults import FAULT_SEED_ENV_VAR, FaultEvent, FaultInjector, FaultPlan
from .io_stats import IOSnapshot, IOStats
from .serialization import (
    BLOCK_CODEC_ENV_VAR,
    BLOCK_CODECS,
    resolve_block_codec,
)

__all__ = [
    "BLOCK_CODECS",
    "BLOCK_CODEC_ENV_VAR",
    "BlockDevice",
    "DEFAULT_BLOCK_ELEMENTS",
    "DEFAULT_MAX_RETRIES",
    "EdgeFile",
    "ExternalStack",
    "FAULT_SEED_ENV_VAR",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "IOSnapshot",
    "IOStats",
    "MemoryBudget",
    "PartitionWriter",
    "TREE_NODE_COST",
    "edge_file_from_edges",
    "resolve_block_codec",
    "sort_edge_file",
]
