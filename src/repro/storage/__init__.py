"""The external-memory storage substrate (simulated block device).

See DESIGN.md §3 and §5: this package substitutes a physical disk with an
I/O-accounted block device backed by real temporary files, plus the
external-memory primitives the paper's algorithms rely on (edge files,
partition routing, external sort, an external stack, and logical memory
budgeting).
"""

from .block_device import DEFAULT_BLOCK_ELEMENTS, BlockDevice
from .buffer_pool import TREE_NODE_COST, MemoryBudget
from .edge_file import EdgeFile, PartitionWriter, edge_file_from_edges
from .external_sort import sort_edge_file
from .external_stack import ExternalStack
from .io_stats import IOSnapshot, IOStats

__all__ = [
    "BlockDevice",
    "DEFAULT_BLOCK_ELEMENTS",
    "EdgeFile",
    "ExternalStack",
    "IOSnapshot",
    "IOStats",
    "MemoryBudget",
    "PartitionWriter",
    "TREE_NODE_COST",
    "edge_file_from_edges",
    "sort_edge_file",
]
