"""A simulated block device backed by real temporary files.

:class:`BlockDevice` is the substitution for the paper's physical disk (see
DESIGN.md §5).  It owns a directory of data files, a block size ``B``
(counted in *elements*, matching the EM model), and a single
:class:`~repro.storage.io_stats.IOStats` counter that every structure created
on the device increments.  Data really is written to and read from the
filesystem, so scans exercise genuine serialization and buffering code paths;
the *accounting* is logical so the reproduced I/O numbers are exact and
machine-independent.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Optional

from ..errors import ClosedFileError
from .io_stats import IOStats

#: Default number of elements (edges / ints) per block.  The paper uses 64 KB
#: blocks; at 8 bytes per edge record that is 8192 edges.  We default to 4096
#: to keep block counts meaningful on the ~1000x-scaled-down datasets.
DEFAULT_BLOCK_ELEMENTS = 4096


class BlockDevice:
    """A directory of block-addressed files with shared I/O accounting.

    Args:
        block_elements: elements per block (``B`` in the EM model).
        directory: directory to place files in; a private temporary
            directory is created (and removed on :meth:`close`) when omitted.
        kernel: columnar kernel backend for structures on this device —
            ``"python"``, ``"numpy"``, ``"auto"``, or ``None`` to defer to
            ``$REPRO_KERNEL`` (then ``auto``).  The backend changes CPU
            cost only; bytes on disk and I/O charges are identical.

    The device is a context manager::

        with BlockDevice() as device:
            edge_file = device.create_edge_file()
            ...
    """

    def __init__(
        self,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        directory: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if block_elements <= 0:
            raise ValueError("block_elements must be positive")
        from ..kernels import resolve_kernel  # local import to avoid a cycle

        self.block_elements = block_elements
        self.kernel = resolve_kernel(kernel)
        self.stats = IOStats()
        self._owns_directory = directory is None
        if directory is None:
            self.directory = tempfile.mkdtemp(prefix="repro-device-")
        else:
            os.makedirs(directory, exist_ok=True)
            self.directory = directory
        self._closed = False
        self._file_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the device; removes the backing directory if it owns it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "BlockDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedFileError("operation on a closed BlockDevice")

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def allocate_path(self, name: Optional[str] = None, suffix: str = ".bin") -> str:
        """Reserve a fresh file path on the device."""
        self._check_open()
        if name is None:
            self._file_counter += 1
            name = f"file-{self._file_counter:06d}"
        return os.path.join(self.directory, name + suffix)

    def create_edge_file(self, name: Optional[str] = None) -> "EdgeFile":
        """Create a new, writable :class:`~repro.storage.edge_file.EdgeFile`."""
        self._check_open()
        from .edge_file import EdgeFile  # local import to avoid a cycle

        return EdgeFile(self, self.allocate_path(name, suffix=".edges"))

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"BlockDevice(block_elements={self.block_elements}, "
            f"directory={self.directory!r}, {state})"
        )
