"""A simulated block device backed by real temporary files.

:class:`BlockDevice` is the substitution for the paper's physical disk (see
DESIGN.md §5).  It owns a directory of data files, a block size ``B``
(counted in *elements*, matching the EM model), and a single
:class:`~repro.storage.io_stats.IOStats` counter that every structure created
on the device increments.  Data really is written to and read from the
filesystem, so scans exercise genuine serialization and buffering code paths;
the *accounting* is logical so the reproduced I/O numbers are exact and
machine-independent.

All block transfers flow through :meth:`BlockDevice.write_block` /
:meth:`BlockDevice.read_block`, which add the resilience layer:

* every block is framed with a length + CRC-32 header
  (:func:`~repro.storage.serialization.frame_block`), so torn or
  bit-flipped blocks are *detected* instead of silently decoded;
* transient failures (injected by a :class:`~repro.storage.faults.FaultPlan`
  or surfaced by the OS) are retried up to ``max_retries`` times with
  exponential backoff;
* a failure that outlives the retry budget raises a typed error —
  :class:`~repro.errors.RetriesExhausted` for transient trouble,
  :class:`~repro.errors.CorruptBlockError` for persistent corruption —
  never a wrong answer.

Retries and faults are counted in :class:`IOStats` separately from the
logical read/write charges, which are identical with and without faults.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import TYPE_CHECKING, BinaryIO, Optional, Protocol

from ..errors import ClosedFileError, CorruptBlockError, RetriesExhausted, TransientIOError

if TYPE_CHECKING:
    from ..obs import Tracer


class BlockReadHandle(Protocol):
    """What :meth:`BlockDevice.read_block` needs from a readable handle.

    Satisfied by ordinary binary file objects *and* by read-only
    :class:`mmap.mmap` mappings, so the zero-copy scan path of sealed
    edge files flows through the same resilient, I/O-counted entry point
    as buffered reads — logical charges are identical either way.
    """

    def read(self, size: int, /) -> bytes: ...

    def seek(self, position: int, /) -> object: ...

    def tell(self) -> int: ...
from .faults import FaultInjector, FaultPlan
from .io_stats import IOStats
from .serialization import (
    FRAME_HEADER_BYTES,
    frame_block,
    parse_frame_header,
    resolve_block_codec,
    verify_frame_payload,
)

#: Default number of elements (edges / ints) per block.  The paper uses 64 KB
#: blocks; at 8 bytes per edge record that is 8192 edges.  We default to 4096
#: to keep block counts meaningful on the ~1000x-scaled-down datasets.
DEFAULT_BLOCK_ELEMENTS = 4096

#: Default retry budget for one block transfer (1 initial + 4 retries).
DEFAULT_MAX_RETRIES = 4

#: Default base backoff; attempt ``k`` sleeps ``backoff * 2**(k-1)``.
DEFAULT_BACKOFF_SECONDS = 0.002


class BlockDevice:
    """A directory of block-addressed files with shared I/O accounting.

    Args:
        block_elements: elements per block (``B`` in the EM model).
        directory: directory to place files in; a private temporary
            directory is created (and removed on :meth:`close`) when omitted.
        kernel: columnar kernel backend for structures on this device —
            ``"python"``, ``"numpy"``, ``"auto"``, or ``None`` to defer to
            ``$REPRO_KERNEL`` (then ``auto``).  The backend changes CPU
            cost only; bytes on disk and I/O charges are identical.
        block_codec: edge-block payload codec for files *written* on this
            device — ``"fixed32"``, ``"delta-varint"``, or ``None`` to
            defer to ``$REPRO_BLOCK_CODEC`` (then ``fixed32``).  Reading
            is always self-describing, so sealed files written under any
            codec setting remain readable.
        fault_plan: optional :class:`~repro.storage.faults.FaultPlan`; when
            given, every block transfer consults a fresh injector bound to
            the plan, so a run replays the plan's exact failure schedule.
        max_retries: extra attempts per block transfer before the device
            gives up with a typed error.
        backoff_seconds: base of the exponential backoff between retries
            (``0`` disables sleeping, useful in tests).

    The device is a context manager::

        with BlockDevice() as device:
            edge_file = device.create_edge_file()
            ...
    """

    def __init__(
        self,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        directory: Optional[str] = None,
        kernel: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        block_codec: Optional[str] = None,
    ) -> None:
        if block_elements <= 0:
            raise ValueError("block_elements must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        from ..kernels import resolve_kernel  # local import to avoid a cycle
        from ..obs import NULL_TRACER  # local import to avoid a cycle

        self.block_elements = block_elements
        self.kernel = resolve_kernel(kernel)
        #: Codec for edge blocks written on this device.  Mutable: a
        #: :class:`~repro.algorithms.base.RunContext` may install the
        #: run's codec here for the duration of a run (and restores the
        #: previous value on release), mirroring the tracer slot below.
        self.block_codec = resolve_block_codec(block_codec)
        self.stats = IOStats()
        #: The tracer storage-layer code reports to (retry/fault counters,
        #: external-sort spans).  A :class:`~repro.algorithms.base.RunContext`
        #: installs the run's tracer here for the duration of a run and
        #: restores the previous one on release.
        self.tracer: "Tracer" = NULL_TRACER
        self.fault_plan = fault_plan
        self.faults: Optional[FaultInjector] = (
            fault_plan.bind() if fault_plan is not None else None
        )
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self._owns_directory = directory is None
        if directory is None:
            self.directory = tempfile.mkdtemp(prefix="repro-device-")
        else:
            os.makedirs(directory, exist_ok=True)
            self.directory = directory
        self._closed = False
        self._file_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the device; removes the backing directory if it owns it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "BlockDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedFileError("operation on a closed BlockDevice")

    # ------------------------------------------------------------------
    # resilient block transfer
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        if self.backoff_seconds > 0:
            time.sleep(self.backoff_seconds * (2 ** attempt))

    def _sync_faults(self, baseline: int) -> int:
        """Mirror newly injected faults into the stats counter."""
        injected = self.faults.injected if self.faults is not None else 0
        if injected > baseline:
            self.stats.add_faults(injected - baseline)
            self.tracer.count("device.faults", injected - baseline)
        return injected

    def write_block(self, handle: BinaryIO, payload: bytes,
                    context: str = "block",
                    raw_bytes: Optional[int] = None) -> None:
        """Frame ``payload`` and write it at the handle's current position.

        Charges exactly one logical write I/O however many attempts it
        takes.  On a transient failure the handle is rewound to the block's
        start offset and the write is repeated, so a torn attempt can never
        leave a half-frame behind a successful one.

        Args:
            raw_bytes: when given, the *logical* (uncompressed) size of an
                edge-block payload; on success the stored-vs-raw pair is
                charged to :meth:`IOStats.add_edge_bytes` so compression
                ratios are measurable.  Non-edge payloads omit it.

        Raises:
            ClosedFileError: when the device is closed.
            RetriesExhausted: when transient failures outlive the budget.
        """
        self._check_open()
        injector = self.faults
        baseline = 0
        if injector is not None:
            injector.begin_op()
            baseline = injector.injected
        start = handle.tell()
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.stats.add_retries(1)
                self.tracer.count("device.write_retries")
                self._backoff(attempt - 1)
                handle.seek(start)
            try:
                frame = frame_block(payload)
                if injector is not None:
                    injector.before_write(attempt)
                    # The header's CRC is always computed over the *clean*
                    # payload; persisted damage must be detectable on read.
                    damaged = injector.damage_write(payload)
                    if damaged is not payload:
                        frame = frame[:FRAME_HEADER_BYTES] + damaged
                handle.write(frame)
            except (TransientIOError, OSError) as error:
                last_error = error
                baseline = self._sync_faults(baseline)
                continue
            self._sync_faults(baseline)
            self.stats.add_writes(1)
            if raw_bytes is not None:
                self.stats.add_edge_bytes(raw_bytes, len(payload))
            return
        raise RetriesExhausted(
            f"{context}: write failed after {self.max_retries + 1} attempts "
            f"({last_error})",
            last_error=last_error,
            attempts=self.max_retries + 1,
        )

    def read_block(
        self, handle: BlockReadHandle, context: str = "block"
    ) -> Optional[bytes]:
        """Read one framed block at the handle's current position.

        Returns the payload bytes, or ``None`` at a clean end-of-file (no
        I/O charged).  Charges exactly one logical read I/O per block
        returned, however many attempts it takes.

        Raises:
            ClosedFileError: when the device is closed.
            CorruptBlockError: when a checksum/truncation failure persists
                across the whole retry budget (the block is damaged *on
                disk*, not in flight).
            RetriesExhausted: when transient failures outlive the budget.
        """
        self._check_open()
        injector = self.faults
        baseline = 0
        if injector is not None:
            injector.begin_op()
            baseline = injector.injected
        start = handle.tell()
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.stats.add_retries(1)
                self.tracer.count("device.read_retries")
                self._backoff(attempt - 1)
                handle.seek(start)
            try:
                if injector is not None:
                    injector.before_read(attempt)
                header = handle.read(FRAME_HEADER_BYTES)
                if not header:
                    self._sync_faults(baseline)
                    return None  # clean EOF
                payload_len, crc = parse_frame_header(header, context)
                payload = handle.read(payload_len)
                if injector is not None:
                    payload = injector.damage_read(payload, attempt)
                verify_frame_payload(payload, payload_len, crc, context)
            except CorruptBlockError as error:
                last_error = error
                self.stats.add_checksum_failures(1)
                self.tracer.count("device.checksum_failures")
                baseline = self._sync_faults(baseline)
                continue
            except (TransientIOError, OSError) as error:
                last_error = error
                baseline = self._sync_faults(baseline)
                continue
            self._sync_faults(baseline)
            self.stats.add_reads(1)
            return payload
        if isinstance(last_error, CorruptBlockError):
            raise CorruptBlockError(
                f"{context}: corrupt block persisted across "
                f"{self.max_retries + 1} attempts ({last_error})"
            )
        raise RetriesExhausted(
            f"{context}: read failed after {self.max_retries + 1} attempts "
            f"({last_error})",
            last_error=last_error,
            attempts=self.max_retries + 1,
        )

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def allocate_path(self, name: Optional[str] = None, suffix: str = ".bin") -> str:
        """Reserve a fresh file path on the device."""
        self._check_open()
        if name is None:
            self._file_counter += 1
            name = f"file-{self._file_counter:06d}"
        return os.path.join(self.directory, name + suffix)

    def create_edge_file(self, name: Optional[str] = None) -> "EdgeFile":
        """Create a new, writable :class:`~repro.storage.edge_file.EdgeFile`."""
        self._check_open()
        from .edge_file import EdgeFile  # local import to avoid a cycle

        return EdgeFile(self, self.allocate_path(name, suffix=".edges"))

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        faulty = ", faulty" if self.fault_plan is not None else ""
        codec = (
            f", codec={self.block_codec}" if self.block_codec != "fixed32" else ""
        )
        return (
            f"BlockDevice(block_elements={self.block_elements}, "
            f"directory={self.directory!r}, {state}{faulty}{codec})"
        )
