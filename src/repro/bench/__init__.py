"""Benchmark harness: workload builders, per-cell runner, and the
paper-shaped experiment definitions (one per table/figure)."""

from .harness import CellResult, default_dnf_seconds, run_cell, run_series
from .experiments import (
    EDGE_PERCENTAGES,
    PAPER_ALGORITHMS,
    SYNTHETIC_PARAMETERS,
    bench_scale,
    default_nodes,
    exp1_memory,
    exp1_real_dataset,
    exp2_vary_nodes,
    exp3_vary_degree,
    exp4_vary_memory,
    exp5_power_law_ness,
    exp6_start_node,
    memory_for_gb,
    memory_ratio_for_gb,
    real_dataset_specs,
    synthetic_edges,
)
from .reporting import ALGORITHM_LABELS, render_csv, render_experiment

__all__ = [
    "ALGORITHM_LABELS",
    "CellResult",
    "EDGE_PERCENTAGES",
    "PAPER_ALGORITHMS",
    "SYNTHETIC_PARAMETERS",
    "bench_scale",
    "default_dnf_seconds",
    "default_nodes",
    "exp1_memory",
    "exp1_real_dataset",
    "exp2_vary_nodes",
    "exp3_vary_degree",
    "exp4_vary_memory",
    "exp5_power_law_ness",
    "exp6_start_node",
    "memory_for_gb",
    "memory_ratio_for_gb",
    "real_dataset_specs",
    "render_csv",
    "render_experiment",
    "run_cell",
    "run_series",
    "synthetic_edges",
]
