"""Benchmark harness: run one algorithm on one workload cell, with the
paper's DNF semantics (a wall-clock deadline standing in for the 8-hour timeout)."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..api import semi_external_dfs
from ..errors import ConvergenceError
from ..graph.disk_graph import DiskGraph
from ..obs import MemorySink, SpanEvent, Tracer, phase_totals
from ..options import RunOptions
from ..storage.block_device import BlockDevice

Edge = Tuple[int, int]

#: The per-phase breakdown benchmarks report (the CSV's trailing columns).
PHASE_COLUMNS: Tuple[str, ...] = ("restructure", "divide", "solve", "merge")


def _phase_breakdown(
    events: Sequence[SpanEvent],
) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Per-phase seconds and block-I/O totals for the CSV columns."""
    totals = phase_totals(events)
    seconds = {
        phase: totals[phase].seconds for phase in PHASE_COLUMNS
        if phase in totals
    }
    ios = {
        phase: totals[phase].io.total for phase in PHASE_COLUMNS
        if phase in totals
    }
    return seconds, ios


def default_dnf_seconds() -> float:
    """The stand-in for the paper's 8-hour wall-clock limit.

    A cell whose algorithm runs longer than this is reported DNF, exactly
    like the paper's missing bars.  Override with ``REPRO_BENCH_TIMEOUT``
    (seconds).
    """
    return float(os.environ.get("REPRO_BENCH_TIMEOUT", "30"))


@dataclass
class CellResult:
    """One (x-value, algorithm) cell of an experiment's series."""

    x: object
    algorithm: str
    time_seconds: float
    ios: int
    passes: int
    divisions: int
    node_count: int
    edge_count: int
    dnf: bool = False
    kernel: str = "python"
    retries: int = 0  # physical retry attempts (excluded from `ios`)
    faults: int = 0  # injected/observed block faults during the run
    #: Process-pool width the cell ran with (1 = the sequential part loop).
    workers: int = 1
    #: How many pool dispatches had memory-share floors exceeding ``M``
    #: (the ``worker_memory_oversubscribed`` counter; 0 when sequential).
    oversubscribed: int = 0
    #: Edge-block codec the cell's device wrote with.
    codec: str = "fixed32"
    #: Raw/stored edge-byte ratio over the run (1.0 under ``fixed32``).
    compression_ratio: float = 1.0
    #: Sealed blocks in the cell's input edge file — the block reads one
    #: full scan costs (``ceil(m/B)`` under fixed32, fewer compressed).
    blocks_per_scan: int = 0
    #: Wall-clock seconds per phase (keys from :data:`PHASE_COLUMNS`;
    #: phases the algorithm never entered are absent).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Block I/Os per phase (same keys as :attr:`phase_seconds`).
    phase_ios: Dict[str, int] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.x}/{self.algorithm}"


def run_cell(
    x: object,
    algorithm: str,
    node_count: int,
    edges: Iterable[Edge],
    memory: int,
    start: Optional[int] = None,
    dnf_seconds: Optional[float] = None,
    block_elements: int = 4096,
    workers: int = 1,
    block_codec: Optional[str] = None,
) -> CellResult:
    """Materialize a workload on a fresh device and run one algorithm.

    Graph materialization I/O is *not* charged to the cell — the paper's
    datasets pre-exist on disk; measurement starts at the algorithm call.
    ``workers > 1`` turns on the process-pool part scheduler (divide &
    conquer algorithms only; see :mod:`repro.parallel`).  ``block_codec``
    selects the edge-block write codec for the whole cell, input
    materialization included (``None``: ``$REPRO_BLOCK_CODEC``/fixed32).
    """
    if dnf_seconds is None:
        dnf_seconds = default_dnf_seconds()
    with BlockDevice(
        block_elements=block_elements, block_codec=block_codec
    ) as device:
        graph = DiskGraph.from_edges(device, node_count, edges, validate=False)
        started = time.perf_counter()
        before = device.stats.snapshot()
        # The harness keeps its own sink so the per-phase breakdown
        # survives even a DNF (the run context's private sink is detached
        # when the run aborts).
        events = MemorySink()
        tracer = Tracer(sinks=[events])
        try:
            result = semi_external_dfs(
                graph, memory, algorithm=algorithm, start=start,
                options=RunOptions(
                    deadline_seconds=dnf_seconds, tracer=tracer,
                    workers=workers,
                ),
            )
        except ConvergenceError:
            elapsed = time.perf_counter() - started
            delta = device.stats.snapshot() - before
            seconds, ios = _phase_breakdown(events.events)
            return CellResult(
                x=x, algorithm=algorithm, time_seconds=elapsed, ios=delta.total,
                passes=0, divisions=0,
                node_count=node_count, edge_count=graph.edge_count, dnf=True,
                kernel=device.kernel.name,
                retries=delta.retries, faults=delta.faults,
                workers=workers,
                codec=device.block_codec,
                compression_ratio=delta.compression_ratio,
                blocks_per_scan=graph.edge_file.block_count,
                phase_seconds=seconds, phase_ios=ios,
            )
        seconds, ios = _phase_breakdown(result.events)
        return CellResult(
            x=x, algorithm=algorithm,
            time_seconds=result.elapsed_seconds, ios=result.io.total,
            passes=result.passes, divisions=getattr(result, "divisions", 0),
            node_count=node_count, edge_count=graph.edge_count,
            kernel=result.kernel,
            retries=result.io.retries, faults=result.io.faults,
            workers=workers,
            oversubscribed=getattr(result, "details", {}).get(
                "worker_memory_oversubscribed", 0
            ),
            codec=result.block_codec,
            compression_ratio=result.compression_ratio,
            blocks_per_scan=graph.edge_file.block_count,
            phase_seconds=seconds, phase_ios=ios,
        )


def run_series(
    xs: Iterable[object],
    algorithms: Iterable[str],
    cell: Callable[..., CellResult],
) -> List[CellResult]:
    """Run ``cell(x, algorithm)`` over the cross product, in sweep order."""
    results: List[CellResult] = []
    for x in xs:
        for algorithm in algorithms:
            results.append(cell(x, algorithm))
    return results
