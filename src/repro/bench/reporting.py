"""Paper-shaped rendering of experiment series.

Each experiment renders two panels, matching the paper's figures:
``(a) Processing Time`` and ``(b) I/O``.  Rows are the sweep's x-values,
columns are the algorithms, cells are the measured values (``DNF`` when
the pass cap — the stand-in for the paper's 8-hour limit — was hit).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import PHASE_COLUMNS, CellResult

#: Display names matching the paper's legends.
ALGORITHM_LABELS = {
    "edge-by-batch": "SEMI-DFS",
    "semi-dfs": "SEMI-DFS",
    "edge-by-edge": "EdgeByEdge",
    "divide-star": "Divide-Star",
    "divide-td": "Divide-TD",
}


def _panel(
    results: Sequence[CellResult],
    value_of,
    title: str,
    x_label: str,
    number_format: str,
) -> str:
    xs: List[object] = []
    algorithms: List[str] = []
    for cell in results:
        if cell.x not in xs:
            xs.append(cell.x)
        if cell.algorithm not in algorithms:
            algorithms.append(cell.algorithm)
    by_key: Dict[tuple, CellResult] = {
        (cell.x, cell.algorithm): cell for cell in results
    }
    headers = [x_label] + [ALGORITHM_LABELS.get(a, a) for a in algorithms]
    rows = []
    for x in xs:
        row = [str(x)]
        for algorithm in algorithms:
            cell = by_key.get((x, algorithm))
            if cell is None:
                row.append("-")
            elif cell.dnf:
                row.append("DNF")
            else:
                row.append(number_format.format(value_of(cell)))
        rows.append(row)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_experiment(
    name: str,
    results: Sequence[CellResult],
    x_label: str,
) -> str:
    """Render both panels of one experiment, paper-figure style."""
    time_panel = _panel(
        results,
        lambda cell: cell.time_seconds,
        f"{name} (a) Processing Time (s)",
        x_label,
        "{:.2f}",
    )
    io_panel = _panel(
        results,
        lambda cell: cell.ios,
        f"{name} (b) # of I/Os (blocks)",
        x_label,
        "{:d}",
    )
    meta = _panel(
        results,
        lambda cell: cell.passes,
        f"{name} (aux) restructure passes",
        x_label,
        "{:d}",
    )
    return "\n\n".join([time_panel, io_panel, meta])


def render_csv(results: Sequence[CellResult]) -> str:
    """Machine-readable dump of a series.

    ``ios`` is the logical charge (identical under any survivable fault
    plan); ``retries``/``faults`` report what the resilience layer
    absorbed; ``workers`` is the process-pool width the cell ran with
    (1 = sequential) and ``oversubscribed`` how many pool dispatches had
    memory-share floors exceeding the budget ``M`` (the
    ``worker_memory_oversubscribed`` counter).  ``codec`` /
    ``compression_ratio`` /
    ``blocks_per_scan`` describe the edge-block codec: which one wrote
    the cell's blocks, the raw/stored byte ratio it achieved, and how
    many sealed blocks one full input scan reads.  The trailing
    ``<phase>_seconds``/``<phase>_ios`` column pairs break the run down
    over the non-overlapping span phases (restructure/divide/solve/
    merge); zero for phases the algorithm never entered or when the cell
    ran untraced.
    """
    phase_headers = ",".join(
        f"{phase}_seconds,{phase}_ios" for phase in PHASE_COLUMNS
    )
    lines = [
        "x,algorithm,time_seconds,ios,passes,divisions,nodes,edges,"
        "retries,faults,dnf,kernel,workers,oversubscribed,codec,"
        f"compression_ratio,blocks_per_scan,{phase_headers}"
    ]
    for cell in results:
        phases = ",".join(
            f"{cell.phase_seconds.get(phase, 0.0):.4f},"
            f"{cell.phase_ios.get(phase, 0)}"
            for phase in PHASE_COLUMNS
        )
        lines.append(
            f"{cell.x},{cell.algorithm},{cell.time_seconds:.4f},{cell.ios},"
            f"{cell.passes},{cell.divisions},{cell.node_count},"
            f"{cell.edge_count},{cell.retries},{cell.faults},"
            f"{int(cell.dnf)},{cell.kernel},{cell.workers},"
            f"{cell.oversubscribed},{cell.codec},"
            f"{cell.compression_ratio:.3f},{cell.blocks_per_scan},{phases}"
        )
    return "\n".join(lines)
