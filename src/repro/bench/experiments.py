"""Experiment definitions for every table and figure in the paper (§8).

Scaling: the paper runs 10⁷–10⁹-edge graphs on a 2010 PC; this harness runs
the same *relative* configurations ~1000x smaller (see DESIGN.md §4).  The
environment variable ``REPRO_BENCH_SCALE`` (default 0.1) further scales all
node counts; 1.0 runs the full 1000x configuration.

Memory model: the paper's gigabyte labels are mapped onto the element
budget ``M(gb) = n_default * (3 + 1.2 * gb)`` — the 0.5→1.5 GB sweep then
spans batch capacities of ~12% to ~36% of the default edge set, the same
dynamic regime as the paper's Exp-4, while always respecting the
semi-external floor ``M >= 3|V|``.  For the node-size sweep (Exp-2) the
budget tracks ``n`` at the 1 GB ratio because a fixed absolute budget
cannot span the sweep once the ``3|V|`` floor moves (recorded as a
substitution in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import random
from typing import Dict, Iterable, List, Tuple

from ..graph import datasets as ds
from ..graph.generators import power_law_graph_edges, random_graph_edges
from ..graph.sampling import sample_edges
from .harness import CellResult, run_cell

Edge = Tuple[int, int]


def workload_block_elements(expected_edges: int) -> int:
    """A block size giving the workload a realistic block count.

    The EM-model ratios the paper plots assume files spanning many
    thousands of blocks (webspam-uk2007 is ~57k blocks of 64 KB).  A
    fixed 4096-edge block at laptop scale would leave whole graphs only a
    handful of blocks, letting per-file granularity (every tiny part file
    costs one whole block) dominate the counts.  Targeting ~512 blocks
    per graph keeps the ratios in the regime the paper measures.
    """
    return max(64, expected_edges // 512)


def bench_scale() -> float:
    """Global size multiplier (``REPRO_BENCH_SCALE``).

    The default 0.1 keeps the full 12-figure suite under ~30 minutes of
    pure-Python execution; 1.0 runs the full 1000x-scaled-down paper
    configuration (tens of thousands of nodes per graph).
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


# ----------------------------------------------------------------------
# Table 1 — synthetic parameter ranges (paper values scaled 1000x down)
# ----------------------------------------------------------------------
SYNTHETIC_PARAMETERS = {
    "node_sizes": [30_000, 40_000, 50_000, 60_000, 70_000],
    "default_nodes": 50_000,
    "degrees": [3, 4, 5, 6, 7],
    "default_degree": 5,
    "power_law_ness": [0.25, 0.5, 1.0, 2.0, 4.0],
    "default_power_law_ness": 1.0,
    "memory_gb": [0.5, 0.75, 1.0, 1.25, 1.5],
    "default_memory_gb": 1.0,
}

#: The three algorithms of the paper's comparison figures.
PAPER_ALGORITHMS = ["edge-by-batch", "divide-star", "divide-td"]

#: The paper's Exp-1 sweep over the fraction of |E| kept.
EDGE_PERCENTAGES = [0.2, 0.4, 0.6, 0.8, 1.0]


def scaled_nodes(base: int) -> int:
    return max(64, int(base * bench_scale()))


def default_nodes() -> int:
    return scaled_nodes(SYNTHETIC_PARAMETERS["default_nodes"])


def memory_for_gb(gb: float) -> int:
    """Element budget for a paper memory label (see module docstring)."""
    return int(default_nodes() * (3 + 1.2 * gb))


def memory_ratio_for_gb(gb: float, node_count: int) -> int:
    """Same mapping but tracking ``node_count`` (used when |V| sweeps)."""
    return int(node_count * (3 + 1.2 * gb))


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------
def synthetic_edges(
    kind: str,
    node_count: int,
    degree: float,
    power_law_ness: float = 1.0,
    seed: int = 42,
) -> Iterable[Edge]:
    """The paper's two synthetic families (§8, Datasets)."""
    if kind == "random":
        return random_graph_edges(node_count, degree, seed=seed)
    if kind == "power-law":
        return power_law_graph_edges(
            node_count, degree, attractiveness=power_law_ness * degree, seed=seed
        )
    raise ValueError(f"unknown synthetic kind {kind!r}")


def real_dataset_specs() -> Dict[str, ds.DatasetSpec]:
    """The four Exp-1 dataset stand-ins at the current bench scale."""
    return ds.all_datasets(scale=bench_scale())


def exp1_memory() -> int:
    """The fixed "2 GB" budget shared by all four Exp-1 datasets.

    Sized against the largest dataset (webspam-uk2007): the paper's 2 GB
    barely exceeds the spanning-tree floor for its 106M-node graph, so the
    budget here is the tree plus a batch worth only ~2.5% of the edges —
    the memory-starved regime all of Exp-1 runs in.
    """
    webspam = ds.webspam_uk2007_like(scale=bench_scale())
    edge_estimate = int(webspam.node_count * webspam.average_degree)
    return 3 * webspam.node_count + edge_estimate // 40


# ----------------------------------------------------------------------
# Experiments (one function per paper experiment; two figures share one
# function via the `kind` parameter)
# ----------------------------------------------------------------------
def exp1_real_dataset(dataset_name: str) -> List[CellResult]:
    """Exp-1 (Figs. 8–11): vary the kept percentage of |E| per dataset."""
    spec = real_dataset_specs()[dataset_name]
    memory = exp1_memory()
    block = workload_block_elements(int(spec.node_count * spec.average_degree))
    results: List[CellResult] = []
    for fraction in EDGE_PERCENTAGES:
        for algorithm in PAPER_ALGORITHMS:
            results.append(
                run_cell(
                    x=f"{int(fraction * 100)}%",
                    algorithm=algorithm,
                    node_count=spec.node_count,
                    edges=sample_edges(spec.edges(), fraction, seed=77),
                    memory=memory,
                    block_elements=block,
                )
            )
    return results


def exp2_vary_nodes(kind: str) -> List[CellResult]:
    """Exp-2 (Figs. 12–13): vary |V| from 30k to 70k (paper: 30M–70M)."""
    degree = SYNTHETIC_PARAMETERS["default_degree"]
    results: List[CellResult] = []
    for base in SYNTHETIC_PARAMETERS["node_sizes"]:
        node_count = scaled_nodes(base)
        memory = memory_ratio_for_gb(1.0, node_count)
        for algorithm in PAPER_ALGORITHMS:
            results.append(
                run_cell(
                    x=f"{base // 1000}k",
                    algorithm=algorithm,
                    node_count=node_count,
                    edges=synthetic_edges(kind, node_count, degree),
                    memory=memory,
                    block_elements=workload_block_elements(node_count * degree),
                )
            )
    return results


def exp3_vary_degree(kind: str) -> List[CellResult]:
    """Exp-3 (Figs. 14–15): vary the average degree from 3 to 7."""
    node_count = default_nodes()
    memory = memory_for_gb(1.0)
    results: List[CellResult] = []
    for degree in SYNTHETIC_PARAMETERS["degrees"]:
        for algorithm in PAPER_ALGORITHMS:
            results.append(
                run_cell(
                    x=degree,
                    algorithm=algorithm,
                    node_count=node_count,
                    edges=synthetic_edges(kind, node_count, degree),
                    memory=memory,
                    block_elements=workload_block_elements(node_count * degree),
                )
            )
    return results


def exp4_vary_memory(kind: str) -> List[CellResult]:
    """Exp-4 (Figs. 16–17): vary the memory budget from 0.5 to 1.5 GB."""
    node_count = default_nodes()
    degree = SYNTHETIC_PARAMETERS["default_degree"]
    results: List[CellResult] = []
    edges_cache = list(synthetic_edges(kind, node_count, degree))
    block = workload_block_elements(len(edges_cache))
    for gb in SYNTHETIC_PARAMETERS["memory_gb"]:
        for algorithm in PAPER_ALGORITHMS:
            results.append(
                run_cell(
                    x=f"{gb}GB",
                    algorithm=algorithm,
                    node_count=node_count,
                    edges=edges_cache,
                    memory=memory_for_gb(gb),
                    block_elements=block,
                )
            )
    return results


def exp5_power_law_ness() -> List[CellResult]:
    """Exp-5 (Fig. 18): vary the power-law-ness |A|/D from 0.25 to 4."""
    node_count = default_nodes()
    degree = SYNTHETIC_PARAMETERS["default_degree"]
    memory = memory_for_gb(1.0)
    results: List[CellResult] = []
    for ratio in SYNTHETIC_PARAMETERS["power_law_ness"]:
        for algorithm in PAPER_ALGORITHMS:
            results.append(
                run_cell(
                    x=ratio,
                    algorithm=algorithm,
                    node_count=node_count,
                    edges=synthetic_edges(
                        "power-law", node_count, degree, power_law_ness=ratio
                    ),
                    memory=memory,
                    block_elements=workload_block_elements(node_count * degree),
                )
            )
    return results


def exp6_start_node(repetitions: int = 3) -> List[CellResult]:
    """Exp-6 (Fig. 19): start node drawn from each degree quintile.

    Nodes are split evenly into 5 partitions by total degree (partition 1 =
    lowest); each cell averages ``repetitions`` random start nodes from the
    partition (the paper averages 10).
    """
    node_count = default_nodes()
    degree = SYNTHETIC_PARAMETERS["default_degree"]
    memory = memory_for_gb(1.0)
    edges_cache = list(synthetic_edges("power-law", node_count, degree))

    totals = [0] * node_count
    for u, v in edges_cache:
        totals[u] += 1
        totals[v] += 1
    by_degree = sorted(range(node_count), key=lambda n: totals[n])
    quintile = node_count // 5
    partitions = [
        by_degree[i * quintile : (i + 1) * quintile if i < 4 else node_count]
        for i in range(5)
    ]

    rng = random.Random(4242)
    results: List[CellResult] = []
    for index, partition in enumerate(partitions, start=1):
        starts = [rng.choice(partition) for _ in range(repetitions)]
        for algorithm in ["divide-star", "divide-td"]:
            cells = [
                run_cell(
                    x=index,
                    algorithm=algorithm,
                    node_count=node_count,
                    edges=edges_cache,
                    memory=memory,
                    start=start,
                    block_elements=workload_block_elements(len(edges_cache)),
                )
                for start in starts
            ]
            results.append(
                CellResult(
                    x=index,
                    algorithm=algorithm,
                    time_seconds=sum(c.time_seconds for c in cells) / len(cells),
                    ios=sum(c.ios for c in cells) // len(cells),
                    passes=sum(c.passes for c in cells) // len(cells),
                    divisions=sum(c.divisions for c in cells) // len(cells),
                    node_count=node_count,
                    edge_count=cells[0].edge_count,
                    dnf=any(c.dnf for c in cells),
                )
            )
    return results
