"""The top-level facade: one call to DFS a graph that lives on disk.

>>> from repro import BlockDevice, DiskGraph, semi_external_dfs
>>> from repro.graph import random_graph
>>> with BlockDevice() as device:
...     graph = DiskGraph.from_digraph(device, random_graph(1000, 5, seed=1))
...     result = semi_external_dfs(graph, memory=4000, algorithm="divide-td")
...     len(result.order)
1000
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .algorithms.base import DFSResult
from .algorithms.divide_conquer import divide_star_dfs, divide_td_dfs
from .algorithms.edge_by_batch import edge_by_batch
from .algorithms.edge_by_edge import edge_by_edge
from .graph.disk_graph import DiskGraph

#: Registered algorithm names, as used throughout the benchmarks.  The
#: paper's SEMI-DFS comparison baseline is ``edge-by-batch``.
ALGORITHMS: Dict[str, Callable[..., DFSResult]] = {
    "edge-by-edge": edge_by_edge,
    "edge-by-batch": edge_by_batch,
    "semi-dfs": edge_by_batch,  # the paper's name for the baseline
    "divide-star": divide_star_dfs,
    "divide-td": divide_td_dfs,
}


def semi_external_dfs(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
    start: Optional[int] = None,
    **options: object,
) -> DFSResult:
    """Compute a DFS-Tree of an on-disk graph under a memory budget.

    Args:
        graph: the graph (node count in memory, edges on disk).
        memory: budget ``M`` in elements; must satisfy ``M >= 3 * |V|``
            (the semi-external assumption).
        algorithm: one of ``edge-by-edge``, ``edge-by-batch`` /
            ``semi-dfs``, ``divide-star``, ``divide-td``.
        start: optional start node for the DFS.
        **options: forwarded to the algorithm — ``max_passes`` and
            ``deadline_seconds`` everywhere; ``use_external_stack``,
            ``order``, ``checkpoint_every``, ``initial_tree`` for the
            batch baseline; ``trace`` for the divide & conquer pair.
            See docs/API.md for the full option table.

    Returns:
        A :class:`~repro.algorithms.base.DFSResult` with the tree, the DFS
        total order, and the measured I/O and pass counts.
    """
    try:
        runner = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    return runner(graph, memory, start=start, **options)
