"""The top-level facade: one call to DFS a graph that lives on disk.

>>> from repro import BlockDevice, DiskGraph, semi_external_dfs
>>> from repro.graph import random_graph
>>> with BlockDevice() as device:
...     graph = DiskGraph.from_digraph(device, random_graph(1000, 5, seed=1))
...     result = semi_external_dfs(graph, memory=4000, algorithm="divide-td")
...     len(result.order)
1000

Options are passed as a typed :class:`~repro.options.RunOptions` value::

    result = semi_external_dfs(
        graph, memory, algorithm="divide-td",
        options=RunOptions(deadline_seconds=60.0, tracer=Tracer()),
    )

Legacy keyword options (``semi_external_dfs(..., max_passes=8)``) still
work but emit a ``DeprecationWarning`` once per option name; unknown
names raise a ``ValueError`` listing the valid ones.  Algorithms live in
an :class:`~repro.registry.AlgorithmRegistry` (``repro.ALGORITHMS``),
extensible via :func:`register_algorithm`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Set

from .algorithms.base import RunResult
from .algorithms.bfs import semi_external_bfs
from .algorithms.divide_conquer import divide_star_dfs, divide_td_dfs
from .algorithms.edge_by_batch import edge_by_batch
from .algorithms.edge_by_edge import edge_by_edge
from .graph.disk_graph import DiskGraph
from .options import OPTION_NAMES, RunOptions
from .registry import BASE_OPTIONS, AlgorithmRegistry, AlgorithmSpec

#: Options understood by the edge-by-batch baseline on top of the base set.
BATCH_OPTIONS = BASE_OPTIONS | {
    "order", "use_external_stack", "checkpoint_every", "initial_tree",
}

#: Options understood by the divide & conquer algorithms: the base set
#: plus the process-pool width for the top-level parts and the worker
#: boundary kind (repro.parallel).
DIVIDE_OPTIONS = BASE_OPTIONS | {"workers", "worker_boundary"}

#: Registered algorithms, as used throughout the benchmarks.  A
#: ``Mapping[str, runner]`` whose keys include aliases (the paper's name
#: for the batch baseline is ``SEMI-DFS``); see
#: :class:`~repro.registry.AlgorithmRegistry` for the richer spec API.
ALGORITHMS = AlgorithmRegistry()

ALGORITHMS.register(AlgorithmSpec(
    name="edge-by-edge",
    runner=edge_by_edge,
    description="per-edge restructuring heuristic (quadratic; baseline)",
    slow=True,
))
ALGORITHMS.register(AlgorithmSpec(
    name="edge-by-batch",
    runner=edge_by_batch,
    description="batched restructuring baseline (the paper's SEMI-DFS)",
    aliases=("semi-dfs",),
    options=BATCH_OPTIONS,
))
ALGORITHMS.register(AlgorithmSpec(
    name="divide-star",
    runner=divide_star_dfs,
    description="divide & conquer with Divide-Star divisions",
    options=DIVIDE_OPTIONS,
))
ALGORITHMS.register(AlgorithmSpec(
    name="divide-td",
    runner=divide_td_dfs,
    description="divide & conquer with top-down (Divide-TD) divisions",
    options=DIVIDE_OPTIONS,
))
ALGORITHMS.register(AlgorithmSpec(
    name="bfs",
    runner=semi_external_bfs,
    description="semi-external BFS by iterated level relaxation (sibling "
                "traversal; returns a BFSResult)",
    aliases=("semi-bfs",),
))


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register a third-party algorithm under its name and aliases.

    The runner must accept ``(graph, memory, start=..., **options)`` and
    return a :class:`~repro.algorithms.base.RunResult` subclass; it
    becomes available to :func:`semi_external_dfs`, ``repro dfs
    --algorithm`` and ``repro compare`` immediately.
    """
    return ALGORITHMS.register(spec)


#: Legacy option names already warned about this process (the shim warns
#: once per name, not once per call).
_WARNED_OPTIONS: Set[str] = set()


def _apply_legacy_options(
    options: RunOptions,
    legacy: Dict[str, object],
) -> RunOptions:
    """Fold deprecated ``**kwargs`` options into a :class:`RunOptions`."""
    changes: Dict[str, object] = {}
    for name, value in legacy.items():
        if name == "trace":
            # The pre-RunOptions spelling of "give me a tracer".
            if value:
                from .obs import Tracer

                changes["tracer"] = Tracer()
        elif name in OPTION_NAMES:
            changes[name] = value
        else:
            known = ", ".join(sorted(OPTION_NAMES | {"trace"}))
            raise ValueError(
                f"unknown option {name!r}; valid options: {known}"
            )
        if name not in _WARNED_OPTIONS:
            _WARNED_OPTIONS.add(name)
            warnings.warn(
                f"passing {name!r} as a keyword to semi_external_dfs() is "
                f"deprecated; use options=RunOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    return options.replace(**changes) if changes else options


def semi_external_dfs(
    graph: DiskGraph,
    memory: int,
    algorithm: str = "divide-td",
    start: Optional[int] = None,
    options: Optional[RunOptions] = None,
    **legacy_options: object,
) -> RunResult:
    """Run a registered semi-external traversal under a memory budget.

    Args:
        graph: the graph (node count in memory, edges on disk).
        memory: budget ``M`` in elements; must satisfy ``M >= 3 * |V|``
            (the semi-external assumption).
        algorithm: a registered name or alias — ``edge-by-edge``,
            ``edge-by-batch`` / ``semi-dfs``, ``divide-star``,
            ``divide-td``, ``bfs`` / ``semi-bfs``, or anything added via
            :func:`register_algorithm`.
        start: optional start node for the traversal.
        options: typed run options; fields explicitly set but not
            supported by the chosen algorithm raise ``ValueError``.
            See docs/API.md for the per-algorithm option table.
        **legacy_options: deprecated keyword spelling of the same
            options (plus ``trace``); emits a ``DeprecationWarning``
            once per name.

    Returns:
        A :class:`~repro.algorithms.base.RunResult` with the tree, the
        induced node order, the measured I/O and pass counts, and the
        recorded span events — a
        :class:`~repro.algorithms.base.DFSResult` for the DFS family, a
        :class:`~repro.algorithms.base.BFSResult` for ``bfs``.
    """
    spec = ALGORITHMS.spec(algorithm)
    resolved = options if options is not None else RunOptions()
    if legacy_options:
        resolved = _apply_legacy_options(resolved, legacy_options)
    kwargs = resolved.to_kwargs(spec.options, spec.name)
    return spec.runner(graph, memory, start=start, **kwargs)
