"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a synthetic graph (or dataset stand-in) as a text
  edge list.
* ``dfs`` — semi-external DFS over a text edge list; prints cost metrics
  and optionally the DFS order.
* ``bfs`` — semi-external BFS; prints pass/level metrics and optionally
  the per-node levels and parents.
* ``toposort`` — semi-external topological sort of a DAG edge list.
* ``scc`` — semi-external strongly connected components (Kosaraju).
* ``bench`` — run one paper experiment and print its figure tables.
* ``publish`` — run a DFS and seal it into a versioned artifact store.
* ``serve`` — serve order/ancestor/toposort/SCC/reachability queries
  over published artifacts via HTTP.
* ``query`` — answer one query from a published artifact, no server.

Examples::

    python -m repro generate --kind power-law --nodes 20000 --degree 5 \\
        --output graph.txt
    python -m repro dfs --input graph.txt --algorithm divide-td \\
        --memory-ratio 0.4 --verify
    python -m repro bench --experiment exp2:power-law
    python -m repro publish --input graph.txt --store ./artifacts \\
        --name web --sources 0
    python -m repro serve --store ./artifacts --port 8080
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

from . import bench as bench_mod
from .api import ALGORITHMS, semi_external_dfs
from .apps import sealed_topological_order, strongly_connected_components
from .core import verify_dfs_tree
from .errors import ReproError
from .graph import all_datasets, load_edge_list, write_edge_list
from .graph.generators import power_law_graph_edges, random_graph_edges
from .obs import JSONLSink, Tracer, render_profile
from .options import RunOptions
from .serve import (
    ArtifactStore,
    QueryEngine,
    ReproServer,
    ServeConfig,
    seal_result,
)
from .storage import BlockDevice, FaultPlan
from .storage.faults import FAULT_SEED_ENV_VAR


def _add_common_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="text edge list (u v per line)")
    parser.add_argument(
        "--nodes", type=int, default=-1,
        help="node count (default: inferred as max id + 1)",
    )
    parser.add_argument(
        "--memory", type=int, default=0,
        help="memory budget M in elements (>= 3|V|)",
    )
    parser.add_argument(
        "--memory-ratio", type=float, default=0.0,
        help="set M = 3|V| + ratio * |E| instead of --memory",
    )
    parser.add_argument(
        "--block-size", type=int, default=4096, help="elements per block (B)"
    )
    parser.add_argument(
        "--kernel", choices=["auto", "python", "numpy"], default=None,
        help="columnar kernel backend (default: $REPRO_KERNEL, then auto)",
    )
    parser.add_argument(
        "--block-codec", choices=["fixed32", "delta-varint"], default=None,
        help="edge-block payload codec for files written during the run "
             "(default: $REPRO_BLOCK_CODEC, then fixed32)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="inject seeded transient disk faults (replayable; default: "
             f"${FAULT_SEED_ENV_VAR} when set, else no faults)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.02,
        help="per-block probability of a transient fault (with --fault-seed)",
    )
    parser.add_argument(
        "--fault-max", type=int, default=None,
        help="total fault budget for the run (default: unlimited)",
    )


def _resolve_fault_plan(args: argparse.Namespace):
    """Build the device's FaultPlan from --fault-* flags / $REPRO_FAULT_SEED."""
    if args.fault_seed is not None:
        return FaultPlan.transient(
            args.fault_seed, rate=args.fault_rate, max_faults=args.fault_max
        )
    return FaultPlan.from_env(rate=args.fault_rate, max_faults=args.fault_max)


def _resolve_memory(args: argparse.Namespace, node_count: int, edge_count: int) -> int:
    if args.memory:
        return args.memory
    ratio = args.memory_ratio if args.memory_ratio > 0 else 0.25
    return 3 * node_count + int(ratio * edge_count)


def _command_generate(args: argparse.Namespace) -> int:
    datasets = all_datasets(scale=args.scale)
    if args.kind == "random":
        edges = random_graph_edges(args.nodes, args.degree, seed=args.seed)
        header = f"random graph n={args.nodes} D={args.degree} seed={args.seed}"
    elif args.kind == "power-law":
        edges = power_law_graph_edges(
            args.nodes, args.degree,
            attractiveness=args.power_law_ness * args.degree, seed=args.seed,
        )
        header = (
            f"power-law graph n={args.nodes} D={args.degree} "
            f"|A|/D={args.power_law_ness} seed={args.seed}"
        )
    elif args.kind in datasets:
        spec = datasets[args.kind]
        edges = spec.edges()
        header = f"{spec.name} stand-in n={spec.node_count} scale={args.scale}"
    else:
        known = ["random", "power-law"] + list(datasets)
        print(f"unknown kind {args.kind!r}; known: {', '.join(known)}", file=sys.stderr)
        return 2
    count = write_edge_list(args.output, edges, header=header)
    print(f"wrote {count} edges to {args.output}")
    return 0


def _command_dfs(args: argparse.Namespace) -> int:
    fault_plan = _resolve_fault_plan(args)
    tracer: Optional[Tracer] = None
    trace_sink: Optional[JSONLSink] = None
    if args.trace_out or args.profile:
        tracer = Tracer()
        if args.trace_out:
            trace_sink = JSONLSink(args.trace_out)
            tracer.attach(trace_sink)
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        fault_plan=fault_plan, block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        print(
            f"graph: n={graph.node_count} m={graph.edge_count} "
            f"blocks={graph.edge_file.block_count}  M={memory}"
        )
        try:
            result = semi_external_dfs(
                graph, memory, algorithm=args.algorithm, start=args.start,
                options=RunOptions(
                    tracer=tracer, workers=args.workers,
                    worker_boundary=args.worker_boundary,
                ),
            )
        finally:
            if trace_sink is not None:
                trace_sink.close()
        print(
            f"{result.algorithm}: time={result.elapsed_seconds:.2f}s "
            f"io={result.io.total} (r={result.io.reads} w={result.io.writes}) "
            f"passes={result.passes} "
            f"divisions={getattr(result, 'divisions', 0)} "
            f"depth={getattr(result, 'max_depth', 0)} kernel={result.kernel} "
            f"retries={result.retries} faults={result.faults}"
        )
        if args.workers > 1:
            details = getattr(result, "details", {})
            print(
                f"pool: workers={args.workers} "
                f"dispatches={details.get('parallel_dispatches', 0)} "
                f"oversubscribed={details.get('worker_memory_oversubscribed', 0)} "
                f"boundary_fallbacks={details.get('worker_boundary_fallbacks', 0)}"
            )
        if trace_sink is not None:
            print(
                f"trace: {trace_sink.events_written} span events written "
                f"to {args.trace_out}"
            )
        if args.profile and tracer is not None:
            print(render_profile(result.events, tracer.metrics))
        if fault_plan is not None:
            print(
                f"fault plan: seed={fault_plan.seed} "
                f"rate={fault_plan.read_error_rate} "
                f"injected={device.faults.injected if device.faults else 0} "
                f"checksum_failures={result.io.checksum_failures}"
            )
        if args.verify:
            report = verify_dfs_tree(graph, result.tree)
            status = "VALID" if report.ok else "INVALID"
            print(
                f"verification: {status} "
                f"(forward-cross edges: {report.forward_cross_count})"
            )
            if not report.ok:
                return 1
        if args.output:
            # repro: allow[SEX101] user-facing result text, not modelled block I/O
            with open(args.output, "w", encoding="utf-8") as handle:
                for node in result.order:
                    handle.write(f"{node}\n")
            print(f"DFS order written to {args.output}")
        else:
            preview = " ".join(map(str, result.order[:12]))
            print(f"DFS order: {preview} ...")
    return 0


def _command_bfs(args: argparse.Namespace) -> int:
    """Semi-external BFS: levels summary, optional node/level/parent dump."""
    fault_plan = _resolve_fault_plan(args)
    tracer: Optional[Tracer] = None
    trace_sink: Optional[JSONLSink] = None
    if args.trace_out or args.profile:
        tracer = Tracer()
        if args.trace_out:
            trace_sink = JSONLSink(args.trace_out)
            tracer.attach(trace_sink)
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        fault_plan=fault_plan, block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        print(
            f"graph: n={graph.node_count} m={graph.edge_count} "
            f"blocks={graph.edge_file.block_count}  M={memory}"
        )
        try:
            result = semi_external_dfs(
                graph, memory, algorithm="bfs", start=args.start,
                options=RunOptions(tracer=tracer),
            )
        finally:
            if trace_sink is not None:
                trace_sink.close()
        print(
            f"bfs: time={result.elapsed_seconds:.2f}s "
            f"io={result.io.total} (r={result.io.reads} w={result.io.writes}) "
            f"passes={result.passes} depth={result.depth} "
            f"reached={result.reached_count}/{graph.node_count} "
            f"kernel={result.kernel} "
            f"retries={result.retries} faults={result.faults}"
        )
        if trace_sink is not None:
            print(
                f"trace: {trace_sink.events_written} span events written "
                f"to {args.trace_out}"
            )
        if args.profile and tracer is not None:
            print(render_profile(result.events, tracer.metrics))
        if args.output:
            # repro: allow[SEX101] user-facing result text, not modelled block I/O
            with open(args.output, "w", encoding="utf-8") as handle:
                for node, level in enumerate(result.levels):
                    parent = result.tree.parent.get(node)
                    if level is None or parent == result.tree.root:
                        parent = -1
                    shown = -1 if level is None else level
                    handle.write(f"{node} {shown} {parent}\n")
            print(f"BFS levels written to {args.output}")
        else:
            preview = " ".join(
                "-" if level is None else str(level)
                for level in result.levels[:12]
            )
            print(f"levels: {preview} ...")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    """Run every registered algorithm on one edge list and compare costs."""
    from .errors import ConvergenceError

    # Enumerate the registry (canonical names, once per algorithm), so
    # third-party algorithms registered via register_algorithm() are
    # swept too; slow entries join only on request.
    algorithms = [
        spec.name
        for spec in ALGORITHMS.specs()
        if not spec.slow or args.include_edge_by_edge
    ]
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        print(
            f"graph: n={graph.node_count} m={graph.edge_count}  M={memory}  "
            f"timeout={args.timeout}s"
        )
        header = f"{'algorithm':14s} {'time':>8s} {'I/Os':>8s} {'passes':>6s} {'div':>4s}"
        print(header)
        print("-" * len(header))
        for algorithm in algorithms:
            try:
                result = semi_external_dfs(
                    graph, memory, algorithm=algorithm,
                    options=RunOptions(deadline_seconds=args.timeout),
                )
            except ConvergenceError:
                print(f"{algorithm:14s} {'DNF':>8s}")
                continue
            print(
                f"{algorithm:14s} {result.elapsed_seconds:7.2f}s "
                f"{result.io.total:8d} {result.passes:6d} "
                f"{getattr(result, 'divisions', 0):4d}"
            )
    return 0


def _command_toposort(args: argparse.Namespace) -> int:
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        order = sealed_topological_order(graph, memory, algorithm=args.algorithm)
        if args.output:
            # repro: allow[SEX101] user-facing result text, not modelled block I/O
            with open(args.output, "w", encoding="utf-8") as handle:
                for node in order:
                    handle.write(f"{node}\n")
            print(f"topological order written to {args.output}")
        else:
            print(" ".join(map(str, order[:20])), "..." if len(order) > 20 else "")
    return 0


def _command_scc(args: argparse.Namespace) -> int:
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        components = strongly_connected_components(graph, memory)
        print(f"{len(components)} strongly connected components")
        for index, component in enumerate(components[: args.top]):
            share = len(component) / graph.node_count
            print(f"  #{index + 1}: {len(component)} nodes ({share:.1%})")
    return 0


_EXPERIMENTS = {
    "exp1:webspam-uk2007": (lambda: bench_mod.exp1_real_dataset("webspam-uk2007"), "|E| kept"),
    "exp1:twitter-2010": (lambda: bench_mod.exp1_real_dataset("twitter-2010"), "|E| kept"),
    "exp1:wikilink": (lambda: bench_mod.exp1_real_dataset("wikilink"), "|E| kept"),
    "exp1:arabic-2005": (lambda: bench_mod.exp1_real_dataset("arabic-2005"), "|E| kept"),
    "exp2:power-law": (lambda: bench_mod.exp2_vary_nodes("power-law"), "|V|"),
    "exp2:random": (lambda: bench_mod.exp2_vary_nodes("random"), "|V|"),
    "exp3:power-law": (lambda: bench_mod.exp3_vary_degree("power-law"), "degree"),
    "exp3:random": (lambda: bench_mod.exp3_vary_degree("random"), "degree"),
    "exp4:power-law": (lambda: bench_mod.exp4_vary_memory("power-law"), "memory"),
    "exp4:random": (lambda: bench_mod.exp4_vary_memory("random"), "memory"),
    "exp5": (bench_mod.exp5_power_law_ness, "|A|/D"),
    "exp6": (bench_mod.exp6_start_node, "degree partition"),
}


def _command_planarity(args: argparse.Namespace) -> int:
    from .apps import check_planarity

    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        report = check_planarity(graph)
        verdict = "planar" if report.planar else "NOT planar"
        mode = "decided by the left-right test" if report.loaded else (
            "decided by the Euler bound without loading the graph"
        )
        print(f"{verdict}: {report.reason}")
        print(f"simple undirected edges: {report.simple_edge_count} ({mode})")
    return 0 if report.planar else 3


def _command_publish(args: argparse.Namespace) -> int:
    """Run a semi-external DFS and seal it into the artifact store."""
    sources = (
        [int(part) for part in args.sources.split(",") if part != ""]
        if args.sources else []
    )
    with BlockDevice(
        block_elements=args.block_size, kernel=args.kernel,
        block_codec=args.block_codec,
    ) as device:
        graph = load_edge_list(args.input, device, node_count=args.nodes)
        memory = _resolve_memory(args, graph.node_count, graph.edge_count)
        options = RunOptions()
        result = semi_external_dfs(
            graph, memory, algorithm=args.algorithm, start=args.start,
            options=options,
        )
        artifact = seal_result(
            graph, result, memory=memory, sources=sources,
            with_scc=not args.no_scc,
            graph_digest=not args.no_digest,
            options=options,
        )
        with ArtifactStore(args.store) as store:
            ref = store.publish(artifact, args.name)
        print(
            f"published {ref} ({ref.path}) "
            f"nodes={graph.node_count} edges={graph.edge_count} "
            f"algorithm={result.algorithm}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Serve queries over published artifacts until interrupted."""
    config = ServeConfig(
        store_root=args.store,
        host=args.host,
        port=args.port,
        deadline_seconds=args.deadline_ms / 1000.0,
        trace_path=args.trace_out,
    )
    server = ReproServer(config)
    host, port = server.server_address[0], server.server_address[1]
    names = server.store.names()
    print(
        f"serving {len(names)} artifact(s) from {args.store} "
        f"on http://{host}:{port} (Ctrl-C to stop)"
    )

    def _stop(signum: int, frame: object) -> None:
        # SIGTERM gets the same clean-shutdown path as Ctrl-C; background
        # shells commonly leave SIGINT ignored, so supervisors and CI
        # send TERM
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _command_query(args: argparse.Namespace) -> int:
    """Answer one query from a published artifact (no server)."""
    params = {}
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"--param needs key=value, got {item!r}")
        params[key] = value
    with ArtifactStore(args.store) as store:
        # repro: allow[SEX104] ArtifactStore.open resolves a sealed artifact by name; its payload reads flow through device.read_block
        engine = QueryEngine(store.open(args.artifact))
        answer = engine.execute(args.kind, params)
    print(json.dumps(answer, indent=2, sort_keys=True))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    try:
        runner, x_label = _EXPERIMENTS[args.experiment]
    except KeyError:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    rows = runner()
    print(bench_mod.render_experiment(args.experiment, rows, x_label))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-external, I/O-efficient depth-first search (SIGMOD'15).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic edge list")
    generate.add_argument("--kind", default="power-law")
    generate.add_argument("--nodes", type=int, default=10_000)
    generate.add_argument("--degree", type=float, default=5.0)
    generate.add_argument("--power-law-ness", type=float, default=1.0)
    generate.add_argument("--scale", type=float, default=1.0,
                          help="dataset stand-in scale factor")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True)
    generate.set_defaults(handler=_command_generate)

    dfs = commands.add_parser("dfs", help="semi-external DFS")
    _add_common_graph_arguments(dfs)
    dfs.add_argument("--algorithm", default="divide-td",
                     choices=sorted(ALGORITHMS))
    dfs.add_argument("--start", type=int, default=None)
    dfs.add_argument("--workers", type=int, default=1,
                     help="process-pool width for the top-level division's "
                          "parts (divide & conquer only; 1 = sequential)")
    dfs.add_argument("--worker-boundary", choices=("shm", "pickle"),
                     default=None,
                     help="how pooled part trees cross the process line: "
                          "shared-memory columns (shm, the default) or the "
                          "legacy pickled payloads (pickle); results are "
                          "identical either way")
    dfs.add_argument("--verify", action="store_true",
                     help="scan the edge file to certify the DFS-Tree")
    dfs.add_argument("--output", help="write the DFS order here")
    dfs.add_argument("--trace-out",
                     help="write span events as JSON-Lines to this file")
    dfs.add_argument("--profile", action="store_true",
                     help="print a per-phase time/I/O profile after the run")
    dfs.set_defaults(handler=_command_dfs)

    bfs = commands.add_parser(
        "bfs", help="semi-external BFS (levels + sealed BFS-tree artifact)"
    )
    _add_common_graph_arguments(bfs)
    bfs.add_argument("--start", type=int, default=None,
                     help="BFS source node (default 0)")
    bfs.add_argument("--output",
                     help="write 'node level parent' lines here (-1 = none)")
    bfs.add_argument("--trace-out",
                     help="write span events as JSON-Lines to this file")
    bfs.add_argument("--profile", action="store_true",
                     help="print a per-phase time/I/O profile after the run")
    bfs.set_defaults(handler=_command_bfs)

    compare = commands.add_parser(
        "compare", help="run all algorithms on one graph and compare costs"
    )
    _add_common_graph_arguments(compare)
    compare.add_argument("--timeout", type=float, default=60.0,
                         help="per-algorithm wall-clock limit (DNF beyond)")
    compare.add_argument("--include-edge-by-edge", action="store_true",
                         help="also run the (slow) per-edge baseline")
    compare.set_defaults(handler=_command_compare)

    toposort = commands.add_parser("toposort", help="semi-external topological sort")
    _add_common_graph_arguments(toposort)
    toposort.add_argument("--algorithm", default="divide-td",
                          choices=sorted(ALGORITHMS))
    toposort.add_argument("--output")
    toposort.set_defaults(handler=_command_toposort)

    scc = commands.add_parser("scc", help="strongly connected components")
    _add_common_graph_arguments(scc)
    scc.add_argument("--top", type=int, default=5,
                     help="how many largest components to print")
    scc.set_defaults(handler=_command_scc)

    planarity = commands.add_parser(
        "planarity", help="planar graph test (exit code 3 when not planar)"
    )
    _add_common_graph_arguments(planarity)
    planarity.set_defaults(handler=_command_planarity)

    bench = commands.add_parser("bench", help="run one paper experiment")
    bench.add_argument("--experiment", required=True)
    bench.set_defaults(handler=_command_bench)

    publish = commands.add_parser(
        "publish",
        help="run a DFS and seal it into a versioned artifact store",
    )
    _add_common_graph_arguments(publish)
    publish.add_argument("--store", required=True,
                         help="artifact store root directory")
    publish.add_argument("--name", required=True,
                         help="artifact name (re-publishing bumps the version)")
    publish.add_argument("--algorithm", default="divide-td",
                         choices=sorted(ALGORITHMS))
    publish.add_argument("--start", type=int, default=None)
    publish.add_argument(
        "--sources", default="",
        help="comma-separated node ids to pin exact reachability bitsets for",
    )
    publish.add_argument(
        "--no-scc", action="store_true",
        help="skip sealing SCC membership columns",
    )
    publish.add_argument(
        "--no-digest", action="store_true",
        help="skip the graph CRC32 digest (saves one edge scan)",
    )
    publish.set_defaults(handler=_command_publish)

    serve = commands.add_parser(
        "serve", help="serve queries over published artifacts via HTTP"
    )
    serve.add_argument("--store", required=True,
                       help="artifact store root directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--deadline-ms", type=int, default=2000,
                       help="default per-request deadline")
    serve.add_argument("--trace-out", default=None,
                       help="write one JSONL span event per request here")
    serve.set_defaults(handler=_command_serve)

    query = commands.add_parser(
        "query", help="answer one query from a published artifact"
    )
    query.add_argument("--store", required=True,
                       help="artifact store root directory")
    query.add_argument("--artifact", required=True,
                       help="artifact reference: name or name@vN")
    query.add_argument("--kind", required=True,
                       help="query kind (order, ancestor, toposort, scc, ...)")
    query.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="query parameter (repeatable)")
    query.set_defaults(handler=_command_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, ValueError) as exc:
        # ValueError covers configuration mistakes surfaced by the typed
        # options layer (e.g. --workers with an algorithm that does not
        # support it); both deserve a clean error line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
