"""Inline waiver comments: ``# repro: allow[SEX101] <reason>``.

A waiver suppresses named rule codes on its own line and on the line
immediately below it, so both trailing comments::

    handle = open(path)  # repro: allow[SEX101] result file, not block I/O

and standalone comments above the offending statement work::

    # repro: allow[SEX101] result file, not block I/O
    handle = open(path)

The reason string is mandatory — an empty reason makes the waiver inert
and is itself reported as ``SEX001`` — and every waiver must actually
suppress something (``SEX003`` otherwise), so stale waivers cannot
accumulate.  Multiple codes are comma-separated: ``allow[SEX101,SEX104]``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Shape of a single rule code (``SEX`` + three digits).
CODE_PATTERN = re.compile(r"^SEX\d{3}$")

#: A well-formed waiver comment: marker, bracketed code list, free reason.
_WAIVER_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: Anything that *looks* like a waiver attempt (used to flag malformed ones).
_ATTEMPT_PATTERN = re.compile(r"#\s*repro:\s*allow\b")


@dataclass
class Waiver:
    """One parsed waiver comment.

    Attributes:
        line: 1-based line the comment sits on.
        codes: the rule codes it names (may be empty when malformed).
        reason: the justification text after the bracket (may be empty).
        malformed: the comment tried to be a waiver but failed to parse.
        used: set by the engine when the waiver suppressed a violation.
    """

    line: int
    codes: Tuple[str, ...] = ()
    reason: str = ""
    malformed: bool = False
    used: bool = field(default=False, compare=False)

    @property
    def active(self) -> bool:
        """Whether this waiver can suppress anything at all."""
        return bool(self.codes) and bool(self.reason.strip()) and not self.malformed

    def covers(self, code: str, line: int) -> bool:
        """Whether this waiver suppresses ``code`` at ``line``."""
        return self.active and code in self.codes and line in (self.line, self.line + 1)


def extract_waivers(source: str) -> List[Waiver]:
    """Parse every waiver comment in ``source``, malformed ones included.

    Tokenizes rather than regex-scanning raw lines so a waiver-shaped
    string *literal* is never mistaken for a comment.  Tokenization
    errors are ignored here — the engine reports unparseable files
    through its own ``SEX004`` path.
    """
    waivers: List[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if not _ATTEMPT_PATTERN.search(token.string):
            continue
        waivers.append(_parse_comment(token.string, token.start[0]))
    return waivers


def _parse_comment(comment: str, line: int) -> Waiver:
    match = _WAIVER_PATTERN.search(comment)
    if match is None:
        return Waiver(line=line, malformed=True)
    raw_codes = [code.strip() for code in match.group("codes").split(",")]
    codes = tuple(code for code in raw_codes if code)
    if not codes or any(not CODE_PATTERN.match(code) for code in codes):
        return Waiver(line=line, codes=codes, reason=match.group("reason").strip(),
                      malformed=True)
    return Waiver(line=line, codes=codes, reason=match.group("reason").strip())


def index_waivers(waivers: List[Waiver]) -> Dict[int, List[Waiver]]:
    """Map every line a waiver covers to the waivers covering it."""
    index: Dict[int, List[Waiver]] = {}
    for waiver in waivers:
        for line in (waiver.line, waiver.line + 1):
            index.setdefault(line, []).append(waiver)
    return index
