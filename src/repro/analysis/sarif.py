"""SARIF 2.1.0 rendering of an :class:`~.diagnostics.AnalysisReport`.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-scanning UIs ingest; CI uploads the document as a build
artifact so reviewers get checker findings inline.  The renderer is a
pure function of the report plus the rule registry: the ``tool.driver``
rule inventory always lists *every* registered rule (clean runs still
document what was checked), and results reference rules by index for
compact viewers.

Output is deterministic — rules and results are emitted in sorted
order and the CLI serializes with sorted keys — so two runs over the
same tree produce byte-identical documents (the cache-correctness CI
step relies on this).
"""

from __future__ import annotations

from typing import Dict, List

from .diagnostics import AnalysisReport, Violation

#: SARIF specification version emitted in the envelope.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_inventory() -> List[Dict[str, object]]:
    """Every registered rule (engine meta rules included), sorted by code."""
    from .rules import META_CODES, RULES

    inventory: List[Dict[str, object]] = []
    for code in sorted(META_CODES):
        inventory.append({
            "id": code,
            "name": code,
            "shortDescription": {"text": META_CODES[code]},
        })
    for code in sorted(RULES):
        rule = RULES[code]
        inventory.append({
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        })
    return inventory


def _result(violation: Violation, rule_index: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": violation.code,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": violation.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.column,
                },
            },
        }],
    }
    index = rule_index.get(violation.code)
    if index is not None:
        result["ruleIndex"] = index
    return result


def sarif_report(report: AnalysisReport) -> Dict[str, object]:
    """The SARIF 2.1.0 document for ``report`` (a plain JSON-able dict)."""
    rules = _rule_inventory()
    rule_index = {
        str(rule["id"]): position for position, rule in enumerate(rules)
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": rules,
                },
            },
            "results": [
                _result(violation, rule_index)
                for violation in sorted(report.violations)
            ],
            "properties": {
                "filesChecked": report.files_checked,
                "ok": report.ok,
            },
        }],
    }
