"""Intraprocedural control-flow graphs from stdlib ``ast``.

One :class:`CFG` node per *statement*, plus three pseudo-nodes: ``ENTRY``
(before the first statement), ``EXIT`` (every normal way out of the
function) and ``RAISE`` (the exceptional exit an uncaught exception
takes).  Edges carry a kind — ``"normal"`` for fallthrough, branch and
loop edges, ``"exception"`` for may-raise propagation — so a dataflow
client can apply a different transfer along the exceptional edge (e.g. a
resource acquired by the very call that raised was never acquired).

Coverage: ``if``/``while``/``for`` (with ``else`` and ``break`` /
``continue``), ``try``/``except``/``else``/``finally``, ``with``,
``return``, ``raise``, ``assert``, and ``match``.  ``finally`` bodies
are **cloned per continuation**, the way the bytecode compiler inlines
them: one clone on the fallthrough path, one on each abrupt exit
(``return``/``break``/``continue``) and one on the exceptional path, so
a release in a ``finally`` is seen on *every* path out of the ``try``.

Exceptional edges are conservative: any statement containing a call, a
``raise`` or an ``assert`` may raise; it gets an edge to every enclosing
handler plus — unless some handler is a catch-all — a bypass to the next
level out (ultimately ``RAISE``).  The builder is syntactic and total:
anything it does not model precisely degrades to extra may-edges, never
missing ones, which is the safe direction for the may-analyses built on
top (leak detection, taint).
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union, cast

#: ``ast.Match`` exists only on Python >= 3.10; on 3.9 the tuple is
#: empty so every ``isinstance`` check against it is simply False
#: (3.9 sources cannot contain ``match`` statements anyway).
_AST_MATCH: Any = getattr(ast, "Match", None)
_MATCH_STMT: Tuple[Any, ...] = (_AST_MATCH,) if _AST_MATCH is not None else ()

#: Pseudo-node ids (statement nodes start at 3).
ENTRY = 0
EXIT = 1
RAISE = 2

#: Edge kinds.
NORMAL = "normal"
EXCEPTION = "exception"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CFG:
    """A statement-level control-flow graph for one function body."""

    name: str
    statements: Dict[int, ast.stmt] = field(default_factory=dict)
    succ: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    pred: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)

    def nodes(self) -> List[int]:
        """Every node id: the three pseudo-nodes plus each statement."""
        return [ENTRY, EXIT, RAISE, *self.statements]

    def exits(self) -> Tuple[int, int]:
        """The two ways out of the function: ``(EXIT, RAISE)``."""
        return (EXIT, RAISE)

    def add_edge(self, source: int, target: int, kind: str = NORMAL) -> None:
        if (target, kind) not in self.succ.setdefault(source, []):
            self.succ[source].append((target, kind))
            self.pred.setdefault(target, []).append((source, kind))

    def rpo(self) -> List[int]:
        """Reverse postorder from ``ENTRY`` — the worklist seeding order."""
        seen = {ENTRY}
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(ENTRY, 0)]
        while stack:
            node, index = stack[-1]
            targets = self.succ.get(node, [])
            if index < len(targets):
                stack[-1] = (node, index + 1)
                target = targets[index][0]
                if target not in seen:
                    seen.add(target)
                    stack.append((target, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order


def may_raise_expr(expr: ast.expr) -> bool:
    """Whether evaluating ``expr`` may raise (conservative: any call)."""
    return any(isinstance(node, ast.Call) for node in ast.walk(expr))


def may_raise(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` itself can raise (conservative: call/raise/assert).

    Nested function bodies are opaque: their calls run when *they* are
    called, not at the ``def`` statement.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return any(may_raise_expr(d) for d in stmt.decorator_list)
    return any(isinstance(node, ast.Call) for node in ast.walk(stmt))


def own_expressions(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expressions evaluated *by this CFG node itself*.

    A compound statement's CFG node represents only its header — the
    ``if``/``while`` test, the ``for`` iterable, the ``with`` context
    expressions — while its body statements have CFG nodes of their own.
    Rules that scan a node's statement for calls or name uses must walk
    these, not ``ast.walk(stmt)``, or they would re-visit every nested
    statement with the wrong (pre-header) dataflow state.  Nested
    function and class definitions yield nothing: their bodies run in a
    different frame and are analysed separately.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif _MATCH_STMT and isinstance(stmt, _MATCH_STMT):
        yield cast(Any, stmt).subject
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield from stmt.decorator_list
    elif isinstance(stmt, (ast.ClassDef, ast.Try)):
        return
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield stmt.type
    else:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child


def _handler_is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
        for t in types
    )


@dataclass
class _UnwindEntry:
    """One level of the abrupt-exit unwind stack.

    ``return`` unwinds every ``finally`` entry; ``break``/``continue``
    unwind up to the innermost ``loop`` entry.  Each unwound finalbody
    is cloned inline at the abrupt site, bytecode-compiler style.
    """

    kind: str  # "loop" | "finally"
    loop_head: int = -1
    break_sink: Optional[List[int]] = None
    finalbody: Optional[List[ast.stmt]] = None


class _Builder:
    """Builds one :class:`CFG`; one instance per function body."""

    def __init__(self, name: str) -> None:
        self.cfg = CFG(name=name)
        self._next_id = 3
        self._unwind: List[_UnwindEntry] = []
        # Exception-dispatch stack: (targets, catches_all) — where a
        # raise at the current depth may land, innermost last.
        self._handlers: List[Tuple[List[int], bool]] = []

    def new_node(self, stmt: ast.stmt) -> int:
        node = self._next_id
        self._next_id += 1
        self.cfg.statements[node] = stmt
        return node

    def exception_targets(self) -> List[int]:
        targets: List[int] = []
        for handler_nodes, catches_all in reversed(self._handlers):
            targets.extend(handler_nodes)
            if catches_all:
                return targets
        targets.append(RAISE)
        return targets

    def wire_exception(self, node: int) -> None:
        for target in self.exception_targets():
            self.cfg.add_edge(node, target, EXCEPTION)

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        for tail in self.sequence(body, [ENTRY]):
            self.cfg.add_edge(tail, EXIT)
        return self.cfg

    def sequence(self, body: List[ast.stmt], entries: List[int]) -> List[int]:
        """Wire ``body`` after ``entries``; returns the fallthrough tails."""
        current = entries
        for stmt in body:
            current = self.statement(stmt, current)
        return current

    def _unwind_finallies(self, tails: List[int], through: str) -> List[int]:
        """Clone enclosing finally bodies at an abrupt exit site.

        ``through="loop"`` stops at the innermost loop (break/continue);
        ``through="all"`` unwinds everything (return).
        """
        for entry in reversed(self._unwind):
            if entry.kind == "loop" and through == "loop":
                break
            if entry.kind == "finally" and entry.finalbody is not None:
                tails = self.sequence(
                    [copy.deepcopy(s) for s in entry.finalbody], tails
                )
        return tails

    def statement(self, stmt: ast.stmt, entries: List[int]) -> List[int]:
        """Wire one statement; returns the nodes that fall through it."""
        if isinstance(stmt, ast.If):
            return self._if(stmt, entries)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, entries)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, entries)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, entries)
        if _MATCH_STMT and isinstance(stmt, _MATCH_STMT):
            return self._match(stmt, entries)

        node = self.new_node(stmt)
        for entry in entries:
            self.cfg.add_edge(entry, node)
        if may_raise(stmt):
            self.wire_exception(node)

        if isinstance(stmt, ast.Return):
            for tail in self._unwind_finallies([node], through="all"):
                self.cfg.add_edge(tail, EXIT)
            return []
        if isinstance(stmt, ast.Raise):
            return []  # only the exception edges leave a raise
        if isinstance(stmt, ast.Break):
            tails = self._unwind_finallies([node], through="loop")
            sink = self._innermost_break_sink()
            if sink is not None:
                sink.extend(tails)
            return []
        if isinstance(stmt, ast.Continue):
            tails = self._unwind_finallies([node], through="loop")
            head = self._innermost_loop_head()
            if head is not None:
                for tail in tails:
                    self.cfg.add_edge(tail, head)
            return []
        return [node]

    def _innermost_break_sink(self) -> Optional[List[int]]:
        for entry in reversed(self._unwind):
            if entry.kind == "loop":
                return entry.break_sink
        return None

    def _innermost_loop_head(self) -> Optional[int]:
        for entry in reversed(self._unwind):
            if entry.kind == "loop":
                return entry.loop_head
        return None

    def _if(self, stmt: ast.If, entries: List[int]) -> List[int]:
        node = self.new_node(stmt)
        for entry in entries:
            self.cfg.add_edge(entry, node)
        if may_raise_expr(stmt.test):
            self.wire_exception(node)
        tails = self.sequence(stmt.body, [node])
        if stmt.orelse:
            tails.extend(self.sequence(stmt.orelse, [node]))
        else:
            tails.append(node)  # false branch falls through
        return tails

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], entries: List[int]
    ) -> List[int]:
        head = self.new_node(stmt)
        for entry in entries:
            self.cfg.add_edge(entry, head)
        if isinstance(stmt, ast.While):
            if may_raise_expr(stmt.test):
                self.wire_exception(head)
        else:
            self.wire_exception(head)  # the iterator protocol is a call
        breaks: List[int] = []
        self._unwind.append(_UnwindEntry("loop", loop_head=head, break_sink=breaks))
        body_tails = self.sequence(stmt.body, [head])
        self._unwind.pop()
        for tail in body_tails:
            self.cfg.add_edge(tail, head)  # the back edge
        tails = [head]  # condition false / iterator exhausted
        if stmt.orelse:
            tails = self.sequence(stmt.orelse, tails)
        tails.extend(breaks)
        return tails

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], entries: List[int]
    ) -> List[int]:
        node = self.new_node(stmt)
        for entry in entries:
            self.cfg.add_edge(entry, node)
        self.wire_exception(node)  # __enter__ may raise
        return self.sequence(stmt.body, [node])

    def _match(self, stmt: Any, entries: List[int]) -> List[int]:
        node = self.new_node(stmt)
        for entry in entries:
            self.cfg.add_edge(entry, node)
        if may_raise_expr(stmt.subject):
            self.wire_exception(node)
        tails: List[int] = [node]  # no case may match
        for case in stmt.cases:
            tails.extend(self.sequence(case.body, [node]))
        return tails

    def _try(self, stmt: ast.Try, entries: List[int]) -> List[int]:
        handler_entries: List[int] = []
        catches_all = False
        handler_defs: List[Tuple[int, ast.ExceptHandler]] = []
        for handler in stmt.handlers:
            node = self.new_node(handler)  # type: ignore[arg-type]
            handler_entries.append(node)
            handler_defs.append((node, handler))
            if _handler_is_catch_all(handler):
                catches_all = True

        exc_clone_first: Optional[int] = None
        if stmt.finalbody:
            # Exceptional clone: built up front (detached) so it can act
            # as the catch-all target while the body is wired; unmatched
            # exceptions run the finally, then re-raise outward.
            exc_clone_first = self._next_id
            outer_targets = self.exception_targets()
            exc_tails = self.sequence(
                [copy.deepcopy(s) for s in stmt.finalbody], []
            )
            for tail in exc_tails:
                for target in outer_targets:
                    self.cfg.add_edge(tail, target, EXCEPTION)

        dispatch = list(handler_entries)
        dispatch_catches_all = catches_all
        if exc_clone_first is not None:
            dispatch = dispatch + [exc_clone_first]
            dispatch_catches_all = True

        self._handlers.append((dispatch, dispatch_catches_all))
        if stmt.finalbody:
            self._unwind.append(_UnwindEntry("finally", finalbody=stmt.finalbody))
        body_tails = self.sequence(stmt.body, entries)
        if stmt.orelse:
            body_tails = self.sequence(stmt.orelse, body_tails)
        if stmt.finalbody:
            self._unwind.pop()
        self._handlers.pop()

        handler_tails: List[int] = []
        if handler_defs:
            # Exceptions raised inside a handler body go through the
            # finally (if any), then outward.
            if exc_clone_first is not None:
                self._handlers.append(([exc_clone_first], True))
            if stmt.finalbody:
                self._unwind.append(
                    _UnwindEntry("finally", finalbody=stmt.finalbody)
                )
            for node, handler in handler_defs:
                handler_tails.extend(self.sequence(handler.body, [node]))
            if stmt.finalbody:
                self._unwind.pop()
            if exc_clone_first is not None:
                self._handlers.pop()

        tails = body_tails + handler_tails
        if stmt.finalbody:
            # Fallthrough clone: the normal continuation runs the
            # finally exactly once, after body/else/handler completion.
            tails = self.sequence(
                [copy.deepcopy(s) for s in stmt.finalbody], tails
            )
        return tails


def build_cfg(func: Union[FunctionNode, ast.Module], name: str = "") -> CFG:
    """Build the CFG of a function definition (or a module's top level)."""
    if isinstance(func, ast.Module):
        return _Builder(name or "<module>").build(func.body)
    return _Builder(name or func.name).build(func.body)


def function_cfgs(
    module: ast.Module,
) -> Iterator[Tuple[str, FunctionNode, CFG]]:
    """``(qualname, def-node, CFG)`` for every function in ``module``.

    Nested functions and methods are included, with dotted qualnames
    (``Outer.inner``); each CFG covers only its own body (nested defs are
    opaque single statements in the enclosing CFG).
    """

    def visit(
        body: List[ast.stmt], prefix: str
    ) -> Iterator[Tuple[str, FunctionNode, CFG]]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}" if prefix else stmt.name
                yield qualname, stmt, build_cfg(stmt, qualname)
                yield from visit(stmt.body, f"{qualname}.")
            elif isinstance(stmt, ast.ClassDef):
                class_prefix = (
                    f"{prefix}{stmt.name}." if prefix else f"{stmt.name}."
                )
                yield from visit(stmt.body, class_prefix)

    yield from visit(module.body, "")
