"""Project-wide call graph with per-function taint summaries.

The flow-sensitive rule families need taint to cross function
boundaries inside ``src/repro`` — ``_finish_result`` receiving a
wall-clock value, a helper returning a live part file its caller must
close.  This module builds that bridge:

1. Every module in the project is parsed once and every function body
   gets a CFG (:func:`repro.analysis.cfg.function_cfgs`).
2. Each function is analysed with :class:`~.dataflow.TaintAnalysis`,
   its parameters seeded with synthetic ``param:N`` taint kinds.  The
   taint observed at its ``return`` statements yields a
   :class:`FunctionSummary`: which global kinds the result carries
   (``returns``), which argument positions flow to the result
   (``passthrough``), and whether the result is a live resource
   (``returns_resource``, i.e. the ``"resource"`` kind reached it).
3. Summaries are indexed by *bare* function name (calls in Python are
   resolved dynamically; same-name collisions are joined with
   :meth:`~.dataflow.CallSummary.merge`, which is conservative for a
   may-analysis) and fed back into the taint configuration.  The loop
   repeats until the summary table is stable, bounded by
   :data:`MAX_SUMMARY_ROUNDS` (transitive call chains in this codebase
   are shallow; two or three rounds suffice in practice).

The resulting :class:`ProjectContext` carries the parsed modules, the
per-function CFGs, the merged summary table, and a stable content
digest over all file hashes, which keys the result cache.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from .cfg import CFG, function_cfgs
from .dataflow import (
    EMPTY,
    CallSummary,
    TaintAnalysis,
    TaintConfig,
    TaintEnv,
    set_type_kinds,
    solve_forward,
)

#: Upper bound on summary fixpoint rounds; the table almost always
#: stabilises in 2-3 rounds, and a bound keeps pathological inputs
#: (deep mutual recursion) from stalling the checker.
MAX_SUMMARY_ROUNDS = 10

#: Call targets that introduce nondeterminism or host state, by dotted
#: name.  These seed the determinism taint (SEX31x) and flow through
#: summaries like any other kind.
GLOBAL_CALL_SOURCES: Mapping[str, FrozenSet[str]] = {
    "time.time": frozenset({"wallclock"}),
    "time.time_ns": frozenset({"wallclock"}),
    "time.monotonic": frozenset({"wallclock"}),
    "time.monotonic_ns": frozenset({"wallclock"}),
    "time.perf_counter": frozenset({"wallclock"}),
    "time.perf_counter_ns": frozenset({"wallclock"}),
    "time.process_time": frozenset({"wallclock"}),
    "datetime.datetime.now": frozenset({"wallclock"}),
    "datetime.datetime.utcnow": frozenset({"wallclock"}),
    "random.random": frozenset({"random"}),
    "random.randint": frozenset({"random"}),
    "random.randrange": frozenset({"random"}),
    "random.choice": frozenset({"random"}),
    "random.sample": frozenset({"random"}),
    "random.shuffle": frozenset({"random"}),
    "random.getrandbits": frozenset({"random"}),
    "os.urandom": frozenset({"random"}),
    "uuid.uuid4": frozenset({"random"}),
    "os.getenv": frozenset({"environ"}),
    "os.environ.get": frozenset({"environ"}),
    "id": frozenset({"id"}),
}

#: Attribute reads (no call) that carry taint.
GLOBAL_ATTRIBUTE_SOURCES: Mapping[str, FrozenSet[str]] = {
    "os.environ": frozenset({"environ"}),
}

#: Bare call names whose result is a live storage resource the caller
#: owns (constructors and factory methods across the storage layer).
#: These seed the ``"resource"`` kind that ``returns_resource``
#: summaries and the SEX6xx lifecycle rule consume.
RESOURCE_CALL_NAMES: FrozenSet[str] = frozenset(
    {
        "PartitionWriter",
        "BlockDevice",
        "create_edge_file",
        "open_sealed",
        "edge_file_from_edges",
    }
)

#: Bare call names whose result derives from a block-charged edge scan
#: (the SEX21x materialization family tracks where these accumulate).
SCAN_CALL_NAMES: FrozenSet[str] = frozenset(
    {"scan", "scan_blocks", "scan_columns"}
)


class SummaryTaint(TaintAnalysis):
    """Taint analysis that also marks resource, scan and set producers.

    Besides the configured sources, three *structural* kinds are added:
    ``"resource"`` on acquirer calls, ``"scan"`` on edge-scan calls, and
    ``"settype"`` on set-building expressions — the latter is what lets
    the base class tag iteration over a set-typed variable with
    ``"setiter"`` (see :func:`~.dataflow.is_set_expr`).
    """

    def call_taint(self, call: ast.Call, env: TaintEnv) -> FrozenSet[str]:
        kinds = super().call_taint(call, env)
        name = _bare_call_name(call)
        if name in RESOURCE_CALL_NAMES:
            kinds |= frozenset({"resource"})
        if name in SCAN_CALL_NAMES:
            kinds |= frozenset({"scan"})
        return kinds

    def transfer(self, stmt: ast.stmt, state: TaintEnv) -> TaintEnv:
        out = super().transfer(stmt, state)
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is not None:
            kinds = set_type_kinds(value, state)
            if kinds:
                out = dict(out)
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            out[node.id] = out.get(node.id, EMPTY) | kinds
        return out


def _bare_call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@dataclass(frozen=True)
class FunctionSummary:
    """Observable taint behaviour of one project function."""

    qualname: str
    path: str
    returns: FrozenSet[str] = EMPTY
    passthrough: FrozenSet[int] = frozenset()
    returns_resource: bool = False

    def to_call_summary(self) -> CallSummary:
        return CallSummary(
            returns=self.returns,
            passthrough=self.passthrough,
            returns_resource=self.returns_resource,
        )


@dataclass
class FunctionInfo:
    """One analysed function: its AST, CFG, and summary."""

    qualname: str
    path: str
    node: ast.AST
    cfg: CFG
    summary: FunctionSummary
    #: Memoized final-config taint solve shared by the flow rules
    #: (computed lazily by :func:`taint_states`).
    taint: Optional[Tuple["SummaryTaint", Dict[int, TaintEnv]]] = None


@dataclass
class ProjectContext:
    """Everything the flow rules need beyond a single file's AST.

    Attributes:
        modules: relpath → parsed module.
        functions: relpath → analysed functions in that file.
        summaries: bare callee name → merged call summary, for use in a
            :class:`~.dataflow.TaintConfig`.
        digest: stable hex digest over every file's content hash; any
            source change anywhere in the project changes it, which is
            exactly the invalidation granularity cross-file summaries
            require.
    """

    modules: Dict[str, ast.Module] = field(default_factory=dict)
    functions: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    summaries: Dict[str, CallSummary] = field(default_factory=dict)
    digest: str = ""

    def taint_config(self) -> TaintConfig:
        """The project-aware taint configuration the rules analyse with."""
        return TaintConfig(
            call_sources=GLOBAL_CALL_SOURCES,
            attribute_sources=GLOBAL_ATTRIBUTE_SOURCES,
            summaries=self.summaries,
        )


def _positional_params(node: ast.AST) -> List[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _param_seed(params: List[str]) -> TaintEnv:
    return {
        name: frozenset({f"param:{index}"})
        for index, name in enumerate(params)
    }


def _summarize_function(
    qualname: str,
    path: str,
    node: ast.AST,
    cfg: CFG,
    config: TaintConfig,
) -> FunctionSummary:
    params = _positional_params(node)
    analysis = SummaryTaint(config, seed=_param_seed(params))
    states = solve_forward(cfg, analysis)
    returned: FrozenSet[str] = EMPTY
    for node_id, stmt in cfg.statements.items():
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            env = states.get(node_id)
            if env is not None:
                returned |= analysis.taint_of(stmt.value, env)
    passthrough = frozenset(
        int(kind.split(":", 1)[1])
        for kind in returned
        if kind.startswith("param:")
    )
    global_kinds = frozenset(
        kind for kind in returned if not kind.startswith("param:")
    )
    return FunctionSummary(
        qualname=qualname,
        path=path,
        # "scan" is deliberately intraprocedural: a callee that consumed
        # an edge scan returns an *aggregate it already accounted for*
        # (a tree, a result, a bounded batch) — if the callee itself
        # materialized unboundedly, SEX211 flags it there.  Propagating
        # scan through returns would convict every consumer of every
        # solver.  ("settype" does flow through: a helper returning a
        # set makes the *caller's* iteration order-sensitive.)
        returns=global_kinds - frozenset({"scan"}),
        passthrough=passthrough,
        returns_resource="resource" in global_kinds,
    )


def build_project_context(sources: Mapping[str, str]) -> ProjectContext:
    """Parse every file and compute summaries to a fixpoint.

    Files that fail to parse are skipped here; the engine reports them
    separately (SEX004) during per-file analysis.
    """
    modules: Dict[str, ast.Module] = {}
    for relpath in sorted(sources):
        try:
            modules[relpath] = ast.parse(sources[relpath])
        except SyntaxError:
            continue
    return context_from_modules(modules, digest=project_digest(sources))


def context_from_modules(
    modules: Mapping[str, ast.Module], digest: str = ""
) -> ProjectContext:
    """Build a context from already-parsed modules (see module docstring)."""
    context = ProjectContext(digest=digest)
    shells: Dict[str, List[Tuple[str, ast.AST, CFG]]] = {}
    for relpath in sorted(modules):
        context.modules[relpath] = modules[relpath]
        shells[relpath] = list(function_cfgs(modules[relpath]))

    summaries: Dict[str, CallSummary] = {}
    for _ in range(MAX_SUMMARY_ROUNDS):
        config = TaintConfig(
            call_sources=GLOBAL_CALL_SOURCES,
            attribute_sources=GLOBAL_ATTRIBUTE_SOURCES,
            summaries=summaries,
        )
        fresh: Dict[str, CallSummary] = {}
        infos: Dict[str, List[FunctionInfo]] = {}
        for relpath, functions in shells.items():
            file_infos: List[FunctionInfo] = []
            for qualname, node, cfg in functions:
                summary = _summarize_function(
                    qualname, relpath, node, cfg, config
                )
                file_infos.append(
                    FunctionInfo(qualname, relpath, node, cfg, summary)
                )
                bare = qualname.rsplit(".", 1)[-1]
                call_summary = summary.to_call_summary()
                if bare in fresh:
                    call_summary = fresh[bare].merge(call_summary)
                fresh[bare] = call_summary
            infos[relpath] = file_infos
        context.functions = infos
        if fresh == summaries:
            break
        summaries = fresh
    context.summaries = summaries
    return context


def single_file_context(relpath: str, source: str) -> ProjectContext:
    """A context for analysing one file in isolation (tests, stdin)."""
    return build_project_context({relpath: source})


def file_hash(source: str) -> str:
    """Content hash of one file (keys the per-file result cache)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_digest(sources: Mapping[str, str]) -> str:
    """Stable digest over every file's path and content hash."""
    blob = hashlib.sha256()
    for relpath in sorted(sources):
        blob.update(relpath.encode("utf-8"))
        blob.update(b"\x00")
        blob.update(file_hash(sources[relpath]).encode("ascii"))
        blob.update(b"\x00")
    return blob.hexdigest()


def resolve_summary(
    context: ProjectContext, name: str
) -> Optional[CallSummary]:
    """Look up the merged summary for a (possibly dotted) callee name."""
    return context.summaries.get(name.rsplit(".", 1)[-1])


def taint_states(
    info: FunctionInfo, context: ProjectContext
) -> Tuple[SummaryTaint, Dict[int, TaintEnv]]:
    """The function's taint solve under the final project config.

    Memoized on the :class:`FunctionInfo` so the determinism and
    materialization rules (which both read per-statement taint) pay for
    one solve per function, not one per rule.
    """
    if info.taint is None:
        analysis = SummaryTaint(context.taint_config())
        info.taint = (analysis, solve_forward(info.cfg, analysis))
    return info.taint
