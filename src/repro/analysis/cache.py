"""Content-hash result cache for the conformance checker.

The cache stores the *net outcome* of analyzing one file — its
violations and its waiver inventory — keyed by three digests:

* the file's own content hash (``sha256`` of the source text),
* the **project digest** (a hash over every analyzed file's path and
  content), because flow rules consult cross-file call summaries: a
  change anywhere in the project can change another file's verdict, and
* the **rules fingerprint** (the registered rule inventory plus a cache
  schema version), so a rule change invalidates every entry.

A warm run with zero misses therefore skips parsing, CFG construction
and dataflow solving entirely — it reads sources, hashes them, and
replays the stored entries.  Entries are path-free (locations are
re-attached from the live path on load), so a cache built in one
checkout replays in another as long as the tree's *content* matches.

Corrupt, unreadable or schema-mismatched entries degrade to misses;
the cache never turns an I/O problem into a wrong report.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Optional, Tuple

from .diagnostics import Violation, WaiverRecord

#: Bump when the entry shape or the analysis semantics change in a way
#: the rule inventory does not capture (e.g. a solver fix that alters
#: verdicts without renaming any rule).
CACHE_SCHEMA_VERSION = 1


def rules_fingerprint() -> str:
    """Digest of the registered rule inventory (plus the cache schema).

    Renaming, adding, or removing a rule — or editing its summary, which
    accompanies every behavior change by convention — changes this
    fingerprint and invalidates the whole cache.
    """
    from .rules import META_CODES, RULES

    parts = [f"cache-schema={CACHE_SCHEMA_VERSION}"]
    for code in sorted(META_CODES):
        parts.append(f"{code}\t{META_CODES[code]}")
    for code in sorted(RULES):
        rule = RULES[code]
        parts.append(f"{code}\t{rule.name}\t{rule.summary}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


CacheEntry = Tuple[List[Violation], List[WaiverRecord]]


class ResultCache:
    """One directory of JSON entries, one entry per (file, project, rules).

    The checker is a dev-time tool reading and writing its own metadata,
    not graph data, so its file I/O sits outside the block-I/O model it
    enforces (the same carve-out as the engine's source reader).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.fingerprint = rules_fingerprint()
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    def _entry_path(self, file_digest: str, project_digest: str) -> str:
        key = hashlib.sha256(
            f"{self.fingerprint}\n{project_digest}\n{file_digest}".encode("utf-8")
        ).hexdigest()
        return os.path.join(self.directory, f"{key}.json")

    def load(
        self, file_digest: str, project_digest: str, path: str
    ) -> Optional[CacheEntry]:
        """The stored entry with locations re-attached to ``path``.

        Returns ``None`` — a miss — when no entry exists or the entry
        cannot be decoded.
        """
        entry_path = self._entry_path(file_digest, project_digest)
        try:
            with open(entry_path, "r", encoding="utf-8") as handle:  # repro: allow[SEX101] checker metadata is outside the block-I/O model
                payload = handle.read()
            data = json.loads(payload)
            violations = [
                Violation(
                    path=path,
                    line=int(item["line"]),
                    column=int(item["column"]),
                    code=str(item["code"]),
                    message=str(item["message"]),
                )
                for item in data["violations"]
            ]
            waivers = [
                WaiverRecord(
                    path=path,
                    line=int(item["line"]),
                    codes=tuple(str(code) for code in item["codes"]),
                    reason=str(item["reason"]),
                    used=bool(item["used"]),
                )
                for item in data["waivers"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return violations, waivers

    def store(
        self,
        file_digest: str,
        project_digest: str,
        violations: List[Violation],
        waivers: List[WaiverRecord],
    ) -> None:
        """Persist one file's outcome; best-effort (failures are ignored)."""
        data = {
            "violations": [
                {
                    "line": v.line,
                    "column": v.column,
                    "code": v.code,
                    "message": v.message,
                }
                for v in sorted(violations)
            ],
            "waivers": [
                {
                    "line": w.line,
                    "codes": list(w.codes),
                    "reason": w.reason,
                    "used": w.used,
                }
                for w in waivers
            ],
        }
        entry_path = self._entry_path(file_digest, project_digest)
        temp_path = entry_path + ".tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:  # repro: allow[SEX101] checker metadata is outside the block-I/O model
                json.dump(data, handle, sort_keys=True)
            os.replace(temp_path, entry_path)
        except OSError:
            # A read-only or full cache directory must not fail the run.
            try:
                os.unlink(temp_path)
            except OSError:
                pass
