"""Rule registry for the conformance checker.

Importing this package imports every rule family module, whose
``@register`` decorators populate :data:`RULES`.  Codes are grouped by
hundreds digit:

* ``SEX0xx`` — engine/meta (waiver hygiene, parse failures);
* ``SEX1xx`` — I/O containment;
* ``SEX2xx`` — semi-external memory discipline;
* ``SEX3xx`` — determinism;
* ``SEX4xx`` — error hygiene;
* ``SEX5xx`` — parallelism containment.
"""

from . import (
    determinism,
    error_hygiene,
    io_containment,
    memory_discipline,
    parallelism,
)
from .base import (
    META_CODES,
    RULES,
    RawViolation,
    Rule,
    known_codes,
    register,
)

__all__ = [
    "META_CODES",
    "RULES",
    "RawViolation",
    "Rule",
    "determinism",
    "error_hygiene",
    "io_containment",
    "known_codes",
    "memory_discipline",
    "parallelism",
    "register",
]
