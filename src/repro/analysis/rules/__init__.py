"""Rule registry for the conformance checker.

Importing this package imports every rule family module, whose
``@register`` decorators populate :data:`RULES`.  Codes are grouped by
hundreds digit:

* ``SEX0xx`` — engine/meta (waiver hygiene, parse failures);
* ``SEX1xx`` — I/O containment;
* ``SEX2xx`` — semi-external memory discipline;
* ``SEX3xx`` — determinism;
* ``SEX4xx`` — error hygiene;
* ``SEX5xx`` — containment (process pools, network listeners);
* ``SEX6xx`` — flow-sensitive resource lifecycle.

Codes ``SEX2xx``/``SEX3xx`` above 10 in the tens digit (``SEX211``,
``SEX311``, ``SEX312``) are the *flow-sensitive* members of their
families: they run the CFG + taint engine (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`, :mod:`repro.analysis.callgraph`) rather
than matching single statements.
"""

from . import (
    determinism,
    error_hygiene,
    io_containment,
    memory_discipline,
    parallelism,
    resource_lifecycle,
    serving,
)
from .base import (
    META_CODES,
    RULES,
    FlowRule,
    RawViolation,
    Rule,
    known_codes,
    register,
)

__all__ = [
    "META_CODES",
    "RULES",
    "FlowRule",
    "RawViolation",
    "Rule",
    "determinism",
    "error_hygiene",
    "io_containment",
    "known_codes",
    "memory_discipline",
    "parallelism",
    "register",
    "resource_lifecycle",
    "serving",
]
