"""SEX2xx — semi-external memory discipline.

The model's defining constraint (paper §2): memory holds only ``k·|V|``
elements — the spanning tree plus O(1) per-node state — while the edge
set stays on disk and is consumed *streaming*, one block at a time.
Wrapping an edge scan in ``list()`` (or building any O(E) structure from
one) silently re-admits the whole edge set into memory: the run still
produces a correct tree and still reports paper-perfect I/O counts, but
the claimed memory bound is fiction.  These rules catch the
materialization patterns syntactically in the algorithm core and steer
them to the external-memory primitives (``ExternalStack``,
``sort_edge_file``, streaming scans).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .base import (
    SCAN_METHOD_NAMES,
    RawViolation,
    Rule,
    in_algorithm_core,
    register,
)

#: Builtins that drain an iterator into an O(E) in-memory structure.
_MATERIALIZERS: Tuple[str, ...] = (
    "list", "tuple", "set", "frozenset", "sorted", "dict",
)


def _is_scan_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``<expr>.scan*()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SCAN_METHOD_NAMES
    )


class _CoreScopedRule(Rule):
    """Shared scope: the semi-external algorithm core only."""

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath)


@register
class MaterializedScanRule(_CoreScopedRule):
    """``list(edge_file.scan())`` pulls the whole edge set into memory."""

    code = "SEX201"
    name = "mem-materialized-edge-scan"
    summary = (
        "wrapping an edge scan in list/sorted/set/dict/... builds an O(E) "
        "in-memory structure; stream the scan or use "
        "external_sort/ExternalStack"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _MATERIALIZERS):
                continue
            if any(_is_scan_call(arg) for arg in node.args):
                scan = next(arg for arg in node.args if _is_scan_call(arg))
                attr = scan.func.attr if isinstance(scan.func, ast.Attribute) else "scan"
                yield self.violation(
                    node,
                    f"{node.func.id}(...{attr}()) materializes a full edge "
                    "scan in memory, breaking the k*|V| bound; stream it or "
                    "use repro.storage.sort_edge_file / ExternalStack",
                )


@register
class ComprehensionOverScanRule(_CoreScopedRule):
    """A non-generator comprehension over a scan is the same O(E) breach."""

    code = "SEX202"
    name = "mem-comprehension-over-edge-scan"
    summary = (
        "list/set/dict comprehensions over an edge scan accumulate O(E) "
        "elements; a generator expression (lazy) is fine"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                continue
            if any(_is_scan_call(gen.iter) for gen in node.generators):
                kind = type(node).__name__.replace("Comp", "").lower()
                yield self.violation(
                    node,
                    f"{kind} comprehension over an edge scan accumulates "
                    "O(E) elements in memory; iterate the scan streaming or "
                    "use a generator expression",
                )


@register
class ReadAllRule(_CoreScopedRule):
    """``EdgeFile.read_all()`` is an explicit whole-file materializer."""

    code = "SEX203"
    name = "mem-edge-file-read-all"
    summary = (
        "EdgeFile.read_all() loads the entire edge file; the algorithm "
        "core must consume scans block-by-block"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "read_all"):
                yield self.violation(
                    node,
                    ".read_all() loads the whole edge file into memory; "
                    "scan it block-by-block instead",
                )
