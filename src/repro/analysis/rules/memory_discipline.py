"""SEX2xx — semi-external memory discipline.

The model's defining constraint (paper §2): memory holds only ``k·|V|``
elements — the spanning tree plus O(1) per-node state — while the edge
set stays on disk and is consumed *streaming*, one block at a time.
Wrapping an edge scan in ``list()`` (or building any O(E) structure from
one) silently re-admits the whole edge set into memory: the run still
produces a correct tree and still reports paper-perfect I/O counts, but
the claimed memory bound is fiction.  These rules catch the
materialization patterns syntactically in the algorithm core and steer
them to the external-memory primitives (``ExternalStack``,
``sort_edge_file``, streaming scans).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..callgraph import ProjectContext, taint_states
from .base import (
    INMEMORY_SOLVER_FILES,
    SCAN_METHOD_NAMES,
    FlowRule,
    RawViolation,
    Rule,
    in_algorithm_core,
    register,
)

#: Builtins that drain an iterator into an O(E) in-memory structure.
_MATERIALIZERS: Tuple[str, ...] = (
    "list", "tuple", "set", "frozenset", "sorted", "dict",
)


def _is_scan_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``<expr>.scan*()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SCAN_METHOD_NAMES
    )


class _CoreScopedRule(Rule):
    """Shared scope: the semi-external algorithm core only."""

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath)


@register
class MaterializedScanRule(_CoreScopedRule):
    """``list(edge_file.scan())`` pulls the whole edge set into memory."""

    code = "SEX201"
    name = "mem-materialized-edge-scan"
    summary = (
        "wrapping an edge scan in list/sorted/set/dict/... builds an O(E) "
        "in-memory structure; stream the scan or use "
        "external_sort/ExternalStack"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _MATERIALIZERS):
                continue
            if any(_is_scan_call(arg) for arg in node.args):
                scan = next(arg for arg in node.args if _is_scan_call(arg))
                attr = scan.func.attr if isinstance(scan.func, ast.Attribute) else "scan"
                yield self.violation(
                    node,
                    f"{node.func.id}(...{attr}()) materializes a full edge "
                    "scan in memory, breaking the k*|V| bound; stream it or "
                    "use repro.storage.sort_edge_file / ExternalStack",
                )


@register
class ComprehensionOverScanRule(_CoreScopedRule):
    """A non-generator comprehension over a scan is the same O(E) breach."""

    code = "SEX202"
    name = "mem-comprehension-over-edge-scan"
    summary = (
        "list/set/dict comprehensions over an edge scan accumulate O(E) "
        "elements; a generator expression (lazy) is fine"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                continue
            if any(_is_scan_call(gen.iter) for gen in node.generators):
                kind = type(node).__name__.replace("Comp", "").lower()
                yield self.violation(
                    node,
                    f"{kind} comprehension over an edge scan accumulates "
                    "O(E) elements in memory; iterate the scan streaming or "
                    "use a generator expression",
                )


@register
class ReadAllRule(_CoreScopedRule):
    """``EdgeFile.read_all()`` is an explicit whole-file materializer."""

    code = "SEX203"
    name = "mem-edge-file-read-all"
    summary = (
        "EdgeFile.read_all() loads the entire edge file; the algorithm "
        "core must consume scans block-by-block"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "read_all"):
                yield self.violation(
                    node,
                    ".read_all() loads the whole edge file into memory; "
                    "scan it block-by-block instead",
                )


# ----------------------------------------------------------------------
# Flow-sensitive materialization (SEX211).
#
# SEX201/202 catch `list(scan())` written in one expression; SEX211
# catches the spread-out version: a container built locally, filled with
# scan-derived values inside a loop, never reset — O(E) memory reached
# one append at a time.  The taint engine marks every value derived from
# a `.scan*()` call with the ``"scan"`` kind (intraprocedurally: a
# *callee's* return is an aggregate the callee already accounts for);
# the rule then looks for *growth* writes of scan-tainted values into
# locally-constructed containers inside a loop.
#
# The unit of judgement is the **outermost** loop: growth anywhere
# inside it is unbounded exactly when no reset of the container occurs
# anywhere inside it either.  Judging inner loops separately would
# convict the windowed-batch idiom (inner loop fills, outer loop
# flushes).  Growth means element-adding operations — ``.append`` /
# ``.add`` / ``.extend`` / ``.update`` / ``+=`` on the container, a
# member (``c[k].append(v)``, ``c.setdefault(k, []).append(v)``) or a
# local alias of a member (``t = c.get(u); t.append(v)``).  A plain
# keyed *replacement* (``best[v] = (level, parent)``) is not growth:
# it is bounded by the key domain, which in this codebase is the node
# set (``k·|V|`` — legal).
#
# Two legitimate patterns are carved out:
#
# * a container *reset inside the same outermost loop* — rebound to a
#   fresh container, ``.clear()``-ed, or reset by a nested flush
#   function that rebinds it via ``nonlocal`` (the windowed-batch idiom
#   in restructure.py) — is bounded by the window size, not O(E);
# * the designated in-memory solver (``repro/core/inmemory.py``) is
#   exempt wholesale: it runs only after the recursion has proved the
#   part fits the memory budget, so materializing there *is* the model.

#: Method calls that add elements to a container.
_ACCUMULATE_METHODS: Tuple[str, ...] = (
    "append", "add", "extend", "update", "insert", "appendleft",
)

#: Container methods that return a member (aliasing it).
_MEMBER_METHODS: Tuple[str, ...] = ("get", "setdefault")

#: Container-constructing callables (builtins + common stdlib).
_CONTAINER_CALLS: Tuple[str, ...] = (
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
)


def _is_fresh_container(node: ast.AST) -> bool:
    """Whether ``node`` constructs a new in-memory container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _CONTAINER_CALLS
    )


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def _local_containers(func: ast.AST) -> FrozenSet[str]:
    """Names bound to a fresh container anywhere in ``func``'s own scope."""
    names = set()
    for node in _walk_scope(func):
        if isinstance(node, ast.Assign) and _is_fresh_container(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and _is_fresh_container(node.value)
                and isinstance(node.target, ast.Name)):
            names.add(node.target.id)
    return frozenset(names)


def _flush_functions(func: ast.AST) -> Dict[str, FrozenSet[str]]:
    """Nested functions that reset an outer container via ``nonlocal``.

    Returns nested-function name -> the outer names it rebinds to a
    fresh container (the restructure.py ``flush_batch`` idiom).
    """
    flushers: Dict[str, FrozenSet[str]] = {}
    for node in _walk_scope(func):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        outer: set = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Nonlocal):
                outer.update(inner.names)
        if not outer:
            continue
        reset = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign) and _is_fresh_container(inner.value):
                for target in inner.targets:
                    if isinstance(target, ast.Name) and target.id in outer:
                        reset.add(target.id)
            elif (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "clear"
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id in outer):
                reset.add(inner.func.value.id)
        if reset:
            flushers[node.name] = frozenset(reset)
    return flushers


def _loop_resets(
    loop: ast.AST, containers: FrozenSet[str],
    flushers: Dict[str, FrozenSet[str]],
) -> FrozenSet[str]:
    """Containers reset somewhere inside ``loop``'s body."""
    reset = set()
    for node in _walk_scope(loop):
        if isinstance(node, ast.Assign) and _is_fresh_container(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in containers:
                    reset.add(target.id)
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "clear"
                    and isinstance(node.func.value, ast.Name)):
                reset.add(node.func.value.id)
            elif (isinstance(node.func, ast.Name)
                    and node.func.id in flushers):
                reset.update(flushers[node.func.id])
    return frozenset(reset & containers)


@register
class LoopAccumulationRule(FlowRule):
    """Scan-derived values must not pile up across loop iterations."""

    code = "SEX211"
    name = "mem-scan-accumulation-across-loop"
    summary = (
        "a locally-built container accumulates scan-derived values "
        "across loop iterations without an in-loop reset, re-admitting "
        "O(E) state one append at a time; stream the scan, flush the "
        "window inside the loop, or load through the designated "
        "in-memory solver (repro/core/inmemory.py, exempt)"
    )

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath) and relpath not in INMEMORY_SOLVER_FILES

    def check_flow(
        self, module: ast.Module, relpath: str, context: ProjectContext
    ) -> Iterator[RawViolation]:
        for info in context.functions.get(relpath, []):
            func = info.node
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            containers = _local_containers(func)
            if not containers:
                continue
            analysis, states = taint_states(info, context)
            stmt_to_node = {
                id(stmt): node_id
                for node_id, stmt in info.cfg.statements.items()
            }
            flushers = _flush_functions(func)
            seen = set()
            for loop in _outermost_loops(func):
                resets = _loop_resets(loop, containers, flushers)
                live = containers - resets
                if not live:
                    continue
                aliases = _member_aliases(loop, live)
                body_stmts = {
                    id(node) for node in _walk_scope(loop)
                    if isinstance(node, ast.stmt)
                }
                for hit in self._accumulations(
                    info, analysis, states, stmt_to_node, body_stmts,
                    live, aliases,
                ):
                    key = (hit.line, hit.column, hit.message)
                    if key not in seen:
                        seen.add(key)
                        yield hit

    def _accumulations(
        self, info, analysis, states, stmt_to_node, body_stmts, live, aliases,
    ) -> Iterator[RawViolation]:
        for stmt_id in sorted(body_stmts):
            node_id = stmt_to_node.get(stmt_id)
            if node_id is None:
                continue
            stmt = info.cfg.statements[node_id]
            env = states.get(node_id)
            if env is None:
                continue
            target, values = _accumulation_of(stmt, live, aliases)
            if target is None:
                continue
            for value in values:
                if "scan" in analysis.taint_of(value, env):
                    yield self.violation(
                        stmt,
                        f"'{target}' accumulates scan-derived values "
                        f"across loop iterations in {info.qualname}() "
                        "with no in-loop reset; this rebuilds O(E) "
                        "state in memory — stream it, flush the window "
                        "inside the loop, or use repro.core.inmemory",
                    )
                    break


def _outermost_loops(func: ast.AST) -> Iterator[ast.AST]:
    """Loops in ``func``'s own scope not nested inside another loop."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
            yield child
            continue  # inner loops are judged as part of this one
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def _member_aliases(
    loop: ast.AST, live: FrozenSet[str]
) -> Dict[str, str]:
    """Local names aliasing a member of a live container inside ``loop``.

    ``t = c.get(u)`` / ``t = c.setdefault(u, [])`` / ``t = c[u]`` make
    ``t.append(v)`` grow ``c``.
    """
    aliases: Dict[str, str] = {}
    for node in _walk_scope(loop):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        value = node.value
        base = None
        if (isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)):
            base = value.value.id
        elif (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _MEMBER_METHODS
                and isinstance(value.func.value, ast.Name)):
            base = value.func.value.id
        if base in live:
            aliases[node.targets[0].id] = base
    return aliases


def _growth_receiver(call: ast.Call) -> str:
    """The root Name a growth-method call ultimately writes into.

    Resolves chained access: ``c[k].append(v)`` and
    ``c.setdefault(k, []).append(v)`` both root at ``c``.
    """
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr in _ACCUMULATE_METHODS):
        return ""
    node: ast.AST = call.func.value
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return ""


def _accumulation_of(
    stmt: ast.stmt, live: FrozenSet[str], aliases: Dict[str, str]
):
    """``(container, value_exprs)`` when ``stmt`` grows a live container."""
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        root = _growth_receiver(call)
        root = aliases.get(root, root)
        if root in live:
            return root, list(call.args)
    if isinstance(stmt, ast.AugAssign):
        target = stmt.target
        root = ""
        if isinstance(target, ast.Name):
            root = target.id
        elif (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)):
            root = target.value.id
        root = aliases.get(root, root)
        if root in live:
            return root, [stmt.value]
    return None, []
