"""SEX3xx — determinism.

The reproduction's contract is that a run is a pure function of
``(graph, algorithm, memory budget, seed)``: the differential suite
replays fault schedules, the CI matrix pins seeds, and the paper's I/O
counts are asserted exactly.  Unseeded randomness, wall-clock branches
and iteration over unordered containers in tree-building paths all break
replay in ways a unit test only catches intermittently — so the checker
bans the syntactic forms outright and demands a waiver where wall-clock
use is genuinely observational (timing metrics, deadlines).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .base import (
    RawViolation,
    Rule,
    in_algorithm_core,
    in_observability_layer,
    register,
)

#: ``random`` module functions that draw from the shared, unseeded global
#: generator (seeding the global via ``random.seed`` is still shared
#: mutable state across call sites, so it is listed too).
_GLOBAL_RANDOM_FUNCTIONS: Tuple[str, ...] = (
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "getrandbits", "seed",
)

#: Wall-clock sources; reading one inside the algorithm core makes
#: behaviour time-dependent unless explicitly waived as observational.
_TIME_FUNCTIONS: Tuple[str, ...] = (
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
)
_DATETIME_FUNCTIONS: Tuple[str, ...] = ("now", "utcnow", "today")


@register
class UnseededRandomRule(Rule):
    """Global-generator randomness is unreplayable; require Random(seed)."""

    code = "SEX301"
    name = "det-unseeded-random"
    summary = (
        "module-level random.*() calls and random.Random() without a seed "
        "draw from unseeded state; construct random.Random(seed) and pass "
        "it down"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [alias.name for alias in node.names
                       if alias.name in _GLOBAL_RANDOM_FUNCTIONS]
                if bad:
                    yield self.violation(
                        node,
                        f"importing {', '.join(bad)} from random binds the "
                        "unseeded global generator; import Random and seed it",
                    )
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"):
                continue
            attr = node.func.attr
            if attr in _GLOBAL_RANDOM_FUNCTIONS:
                yield self.violation(
                    node,
                    f"random.{attr}() uses the unseeded global generator; "
                    "use random.Random(seed)",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield self.violation(
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )


@register
class WallClockRule(Rule):
    """Wall-clock reads in the algorithm core are suspect by default."""

    code = "SEX302"
    name = "det-wall-clock-in-core"
    summary = (
        "time.*/datetime.now() inside repro/algorithms/ or repro/core/ "
        "makes behaviour time-dependent; waive only observational uses "
        "(metrics, deadlines that abort rather than alter results); the "
        "observability layer (repro/obs/) is exempt wholesale"
    )

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath) and not in_observability_layer(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            base = node.func.value
            base_name = base.id if isinstance(base, ast.Name) else ""
            if base_name == "time" and attr in _TIME_FUNCTIONS:
                yield self.violation(
                    node,
                    f"time.{attr}() in the algorithm core; tree "
                    "construction must not depend on wall-clock time",
                )
            elif attr in _DATETIME_FUNCTIONS and (
                base_name in ("datetime", "date")
                or (isinstance(base, ast.Attribute)
                    and base.attr in ("datetime", "date"))
            ):
                yield self.violation(
                    node,
                    f"datetime.{attr}() in the algorithm core; tree "
                    "construction must not depend on wall-clock time",
                )


@register
class UnorderedIterationRule(Rule):
    """Iterating a raw set feeds hash order into the DFS tree."""

    code = "SEX303"
    name = "det-unordered-iteration-in-core"
    summary = (
        "for-loops and comprehensions directly over set()/frozenset()/set "
        "literals in the algorithm core iterate in hash order; sort first "
        "so sibling order is reproducible"
    )

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if self._is_unordered(candidate):
                    yield self.violation(
                        candidate,
                        "iteration directly over an unordered set; wrap it "
                        "in sorted(...) so downstream tree order is "
                        "deterministic",
                    )

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )
