"""SEX3xx — determinism.

The reproduction's contract is that a run is a pure function of
``(graph, algorithm, memory budget, seed)``: the differential suite
replays fault schedules, the CI matrix pins seeds, and the paper's I/O
counts are asserted exactly.  Unseeded randomness, wall-clock branches
and iteration over unordered containers in tree-building paths all break
replay in ways a unit test only catches intermittently — so the checker
bans the syntactic forms outright and demands a waiver where wall-clock
use is genuinely observational (timing metrics, deadlines).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Tuple

from ..callgraph import ProjectContext, taint_states
from ..cfg import own_expressions
from .base import (
    FlowRule,
    RawViolation,
    Rule,
    in_algorithm_core,
    in_observability_layer,
    register,
)

#: ``random`` module functions that draw from the shared, unseeded global
#: generator (seeding the global via ``random.seed`` is still shared
#: mutable state across call sites, so it is listed too).
_GLOBAL_RANDOM_FUNCTIONS: Tuple[str, ...] = (
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "getrandbits", "seed",
)

#: Wall-clock sources; reading one inside the algorithm core makes
#: behaviour time-dependent unless explicitly waived as observational.
_TIME_FUNCTIONS: Tuple[str, ...] = (
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
)
_DATETIME_FUNCTIONS: Tuple[str, ...] = ("now", "utcnow", "today")


@register
class UnseededRandomRule(Rule):
    """Global-generator randomness is unreplayable; require Random(seed)."""

    code = "SEX301"
    name = "det-unseeded-random"
    summary = (
        "module-level random.*() calls and random.Random() without a seed "
        "draw from unseeded state; construct random.Random(seed) and pass "
        "it down"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [alias.name for alias in node.names
                       if alias.name in _GLOBAL_RANDOM_FUNCTIONS]
                if bad:
                    yield self.violation(
                        node,
                        f"importing {', '.join(bad)} from random binds the "
                        "unseeded global generator; import Random and seed it",
                    )
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"):
                continue
            attr = node.func.attr
            if attr in _GLOBAL_RANDOM_FUNCTIONS:
                yield self.violation(
                    node,
                    f"random.{attr}() uses the unseeded global generator; "
                    "use random.Random(seed)",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield self.violation(
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )


@register
class WallClockRule(Rule):
    """Wall-clock reads in the algorithm core are suspect by default."""

    code = "SEX302"
    name = "det-wall-clock-in-core"
    summary = (
        "time.*/datetime.now() inside repro/algorithms/ or repro/core/ "
        "makes behaviour time-dependent; waive only observational uses "
        "(metrics, deadlines that abort rather than alter results); the "
        "observability layer (repro/obs/) is exempt wholesale"
    )

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath) and not in_observability_layer(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            base = node.func.value
            base_name = base.id if isinstance(base, ast.Name) else ""
            if base_name == "time" and attr in _TIME_FUNCTIONS:
                yield self.violation(
                    node,
                    f"time.{attr}() in the algorithm core; tree "
                    "construction must not depend on wall-clock time",
                )
            elif attr in _DATETIME_FUNCTIONS and (
                base_name in ("datetime", "date")
                or (isinstance(base, ast.Attribute)
                    and base.attr in ("datetime", "date"))
            ):
                yield self.violation(
                    node,
                    f"datetime.{attr}() in the algorithm core; tree "
                    "construction must not depend on wall-clock time",
                )


@register
class UnorderedIterationRule(Rule):
    """Iterating a raw set feeds hash order into the DFS tree."""

    code = "SEX303"
    name = "det-unordered-iteration-in-core"
    summary = (
        "for-loops and comprehensions directly over set()/frozenset()/set "
        "literals in the algorithm core iterate in hash order; sort first "
        "so sibling order is reproducible"
    )

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if self._is_unordered(candidate):
                    yield self.violation(
                        candidate,
                        "iteration directly over an unordered set; wrap it "
                        "in sorted(...) so downstream tree order is "
                        "deterministic",
                    )

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


# ----------------------------------------------------------------------
# Flow-sensitive determinism taint (SEX31x).
#
# The syntactic rules above catch nondeterminism at its *source*; the
# flow rules below catch it at the *sink*, after the value has travelled
# through assignments, arithmetic, helper calls (via call-graph
# summaries) and containers.  Sinks are the places nondeterminism
# becomes externally observable run state: RunResult construction
# (``finish``/``finish_result``/result constructors), span payloads
# (``.annotate(...)``), and writes into storage resources (``.append``
# etc. on a value the taint engine knows is a live resource).

#: Result-constructing callables whose arguments are persisted run state.
_RESULT_SINK_NAMES: Tuple[str, ...] = (
    "finish", "finish_result", "RunResult", "DFSResult", "BFSResult",
)

#: Write methods that persist their arguments when the receiver is a
#: storage resource (edge file / partition writer / device).
_RESOURCE_WRITE_METHODS: Tuple[str, ...] = (
    "append", "extend", "extend_columns", "route", "route_columns",
    "write_block",
)

#: Keyword arguments that are *defined* as wall-clock measurements; the
#: one sanctioned timing field.
_EXEMPT_KEYWORDS: Tuple[str, ...] = ("elapsed_seconds",)


def _sink_hits(info, context, kinds):
    """``(expr, sink_description, hit_kinds)`` per tainted sink argument."""
    analysis, states = taint_states(info, context)
    for node_id, stmt in info.cfg.statements.items():
        env = states.get(node_id)
        if env is None:
            continue  # unreachable statement
        for expr in own_expressions(stmt):
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                sink = _sink_description(call, analysis, env)
                if sink is None:
                    continue
                arguments = list(call.args)
                arguments.extend(
                    keyword.value for keyword in call.keywords
                    if keyword.arg not in _EXEMPT_KEYWORDS
                )
                for argument in arguments:
                    hit = analysis.taint_of(argument, env) & kinds
                    if hit:
                        yield argument, sink, hit


def _sink_description(call, analysis, env):
    """What kind of sink ``call`` is, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _RESULT_SINK_NAMES:
        return f"run-result construction via {func.id}()"
    if isinstance(func, ast.Attribute):
        if func.attr in _RESULT_SINK_NAMES:
            return f"run-result construction via .{func.attr}()"
        if func.attr == "annotate":
            return "a span payload (.annotate())"
        if func.attr in _RESOURCE_WRITE_METHODS and "resource" in (
            analysis.taint_of(func.value, env)
        ):
            return f"a storage write (.{func.attr}())"
    return None


class _TaintSinkRule(FlowRule):
    """Shared driver for the SEX31x sink rules."""

    kinds: FrozenSet[str] = frozenset()
    advice: str = ""

    def applies_to(self, relpath: str) -> bool:
        return in_algorithm_core(relpath) and not in_observability_layer(relpath)

    def check_flow(
        self, module: ast.Module, relpath: str, context: ProjectContext
    ) -> Iterator[RawViolation]:
        for info in context.functions.get(relpath, []):
            for expr, sink, hit in _sink_hits(info, context, self.kinds):
                yield self.violation(
                    expr,
                    f"value tainted by {'/'.join(sorted(hit))} reaches "
                    f"{sink} in {info.qualname}(); {self.advice}",
                )


@register
class HostStateTaintRule(_TaintSinkRule):
    """Wall-clock/random/environment values must not reach run state."""

    code = "SEX311"
    name = "det-host-state-reaches-run-state"
    summary = (
        "a value derived from time.*/random.*/os.environ/id() flows into "
        "a RunResult field, span payload or storage write (tracked "
        "through assignments and project calls); results must be a pure "
        "function of (graph, algorithm, memory, seed) — elapsed_seconds "
        "is the one sanctioned timing field"
    )

    kinds = frozenset({"wallclock", "random", "environ", "id"})
    advice = (
        "derive run state only from the inputs; timing belongs in "
        "elapsed_seconds, host identity does not belong at all"
    )


@register
class SetOrderTaintRule(_TaintSinkRule):
    """Set-iteration order must not reach run state."""

    code = "SEX312"
    name = "det-set-order-reaches-run-state"
    summary = (
        "a value produced by iterating an unordered set flows into a "
        "RunResult field, span payload or storage write; hash order "
        "varies across processes (PYTHONHASHSEED), so sort before "
        "iterating (sorted() launders the taint)"
    )

    kinds = frozenset({"setiter"})
    advice = "iterate sorted(...) so the recorded order is reproducible"
