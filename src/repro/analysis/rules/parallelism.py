"""SEX5xx — parallelism containment.

The process-pool part scheduler (:mod:`repro.parallel`) upholds three
invariants that make ``workers > 1`` safe to reason about: part
DFS-Trees are reassembled in part order (determinism), every worker's
measured I/O is absorbed into the parent run's counter (accounting), and
worker span events are replayed through the parent tracer (exact
leaf-phase tiling).  An ad-hoc ``ProcessPoolExecutor`` or
``multiprocessing`` pool anywhere else would sidestep all three — the
classic way a "parallel speedup" silently stops being the same
computation.  This rule confines process-spawning imports to the one
module built to preserve the invariants.

One carve-out: ``multiprocessing.shared_memory`` (and its
``resource_tracker`` companion) spawns nothing — it is the OS-level
allocation primitive behind the columnar worker boundary
(:mod:`repro.storage.shm`), so the *storage layer* may import it.  The
scheduler stays the only place allowed to create processes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .base import RawViolation, Rule, in_parallel_layer, in_storage_layer, register

#: Top-level modules whose import means "this file may spawn processes".
_PROCESS_MODULES: Tuple[str, ...] = ("multiprocessing", "concurrent")

#: Non-spawning ``multiprocessing`` submodules the storage layer may use
#: for the shared-memory column segments (repro/storage/shm.py).
_SHM_SUBMODULES: Tuple[str, ...] = (
    "multiprocessing.shared_memory",
    "multiprocessing.resource_tracker",
)

_SHM_NAMES: Tuple[str, ...] = ("shared_memory", "resource_tracker")


def _module_root(name: str) -> str:
    return name.split(".", 1)[0]


def _storage_may_import(relpath: str, node: ast.AST) -> bool:
    """Whether this import is the storage layer's shared-memory carve-out."""
    if not in_storage_layer(relpath):
        return False
    if isinstance(node, ast.Import):
        return all(alias.name in _SHM_SUBMODULES for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        if node.module in _SHM_SUBMODULES:
            return True
        if node.module == "multiprocessing":
            return all(alias.name in _SHM_NAMES for alias in node.names)
    return False


@register
class ProcessPoolConfinementRule(Rule):
    """Process-spawning imports outside ``repro/parallel.py``."""

    code = "SEX501"
    name = "par-pool-outside-scheduler"
    summary = (
        "multiprocessing/concurrent.futures imports are confined to "
        "repro/parallel.py (shared_memory/resource_tracker additionally "
        "allowed in repro/storage/); pooled work elsewhere would bypass "
        "part-order reassembly, worker I/O absorption, and span replay"
    )

    def applies_to(self, relpath: str) -> bool:
        return not in_parallel_layer(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                if _storage_may_import(relpath, node):
                    continue
                for alias in node.names:
                    if _module_root(alias.name) in _PROCESS_MODULES:
                        yield self.violation(
                            node,
                            f"import of {alias.name} outside the parallel "
                            "scheduler; route pooled work through "
                            "repro.parallel.conquer_parts",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _module_root(node.module) in _PROCESS_MODULES:
                    if _storage_may_import(relpath, node):
                        continue
                    yield self.violation(
                        node,
                        f"import from {node.module} outside the parallel "
                        "scheduler; route pooled work through "
                        "repro.parallel.conquer_parts",
                    )
