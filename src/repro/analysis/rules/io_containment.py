"""SEX1xx — I/O containment.

The semi-external model charges *every* block transfer to
:class:`~repro.storage.io_stats.IOStats` by routing it through
:class:`~repro.storage.block_device.BlockDevice`.  One stray ``open()``
outside the storage layer moves bytes the accounting never sees, which
silently invalidates every I/O figure the benchmarks reproduce.  These
rules confine raw file primitives to ``repro/storage/`` and the text
edge-list codec ``repro/graph/io.py``; anywhere else they require an
explicit, justified waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .base import RawViolation, Rule, in_storage_layer, register

#: ``os`` functions that move file bytes or hand out raw descriptors.
_OS_IO_FUNCTIONS: Tuple[str, ...] = (
    "open", "read", "write", "pread", "pwrite", "fdopen", "sendfile",
    "readv", "writev",
)

#: ``io`` module entry points that open real files.
_IO_MODULE_OPENERS: Tuple[str, ...] = ("open", "open_code", "FileIO")

#: Attribute methods that read/write files directly (``pathlib.Path`` and
#: friends); ``.open`` also catches ``gzip.open`` / ``Path.open`` escapes.
_ATTRIBUTE_IO_METHODS: Tuple[str, ...] = (
    "read_bytes", "read_text", "write_bytes", "write_text", "open",
)

#: Codec machinery private to ``repro/storage/serialization.py``: frame
#: layout, block-codec tags and the encode/decode entry points.  Callers
#: outside the storage layer must stay wire-format agnostic — EdgeFile
#: dispatches on the codec tag — so new codecs never require touching
#: algorithm code.  ``resolve_block_codec`` / ``BLOCK_CODECS`` /
#: ``pack_ints`` / ``unpack_ints`` stay public by design.
_CODEC_INTERNAL_NAMES: Tuple[str, ...] = (
    "frame_block", "parse_frame_header", "verify_frame_payload",
    "classify_edge_block", "decode_varint_columns", "decode_edge_block",
    "DeltaVarintBlockEncoder", "CODEC_TAG_FIXED32", "CODEC_TAG_DELTA_VARINT",
)


class _StorageScopedRule(Rule):
    """Shared scope: everywhere except the storage layer allow-list."""

    def applies_to(self, relpath: str) -> bool:
        return not in_storage_layer(relpath)


@register
class BuiltinOpenRule(_StorageScopedRule):
    """``open(...)`` outside the storage layer bypasses I/O accounting."""

    code = "SEX101"
    name = "io-open-outside-storage"
    summary = (
        "builtin open() is only allowed in repro/storage/ and "
        "repro/graph/io.py; route block transfers through BlockDevice so "
        "they are charged to IOStats"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "open":
                yield self.violation(
                    node,
                    "builtin open() outside the storage layer; use "
                    "BlockDevice/EdgeFile so the transfer is I/O-counted",
                )


@register
class LowLevelOsIoRule(_StorageScopedRule):
    """``os.read``/``os.open``/… bypass both framing and accounting."""

    code = "SEX102"
    name = "io-os-primitives-outside-storage"
    summary = (
        "low-level os/io file primitives (os.open/os.read/io.open/...) are "
        "confined to the storage layer"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)):
                continue
            base, attr = node.func.value.id, node.func.attr
            if (base == "os" and attr in _OS_IO_FUNCTIONS) or \
                    (base == "io" and attr in _IO_MODULE_OPENERS):
                yield self.violation(
                    node,
                    f"{base}.{attr}() outside the storage layer bypasses "
                    "block framing and I/O accounting",
                )


@register
class MmapRule(_StorageScopedRule):
    """Memory-mapping a file makes transfers invisible to IOStats."""

    code = "SEX103"
    name = "io-mmap-outside-storage"
    summary = (
        "mmap maps disk pages straight into memory, so transfers are "
        "neither block-framed nor charged; only the storage layer may use it"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "mmap" or alias.name.startswith("mmap."):
                        yield self.violation(
                            node, "import of mmap outside the storage layer"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "mmap":
                    yield self.violation(
                        node, "import from mmap outside the storage layer"
                    )


@register
class AttributeIoRule(_StorageScopedRule):
    """``Path.read_bytes()``-style shortcuts are still raw file I/O."""

    code = "SEX104"
    name = "io-path-methods-outside-storage"
    summary = (
        "pathlib-style direct file methods (.read_bytes/.write_text/.open/"
        "...) are confined to the storage layer"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ATTRIBUTE_IO_METHODS):
                continue
            # ``os.open`` / ``io.open`` are SEX102's finding, not ours.
            base = node.func.value
            if isinstance(base, ast.Name) and base.id in ("os", "io"):
                continue
            yield self.violation(
                node,
                f".{node.func.attr}() performs raw file I/O outside the "
                "storage layer",
            )


@register
class CodecInternalsRule(_StorageScopedRule):
    """Block-codec internals must not leak past ``repro/storage/``."""

    code = "SEX105"
    name = "codec-internals-outside-storage"
    summary = (
        "block frame/codec internals (frame_block, classify_edge_block, "
        "DeltaVarintBlockEncoder, codec tags, ...) are confined to the "
        "storage layer; read edges through EdgeFile scans so the wire "
        "format stays swappable"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.ImportFrom):
                if not (node.module or "").endswith("serialization"):
                    continue
                for alias in node.names:
                    if alias.name in _CODEC_INTERNAL_NAMES:
                        yield self.violation(
                            node,
                            f"import of codec-internal {alias.name!r} outside "
                            "the storage layer couples the caller to the "
                            "block wire format",
                        )
            elif isinstance(node, ast.Attribute) and \
                    node.attr in _CODEC_INTERNAL_NAMES and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "serialization":
                yield self.violation(
                    node,
                    f"serialization.{node.attr} outside the storage layer "
                    "couples the caller to the block wire format",
                )
