"""Rule framework for the semi-external-model conformance checker.

A :class:`Rule` inspects one parsed module and yields
:class:`RawViolation` records (location + message; the engine attaches
the file path and applies waivers).  Rules are registered in a module
registry keyed by their ``SEX`` code so the CLI, the docs generator and
the waiver validator all see the same inventory.

Scoping vocabulary (``repro/…`` paths are computed from the *last*
``repro`` component of a file's path, so fixture trees under a temp
directory scope exactly like the real package):

* ``STORAGE_LAYER`` — where raw file primitives are legal, because every
  transfer there is framed, CRC-checked and charged to
  :class:`~repro.storage.io_stats.IOStats`.
* ``ALGORITHM_PATHS`` — the semi-external core, where only ``k·|V|``
  state may live in memory and results must be deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..callgraph import ProjectContext

#: Path prefixes where raw file I/O is allowed: the storage substrate and
#: the text edge-list loader.  Everything else must go through BlockDevice.
STORAGE_LAYER_PREFIXES: Tuple[str, ...] = ("repro/storage/",)
STORAGE_LAYER_FILES: Tuple[str, ...] = ("repro/graph/io.py",)

#: Path prefixes holding the semi-external algorithm core, where the
#: memory-discipline and determinism rules apply.
ALGORITHM_PATH_PREFIXES: Tuple[str, ...] = ("repro/algorithms/", "repro/core/")

#: Path prefixes of the observability layer (span tracing, metrics,
#: profiles).  Wall-clock reads there are purely observational by
#: construction — they land in event records and never feed tree
#: construction — so the SEX3xx wall-clock rule exempts them without
#: per-call waivers.
OBSERVABILITY_PATH_PREFIXES: Tuple[str, ...] = ("repro/obs/",)

#: Attribute names that return a block-charged edge iterator; wrapping one
#: in a materializer is an O(E) memory-model breach.
SCAN_METHOD_NAMES: Tuple[str, ...] = ("scan", "scan_blocks", "scan_columns")

#: Files allowed to spawn worker processes.  Process-pool orchestration
#: lives in exactly one module so its invariants — part-ordered
#: reassembly, worker I/O absorption, span replay — cannot be bypassed
#: by an ad-hoc pool elsewhere (the SEX5xx family).
PARALLEL_LAYER_FILES: Tuple[str, ...] = ("repro/parallel.py",)

#: Path prefixes of the serving layer.  Network listeners live in exactly
#: one package so every served answer demonstrably comes from a sealed,
#: checksummed artifact — a socket opened next to an algorithm could leak
#: unsealed state or un-charged I/O out of the cost model (the SEX5xx
#: containment family).
SERVE_LAYER_PREFIXES: Tuple[str, ...] = ("repro/serve/",)

#: The designated in-memory solver: the one module allowed to accumulate
#: scan-derived adjacency into memory, because it runs only after the
#: recursion has proved the part fits the budget (|V|+|E| ≤ memory).
#: The flow-sensitive materialization rule (SEX211) exempts it so every
#: other accumulation site must either stream or route through it.
INMEMORY_SOLVER_FILES: Tuple[str, ...] = ("repro/core/inmemory.py",)


@dataclass(frozen=True)
class RawViolation:
    """A rule hit before the engine attaches the file path / waivers."""

    code: str
    line: int
    column: int
    message: str


class Rule:
    """Base class: one ``SEX`` code, a scope predicate, and a checker."""

    #: Rule code, ``SEX`` + three digits (family encoded in the hundreds).
    code: str = ""
    #: Short human name (kebab-case, stable; used in docs and ``--list-rules``).
    name: str = ""
    #: One-line description of what the rule enforces and why.
    summary: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs against the file at ``relpath``."""
        return True

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str) -> RawViolation:
        """Build a :class:`RawViolation` anchored at ``node``."""
        return RawViolation(
            code=self.code,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class FlowRule(Rule):
    """A rule that needs CFGs and cross-function taint, not just the AST.

    Flow rules receive a :class:`~repro.analysis.callgraph.ProjectContext`
    (parsed modules, per-function CFGs, call summaries) through
    :meth:`check_flow`.  When invoked through the plain :meth:`check`
    interface — single-file analysis with no surrounding project — they
    build a single-file context on the fly, so taint still crosses calls
    *within* the file but summaries from sibling files are absent.
    """

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        from ..callgraph import context_from_modules

        context = context_from_modules({relpath: module})
        return self.check_flow(module, relpath, context)

    def check_flow(
        self, module: ast.Module, relpath: str, context: "ProjectContext"
    ) -> Iterator[RawViolation]:
        """Yield violations using project-wide flow facts."""
        raise NotImplementedError


def in_storage_layer(relpath: str) -> bool:
    """Whether raw file primitives are legal at ``relpath``."""
    return relpath.startswith(STORAGE_LAYER_PREFIXES) or relpath in STORAGE_LAYER_FILES


def in_algorithm_core(relpath: str) -> bool:
    """Whether ``relpath`` is part of the semi-external algorithm core."""
    return relpath.startswith(ALGORITHM_PATH_PREFIXES)


def in_observability_layer(relpath: str) -> bool:
    """Whether ``relpath`` is part of the observability layer."""
    return relpath.startswith(OBSERVABILITY_PATH_PREFIXES)


def in_parallel_layer(relpath: str) -> bool:
    """Whether ``relpath`` may orchestrate worker processes."""
    return relpath in PARALLEL_LAYER_FILES


def in_serve_layer(relpath: str) -> bool:
    """Whether ``relpath`` may open network listeners/sockets."""
    return relpath.startswith(SERVE_LAYER_PREFIXES)


#: Registry of checkable rules, keyed by code (populated by ``register``).
RULES: Dict[str, Rule] = {}

#: Codes the engine itself emits (waiver hygiene + parse failures); they
#: participate in waiver validation but have no AST checker.
META_CODES: Dict[str, str] = {
    "SEX001": "waiver has an empty or malformed reason/code list",
    "SEX002": "waiver names a rule code that does not exist",
    "SEX003": "waiver suppresses nothing (stale waiver)",
    "SEX004": "file could not be parsed as Python",
}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its code."""
    rule = rule_class()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {rule_class.__name__} must define code and name")
    if rule.code in RULES or rule.code in META_CODES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule_class


def known_codes() -> Tuple[str, ...]:
    """Every valid code a waiver may name, sorted."""
    return tuple(sorted(set(RULES) | set(META_CODES)))


def call_name(node: ast.Call) -> str:
    """The called name for ``name(...)`` calls, else ``""``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def attribute_call(node: ast.Call) -> Tuple[str, str]:
    """``(base, attr)`` for ``base.attr(...)`` calls with a Name base.

    Returns ``("", attr)`` when the base is a more complex expression and
    ``("", "")`` when the call is not an attribute call at all.
    """
    if not isinstance(node.func, ast.Attribute):
        return "", ""
    base = node.func.value
    if isinstance(base, ast.Name):
        return base.id, node.func.attr
    return "", node.func.attr


def walk_calls(module: ast.Module) -> Iterator[ast.Call]:
    """Every :class:`ast.Call` in the module, in document order."""
    for node in ast.walk(module):
        if isinstance(node, ast.Call):
            yield node


ScopePredicate = Callable[[str], bool]
