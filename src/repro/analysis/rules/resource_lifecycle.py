"""SEX6xx — flow-sensitive resource lifecycle.

The storage layer's resources — part files from a
:class:`~repro.storage.edge_file.PartitionWriter`, edge files from
``create_edge_file``/``edge_file_from_edges``, whole
:class:`~repro.storage.block_device.BlockDevice` instances — are real
on-disk state.  A function that acquires one and exits without sealing,
closing, deleting or handing it off leaks disk for the rest of the run;
on *error* paths the leak is invisible to tests that only exercise the
happy path (the division-step part-file leak fixed in the process-pool
PR was exactly this shape).

``SEX601`` runs a may-analysis over each function's CFG
(:mod:`repro.analysis.cfg`): every variable bound directly from an
acquirer call — or from a project function whose summary says it
returns a live resource (:mod:`repro.analysis.callgraph`) — is tracked
through a tiny lattice of ``live``/``done`` facts:

* release methods (``close``/``delete``/``discard``/``seal``) mark the
  resource *done*;
* escapes transfer ownership and also mark it *done*: returning or
  yielding it, passing it to any call, storing it into an attribute,
  subscript, container or alias;
* ``with`` bindings are never tracked (the context manager releases).

Leaks are judged **per exit edge**, not at the joined exit state — the
distinction that makes the rule catch the real bug class.  Joining all
paths at ``RAISE`` would let the happy-path ``seal()``'s own exception
edge contribute a ``done`` fact that masks the routing loop's leak;
instead, each edge into ``EXIT`` and each *unhandled* exception edge
into ``RAISE`` is checked with the state actually flowing along it: a
resource ``live`` with no ``done`` on that edge is a leak.  An
exception edge is "handled" when the raising statement also dispatches
to an ``except`` handler or ``finally`` — the handler body is then
checked on its own (its ``raise`` carries the post-cleanup state), so
the narrow-except idiom the error-hygiene rules demand
(``except StorageError: w.discard(); raise``) passes without a
catch-all.  Within one program point the rule stays a may-analysis
(``live`` present and ``done`` absent in the joined incoming state), so
a release on *some* path into a point keeps it quiet.  Exception
out-edges of an acquiring statement use the pre-state (the constructor
that raised never produced a resource), so ``w = PartitionWriter(...)``
itself is not a leak when it fails.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..callgraph import RESOURCE_CALL_NAMES, ProjectContext, _bare_call_name
from ..cfg import CFG, EXCEPTION, EXIT, RAISE, own_expressions
from ..dataflow import ForwardAnalysis, solve_forward
from .base import (
    FlowRule,
    RawViolation,
    in_algorithm_core,
    in_parallel_layer,
    register,
)

#: Method names that end a resource's obligation when called on it.
RELEASE_METHODS: FrozenSet[str] = frozenset(
    {"close", "delete", "discard", "seal"}
)

_DONE = "done"
_LIVE_PREFIX = "live@"

#: State: variable -> union of facts ("live@<line>" and/or "done").
_ResourceEnv = Dict[str, FrozenSet[str]]


class _ResourceAnalysis(ForwardAnalysis[_ResourceEnv]):
    """The live/done may-analysis described in the module docstring."""

    def __init__(self, acquirer_names: FrozenSet[str]) -> None:
        self.acquirer_names = acquirer_names

    def initial(self) -> _ResourceEnv:
        return {}

    def join(self, left: _ResourceEnv, right: _ResourceEnv) -> _ResourceEnv:
        if left == right:
            return left
        merged = dict(left)
        for var, facts in right.items():
            merged[var] = merged.get(var, frozenset()) | facts
        return merged

    def transfer(self, stmt: ast.stmt, state: _ResourceEnv) -> _ResourceEnv:
        return self._transfer(stmt, state, acquire=True)

    def transfer_exception(
        self, stmt: ast.stmt, state: _ResourceEnv
    ) -> _ResourceEnv:
        # The statement raised: releases and escapes were *attempted*
        # (close() failing still discharges the obligation — flagging
        # failed cleanup would double-report), but an acquiring
        # assignment never bound its resource.
        return self._transfer(stmt, state, acquire=False)

    def _acquires(self, value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and _bare_call_name(value) in self.acquirer_names
        )

    def _transfer(
        self, stmt: ast.stmt, state: _ResourceEnv, acquire: bool
    ) -> _ResourceEnv:
        tracked = {var for var in state}
        if not tracked and not (
            acquire
            and isinstance(stmt, ast.Assign)
            and self._acquires(stmt.value)
        ):
            return state

        updated = dict(state)
        expressions = list(own_expressions(stmt))

        # Receiver-position uses (w.method(...)): releases mark done,
        # other method calls leave the state alone.  Record the Name
        # node ids so the escape walk below can skip them.
        receiver_ids: Set[int] = set()
        for expr in expressions:
            for node in ast.walk(expr):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                ):
                    continue
                receiver = node.func.value
                receiver_ids.add(id(receiver))
                if (
                    node.func.attr in RELEASE_METHODS
                    and receiver.id in tracked
                ):
                    updated[receiver.id] = frozenset({_DONE})

        # Escapes: a tracked name read anywhere except receiver
        # position transfers ownership.
        for expr in expressions:
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in tracked
                    and id(node) not in receiver_ids
                ):
                    updated[node.id] = frozenset({_DONE})

        # (Re)bindings: acquiring assignments start tracking; any other
        # assignment to a tracked name drops it (the binding is gone and
        # the may-analysis stays quiet rather than guessing).
        if isinstance(stmt, ast.Assign):
            is_acquire = acquire and self._acquires(stmt.value)
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if is_acquire:
                    updated[target.id] = frozenset(
                        {f"{_LIVE_PREFIX}{stmt.lineno}"}
                    )
                elif target.id in tracked:
                    updated.pop(target.id, None)
        return updated


def leaked_at_exit(env: _ResourceEnv) -> Iterator[Tuple[str, int]]:
    """``(var, acquire_line)`` for each resource live-and-never-done."""
    for var in sorted(env):
        facts = env[var]
        if _DONE in facts:
            continue
        lines = [
            int(fact[len(_LIVE_PREFIX):])
            for fact in facts
            if fact.startswith(_LIVE_PREFIX)
        ]
        if lines:
            yield var, min(lines)


def _edge_leaks(
    cfg: "CFG",
    states: Dict[int, _ResourceEnv],
    analysis: _ResourceAnalysis,
) -> Iterator[Tuple[str, int, str]]:
    """``(var, acquire_line, exit_label)`` per leaking exit edge.

    Normal edges into ``EXIT`` are always checked.  Exception edges into
    ``RAISE`` are checked only when the raising statement dispatches to
    *no* handler (its only exceptional successor is ``RAISE``): when a
    handler exists, the leak question is answered by the handler body's
    own exits instead of the conservative bypass edge.
    """
    for exit_node, label in (
        (EXIT, "the normal return path"),
        (RAISE, "an exceptional path"),
    ):
        for source, kind in cfg.pred.get(exit_node, []):
            if exit_node == RAISE and any(
                target != RAISE and edge_kind == EXCEPTION
                for target, edge_kind in cfg.succ.get(source, [])
            ):
                continue  # dispatches to a handler; judged there
            in_state = states.get(source)
            if in_state is None:
                continue  # unreachable
            stmt = cfg.statements.get(source)
            if stmt is None:
                out_state = in_state
            elif kind == EXCEPTION:
                out_state = analysis.transfer_exception(stmt, in_state)
            else:
                out_state = analysis.transfer(stmt, in_state)
            for var, line in leaked_at_exit(out_state):
                yield var, line, label


@register
class ResourceLeakRule(FlowRule):
    """A resource acquired on some path must be released on every path."""

    code = "SEX601"
    name = "res-leak-on-exit"
    summary = (
        "a part file / edge file / writer / device acquired in a function "
        "must be sealed, closed, deleted or handed off on every path out "
        "of the function, including exception paths (may-analysis over "
        "the CFG; conditional release on any path is accepted)"
    )

    def applies_to(self, relpath: str) -> bool:
        return (
            in_algorithm_core(relpath)
            or in_parallel_layer(relpath)
            or relpath.startswith("repro/apps/")
        )

    def check_flow(
        self, module: ast.Module, relpath: str, context: ProjectContext
    ) -> Iterator[RawViolation]:
        acquirers = set(RESOURCE_CALL_NAMES)
        acquirers.update(
            name
            for name, summary in context.summaries.items()
            if summary.returns_resource
        )
        analysis = _ResourceAnalysis(frozenset(acquirers))
        for info in context.functions.get(relpath, []):
            states = solve_forward(info.cfg, analysis)
            leaks: Dict[Tuple[str, int], List[str]] = {}
            for var, line, label in _edge_leaks(info.cfg, states, analysis):
                labels = leaks.setdefault((var, line), [])
                if label not in labels:
                    labels.append(label)
            for (var, line), labels in sorted(leaks.items()):
                yield RawViolation(
                    code=self.code,
                    line=line,
                    column=1,
                    message=(
                        f"resource '{var}' acquired here in "
                        f"{info.qualname}() is never released on "
                        f"{' or '.join(labels)}; close/delete/discard/"
                        "seal it on every path out, or hand it off "
                        "(return it / store it) explicitly"
                    ),
                )
