"""SEX4xx — error hygiene.

The resilience layer (PR 2) communicates through a *typed* exception
hierarchy: :class:`~repro.errors.TransientIOError` is retried,
:class:`~repro.errors.CorruptBlockError` means damaged data,
:class:`~repro.errors.RetriesExhausted` means the retry budget is spent.
A bare ``except:`` or a broad ``except Exception`` anywhere in the
library can swallow those signals — turning a detected corruption into a
silently wrong DFS tree.  Likewise ``assert`` compiles away under
``python -O``, so it must never carry runtime validation in ``src/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .base import RawViolation, Rule, register

#: Exception names whose silent swallowing hides the typed hierarchy.
_HIERARCHY_NAMES: Tuple[str, ...] = (
    "ReproError", "StorageError", "TransientIOError", "CorruptBlockError",
    "RetriesExhausted", "Exception", "BaseException",
)

_BROAD_NAMES: Tuple[str, ...] = ("Exception", "BaseException")


def _exception_names(handler_type: Optional[ast.expr]) -> List[str]:
    """Flatten a handler's exception expression into dotted-name tails."""
    if handler_type is None:
        return []
    nodes: List[ast.expr] = (
        list(handler_type.elts) if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


@register
class BareExceptRule(Rule):
    """``except:`` catches everything, including KeyboardInterrupt."""

    code = "SEX401"
    name = "err-bare-except"
    summary = (
        "bare except: swallows every exception including the typed "
        "CorruptBlockError/RetriesExhausted signals; name the exceptions"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    node,
                    "bare except: catches the whole typed error hierarchy "
                    "(and KeyboardInterrupt); catch specific repro.errors "
                    "types",
                )


@register
class BroadExceptRule(Rule):
    """``except Exception`` hides which failure domain actually fired."""

    code = "SEX402"
    name = "err-broad-except"
    summary = (
        "except Exception/BaseException can absorb CorruptBlockError and "
        "RetriesExhausted; catch the narrow repro.errors types (waive only "
        "at true process boundaries)"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = [name for name in _exception_names(node.type)
                     if name in _BROAD_NAMES]
            for name in broad:
                yield self.violation(
                    node,
                    f"except {name} is broad enough to swallow the typed "
                    "storage errors; catch specific repro.errors types",
                )


@register
class AssertForValidationRule(Rule):
    """``assert`` vanishes under ``-O``; raise typed errors instead."""

    code = "SEX403"
    name = "err-assert-in-src"
    summary = (
        "assert statements in src/ disappear under python -O, so they "
        "cannot carry runtime validation; raise a repro.errors type"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    node,
                    "assert used for runtime validation; raise "
                    "InvalidGraphError/StorageError/... so the check "
                    "survives python -O",
                )


@register
class SilentSwallowRule(Rule):
    """``except ReproError: pass`` erases a typed failure signal."""

    code = "SEX404"
    name = "err-silent-swallow"
    summary = (
        "an except block that catches the repro hierarchy (or broader) "
        "and only passes destroys the failure signal the resilience layer "
        "worked to produce"
    )

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None and not any(
                name in _HIERARCHY_NAMES
                for name in _exception_names(node.type)
            ):
                continue
            body_is_pass = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
            if body_is_pass:
                caught = ", ".join(_exception_names(node.type)) or "everything"
                yield self.violation(
                    node,
                    f"except ({caught}) with a bare pass silently swallows "
                    "the typed error hierarchy; handle, log, or re-raise",
                )
