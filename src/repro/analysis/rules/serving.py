"""SEX5xx — serving containment (the network half of the family).

The query service (:mod:`repro.serve`) is the one place the repo is
allowed to listen on a socket, and it earns that right by construction:
every answer it serves comes from a sealed, checksummed artifact whose
manifest pins the graph digest, algorithm, and codec, and every byte it
reads off disk flows through the charged block layer.  An HTTP handler
or raw socket anywhere else — an algorithm module exposing progress over
the network, a debug endpoint inside the storage layer — would leak
unsealed state and un-charged I/O straight past the cost model and the
artifact versioning.  This rule confines the stdlib networking imports
to the serving package, mirroring SEX501's process-pool confinement.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .base import RawViolation, Rule, in_serve_layer, register

#: Top-level modules whose import means "this file may talk on sockets".
_SERVE_MODULES: Tuple[str, ...] = ("http", "socket", "socketserver")


def _module_root(name: str) -> str:
    return name.split(".", 1)[0]


@register
class NetworkConfinementRule(Rule):
    """Network/server imports outside ``repro/serve/``."""

    code = "SEX502"
    name = "serve-socket-outside-service"
    summary = (
        "http/socket/socketserver imports are confined to repro/serve/; a "
        "listener elsewhere would serve unsealed state outside the "
        "artifact manifests and the charged block layer"
    )

    def applies_to(self, relpath: str) -> bool:
        return not in_serve_layer(relpath)

    def check(self, module: ast.Module, relpath: str) -> Iterator[RawViolation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _module_root(alias.name) in _SERVE_MODULES:
                        yield self.violation(
                            node,
                            f"import of {alias.name} outside the serving "
                            "layer; expose data through repro.serve so "
                            "answers come from sealed artifacts",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _module_root(node.module) in _SERVE_MODULES:
                    yield self.violation(
                        node,
                        f"import from {node.module} outside the serving "
                        "layer; expose data through repro.serve so "
                        "answers come from sealed artifacts",
                    )
