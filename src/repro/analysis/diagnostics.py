"""Diagnostic records produced by the conformance checker.

A :class:`Violation` pins one broken rule to an exact ``path:line:col``
location; an :class:`AnalysisReport` aggregates every file's violations
plus the waivers that were consulted, and renders itself as text or as
the stable JSON document the CI job and editor integrations consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Version of the JSON report schema (bump on breaking shape changes).
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at an exact source location.

    Ordering is ``(path, line, column, code)`` so reports are stable
    across runs and dict-iteration orders.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """The JSON-report shape of this violation."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class WaiverRecord:
    """One ``# repro: allow[...]`` comment, as it appears in the report."""

    path: str
    line: int
    codes: Tuple[str, ...]
    reason: str
    used: bool

    def to_dict(self) -> Dict[str, object]:
        """The JSON-report shape of this waiver."""
        return {
            "path": self.path,
            "line": self.line,
            "codes": list(self.codes),
            "reason": self.reason,
            "used": self.used,
        }


@dataclass
class AnalysisReport:
    """The complete outcome of one analysis run."""

    violations: List[Violation] = field(default_factory=list)
    waivers: List[WaiverRecord] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the checked tree is conformant (no violations)."""
        return not self.violations

    def counts_by_code(self) -> Dict[str, int]:
        """Violation tally per rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for violation in sorted(self.violations):
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return counts

    def render_text(self) -> str:
        """Human-readable report: one line per violation plus a summary."""
        lines = [violation.render() for violation in sorted(self.violations)]
        if self.violations:
            tally = ", ".join(
                f"{code}: {count}" for code, count in self.counts_by_code().items()
            )
            lines.append("")
            lines.append(
                f"{len(self.violations)} violation(s) in "
                f"{self.files_checked} file(s) checked ({tally})"
            )
        else:
            lines.append(
                f"OK: {self.files_checked} file(s) checked, no violations"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """The stable JSON document (see ``docs/ANALYSIS.md`` for the schema)."""
        return {
            "version": REPORT_SCHEMA_VERSION,
            "tool": "repro.analysis",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "counts": self.counts_by_code(),
            "violations": [v.to_dict() for v in sorted(self.violations)],
            "waivers": [w.to_dict() for w in self.waivers],
        }
