"""Static conformance checking for the semi-external model.

The paper's headline property — memory holds only ``k·|V|`` state while
the edge set stays on disk with every block transfer charged to I/O — is
a *convention* the rest of the library merely follows.  This package
machine-checks it: an AST-based rule engine (stdlib only) walks the
source tree and reports any pattern that would break the model silently,
each with a stable ``SEXnnn`` code, an exact location, and an inline
waiver escape hatch (``# repro: allow[SEXnnn] <reason>``).

Rule families (full catalogue in ``docs/ANALYSIS.md``):

* ``SEX1xx`` — I/O containment: raw file primitives only inside
  ``repro/storage/`` and ``repro/graph/io.py``;
* ``SEX2xx`` — memory discipline: no O(E) materialization of edge scans
  in the algorithm core;
* ``SEX3xx`` — determinism: no unseeded randomness, wall-clock logic, or
  unordered iteration feeding tree construction;
* ``SEX4xx`` — error hygiene: no bare/broad ``except`` swallowing the
  typed error hierarchy, no ``assert`` for runtime validation.

Programmatic API::

    from repro.analysis import analyze_source, run_analysis

    report = run_analysis(["src"])
    assert report.ok, report.render_text()

CLI: ``python -m repro.analysis src`` (exit 1 on violations).
"""

from .diagnostics import REPORT_SCHEMA_VERSION, AnalysisReport, Violation, WaiverRecord
from .engine import analyze_file, analyze_source, model_path, run_analysis
from .rules import META_CODES, RULES, known_codes
from .waivers import Waiver, extract_waivers

__all__ = [
    "AnalysisReport",
    "META_CODES",
    "REPORT_SCHEMA_VERSION",
    "RULES",
    "Violation",
    "Waiver",
    "WaiverRecord",
    "analyze_file",
    "analyze_source",
    "extract_waivers",
    "known_codes",
    "model_path",
    "run_analysis",
]
