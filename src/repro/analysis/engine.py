"""The analysis engine: file discovery, rule dispatch, waiver resolution.

For every Python file the engine parses the source once, runs each
registered rule whose scope covers the file, and reconciles the raw hits
against the file's ``# repro: allow[...]`` waivers.  Waiver hygiene is
enforced here: empty reasons (``SEX001``), unknown codes (``SEX002``)
and stale waivers that suppress nothing (``SEX003``) are violations in
their own right, so the waiver inventory can never rot silently.

Path scoping: a file's *model path* is computed from the last ``repro``
component of its real path (``.../site-packages/repro/core/tree.py`` →
``repro/core/tree.py``), which makes fixture trees under a temp
directory scope exactly like the installed package.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Sequence, Tuple

from .diagnostics import AnalysisReport, Violation, WaiverRecord
from .rules import RULES, known_codes
from .waivers import Waiver, extract_waivers


def model_path(path: str) -> str:
    """The ``repro/...`` scoping path for ``path`` (see module docstring)."""
    parts = path.replace(os.sep, "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def _analyze(source: str, path: str) -> Tuple[List[Violation], List[Waiver]]:
    """Rule dispatch + waiver resolution for one file's source."""
    relpath = model_path(path)
    waivers = extract_waivers(source)
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError as error:
        violation = Violation(
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1),
            code="SEX004",
            message=f"file could not be parsed: {error.msg}",
        )
        return [violation], waivers

    raw: List[Violation] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if not rule.applies_to(relpath):
            continue
        for hit in rule.check(module, relpath):
            raw.append(Violation(
                path=path, line=hit.line, column=hit.column,
                code=hit.code, message=hit.message,
            ))

    kept = _apply_waivers(raw, waivers)
    kept.extend(_waiver_hygiene(waivers, path))
    kept.sort()
    return kept, waivers


def analyze_source(source: str, path: str) -> List[Violation]:
    """Run every applicable rule over ``source``; returns net violations.

    ``path`` is used both for diagnostics and for rule scoping (via
    :func:`model_path`).  Waivers in the source are applied and their
    hygiene violations appended.
    """
    violations, _ = _analyze(source, path)
    return violations


def _read_source(path: str) -> str:
    # The checker is a dev-time tool reading *source code*, not graph
    # data, so it sits outside the block-I/O model it enforces.
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[SEX101] linted source files are outside the block-I/O model
        return handle.read()


def analyze_file(path: str) -> List[Violation]:
    """Analyze one file on disk (see :func:`analyze_source`)."""
    return analyze_source(_read_source(path), path)


def run_analysis(paths: Sequence[str]) -> AnalysisReport:
    """Analyze every Python file under ``paths`` into one report."""
    report = AnalysisReport()
    for path in iter_python_files(paths):
        report.files_checked += 1
        violations, waivers = _analyze(_read_source(path), path)
        report.violations.extend(violations)
        report.waivers.extend(
            WaiverRecord(
                path=path, line=waiver.line, codes=waiver.codes,
                reason=waiver.reason, used=waiver.used,
            )
            for waiver in waivers
        )
    report.violations.sort()
    return report


def _apply_waivers(raw: List[Violation],
                   waivers: Iterable[Waiver]) -> List[Violation]:
    """Drop violations covered by an active waiver; mark those waivers used."""
    waiver_list = list(waivers)
    kept: List[Violation] = []
    for violation in raw:
        suppressed = False
        for waiver in waiver_list:
            if waiver.covers(violation.code, violation.line):
                waiver.used = True
                suppressed = True
        if not suppressed:
            kept.append(violation)
    return kept


def _waiver_hygiene(waivers: Iterable[Waiver], path: str) -> List[Violation]:
    """SEX001/002/003 findings for the file's waiver inventory."""
    findings: List[Violation] = []
    valid = set(known_codes())
    for waiver in waivers:
        if waiver.malformed or not waiver.reason.strip():
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX001",
                message=(
                    "waiver is malformed or missing its reason; write "
                    "'# repro: allow[SEXnnn] <why this is safe>'"
                ),
            ))
            continue
        unknown = [code for code in waiver.codes if code not in valid]
        for code in unknown:
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX002",
                message=f"waiver names unknown rule code {code}",
            ))
        if not waiver.used and not unknown:
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX003",
                message=(
                    "waiver suppresses nothing on its line or the next; "
                    "delete it (stale waivers hide future regressions)"
                ),
            ))
    return findings
