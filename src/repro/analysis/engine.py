"""The analysis engine: file discovery, rule dispatch, waiver resolution.

For every Python file the engine parses the source once, runs each
registered rule whose scope covers the file, and reconciles the raw hits
against the file's ``# repro: allow[...]`` waivers.  Waiver hygiene is
enforced here: empty reasons (``SEX001``), unknown codes (``SEX002``)
and stale waivers that suppress nothing (``SEX003``) are violations in
their own right, so the waiver inventory can never rot silently.

Path scoping: a file's *model path* is computed from the last ``repro``
component of its real path (``.../site-packages/repro/core/tree.py`` →
``repro/core/tree.py``), which makes fixture trees under a temp
directory scope exactly like the installed package.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .callgraph import (
    ProjectContext,
    context_from_modules,
    file_hash,
    project_digest,
)
from .diagnostics import AnalysisReport, Violation, WaiverRecord
from .rules import RULES, FlowRule, known_codes
from .waivers import Waiver, extract_waivers


def model_path(path: str) -> str:
    """The ``repro/...`` scoping path for ``path`` (see module docstring)."""
    parts = path.replace(os.sep, "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def _analyze(
    source: str,
    path: str,
    context: Optional[ProjectContext] = None,
    module: Optional[ast.Module] = None,
) -> Tuple[List[Violation], List[Waiver]]:
    """Rule dispatch + waiver resolution for one file's source.

    ``context`` carries the project-wide call summaries the flow rules
    consult; when absent (single-file entry points) a single-file
    context is built so taint still crosses calls within the file.
    ``module`` short-circuits re-parsing when the caller already holds
    the AST (the project pass parses every file exactly once).
    """
    relpath = model_path(path)
    waivers = extract_waivers(source)
    if module is None:
        try:
            module = ast.parse(source, filename=path)
        except SyntaxError as error:
            violation = Violation(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                code="SEX004",
                message=f"file could not be parsed: {error.msg}",
            )
            return [violation], waivers
    if context is None:
        context = context_from_modules({relpath: module})

    raw: List[Violation] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if not rule.applies_to(relpath):
            continue
        hits = (
            rule.check_flow(module, relpath, context)
            if isinstance(rule, FlowRule)
            else rule.check(module, relpath)
        )
        for hit in hits:
            raw.append(Violation(
                path=path, line=hit.line, column=hit.column,
                code=hit.code, message=hit.message,
            ))

    kept = _apply_waivers(raw, waivers)
    kept.extend(_waiver_hygiene(waivers, path))
    kept.sort()
    return kept, waivers


def analyze_source(source: str, path: str) -> List[Violation]:
    """Run every applicable rule over ``source``; returns net violations.

    ``path`` is used both for diagnostics and for rule scoping (via
    :func:`model_path`).  Waivers in the source are applied and their
    hygiene violations appended.
    """
    violations, _ = _analyze(source, path)
    return violations


def _read_source(path: str) -> str:
    # The checker is a dev-time tool reading *source code*, not graph
    # data, so it sits outside the block-I/O model it enforces.
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[SEX101] linted source files are outside the block-I/O model
        return handle.read()


def analyze_file(path: str) -> List[Violation]:
    """Analyze one file on disk (see :func:`analyze_source`)."""
    return analyze_source(_read_source(path), path)


def run_analysis(
    paths: Sequence[str], cache: Optional[ResultCache] = None
) -> AnalysisReport:
    """Analyze every Python file under ``paths`` into one report.

    The run is two-phase.  Phase one reads every source and, when a
    ``cache`` is given, replays entries keyed by (file hash, project
    digest, rules fingerprint) — an all-hit warm run never parses a
    single file.  Phase two parses the remaining files *once each*,
    builds one shared :class:`ProjectContext` (so flow rules see
    cross-file call summaries), and dispatches the rules.
    """
    report = AnalysisReport()
    files = list(iter_python_files(paths))
    sources: Dict[str, str] = {path: _read_source(path) for path in files}
    digest = project_digest(
        {model_path(path): source for path, source in sources.items()}
    )

    cached: Dict[str, Tuple[List[Violation], List[WaiverRecord]]] = {}
    if cache is not None:
        for path in files:
            entry = cache.load(file_hash(sources[path]), digest, path)
            if entry is not None:
                cached[path] = entry

    context: Optional[ProjectContext] = None
    modules: Dict[str, ast.Module] = {}
    if len(cached) != len(files):
        for path in files:
            try:
                modules[path] = ast.parse(sources[path], filename=path)
            except SyntaxError:
                pass  # reported as SEX004 by the per-file pass below
        context = context_from_modules(
            {model_path(path): module for path, module in modules.items()},
            digest=digest,
        )

    for path in files:
        report.files_checked += 1
        if path in cached:
            violations, waiver_records = cached[path]
        else:
            violations, waivers = _analyze(
                sources[path], path, context=context, module=modules.get(path)
            )
            waiver_records = [
                WaiverRecord(
                    path=path, line=waiver.line, codes=waiver.codes,
                    reason=waiver.reason, used=waiver.used,
                )
                for waiver in waivers
            ]
            if cache is not None:
                cache.store(
                    file_hash(sources[path]), digest, violations, waiver_records
                )
        report.violations.extend(violations)
        report.waivers.extend(waiver_records)
    report.violations.sort()
    return report


def _apply_waivers(raw: List[Violation],
                   waivers: Iterable[Waiver]) -> List[Violation]:
    """Drop violations covered by an active waiver; mark those waivers used."""
    waiver_list = list(waivers)
    kept: List[Violation] = []
    for violation in raw:
        suppressed = False
        for waiver in waiver_list:
            if waiver.covers(violation.code, violation.line):
                waiver.used = True
                suppressed = True
        if not suppressed:
            kept.append(violation)
    return kept


def _waiver_hygiene(waivers: Iterable[Waiver], path: str) -> List[Violation]:
    """SEX001/002/003 findings for the file's waiver inventory."""
    findings: List[Violation] = []
    valid = set(known_codes())
    for waiver in waivers:
        if waiver.malformed or not waiver.reason.strip():
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX001",
                message=(
                    "waiver is malformed or missing its reason; write "
                    "'# repro: allow[SEXnnn] <why this is safe>'"
                ),
            ))
            continue
        unknown = [code for code in waiver.codes if code not in valid]
        for code in unknown:
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX002",
                message=f"waiver names unknown rule code {code}",
            ))
        if not waiver.used and not unknown:
            findings.append(Violation(
                path=path, line=waiver.line, column=1, code="SEX003",
                message=(
                    "waiver suppresses nothing on its line or the next; "
                    "delete it (stale waivers hide future regressions)"
                ),
            ))
    return findings
