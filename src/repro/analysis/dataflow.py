"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

A generic worklist solver (:func:`solve_forward`) parameterized by a
:class:`ForwardAnalysis`: states join at control-flow merges, transfer
functions are applied per statement, and the solver iterates to a
fixpoint (states must form a finite-height lattice; every analysis here
uses finite sets keyed by variable names, so termination is structural).

Two analyses ship with the solver:

* :class:`ReachingDefinitions` — which ``(var, line)`` definition sites
  reach each point; the substrate for "accumulated across a loop
  back-edge" questions.
* :class:`TaintAnalysis` — a configurable taint lattice: an environment
  mapping variable names to frozensets of taint *kinds* (``"wallclock"``,
  ``"random"``, ``"environ"``, ``"id"``, ``"setiter"``, ``"scan"``, plus
  synthetic ``"param:N"`` kinds used for function summaries).  Sources,
  sanitizers, and call summaries are injected by the client, so the same
  engine powers the determinism rules, the materialization rules, and
  the call-graph summary construction.

States are immutable (dicts are copied on write in transfers); the
solver never mutates a state it has already stored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from .cfg import CFG, ENTRY, EXCEPTION, NORMAL  # noqa: F401

State = TypeVar("State")

#: Taint environment: variable name -> set of taint kinds.
TaintEnv = Dict[str, FrozenSet[str]]

EMPTY: FrozenSet[str] = frozenset()


class ForwardAnalysis(Generic[State]):
    """Client interface for :func:`solve_forward`."""

    def initial(self) -> State:
        """The state entering the function (at ``ENTRY``)."""
        raise NotImplementedError

    def join(self, left: State, right: State) -> State:
        """The least upper bound of two states (must be commutative)."""
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        """The state after executing ``stmt`` normally."""
        raise NotImplementedError

    def transfer_exception(self, stmt: ast.stmt, state: State) -> State:
        """The state flowing along ``stmt``'s *exception* out-edge.

        Defaults to the pre-state: when a statement raises partway, its
        effect (an assignment that never happened, a resource the failed
        call never returned) must not be assumed.  Analyses for which
        partial effects matter can override.
        """
        return state

    def equals(self, left: State, right: State) -> bool:
        """State equality (fixpoint detection); ``==`` by default."""
        return bool(left == right)


def solve_forward(
    cfg: CFG, analysis: "ForwardAnalysis[State]"
) -> Dict[int, State]:
    """Run ``analysis`` to a fixpoint; returns the IN state per node.

    The IN state of a node is the join over all its incoming edges of
    the corresponding out-state (normal or exceptional) of each
    predecessor.  Pseudo-nodes (``ENTRY``/``EXIT``/``RAISE``) have
    identity transfers.
    """
    order = cfg.rpo()
    position = {node: index for index, node in enumerate(order)}
    in_states: Dict[int, State] = {ENTRY: analysis.initial()}
    worklist: List[int] = list(order)
    pending: Set[int] = set(worklist)

    while worklist:
        worklist.sort(key=lambda node: position.get(node, len(position)))
        node = worklist.pop(0)
        pending.discard(node)
        state = in_states.get(node)
        if state is None:
            continue  # unreachable so far
        stmt = cfg.statements.get(node)
        if stmt is None:
            normal_out = state
            exception_out = state
        else:
            normal_out = analysis.transfer(stmt, state)
            exception_out = analysis.transfer_exception(stmt, state)
        for target, kind in cfg.succ.get(node, []):
            incoming = exception_out if kind == EXCEPTION else normal_out
            existing = in_states.get(target)
            merged = (
                incoming
                if existing is None
                else analysis.join(existing, incoming)
            )
            if existing is None or not analysis.equals(existing, merged):
                in_states[target] = merged
                if target not in pending:
                    pending.add(target)
                    worklist.append(target)
    return in_states


# ----------------------------------------------------------------------
# Reaching definitions.


@dataclass(frozen=True)
class Definition:
    """One definition site: ``var`` assigned at ``line``."""

    var: str
    line: int


class ReachingDefinitions(ForwardAnalysis[FrozenSet[Definition]]):
    """Classic reaching definitions over simple-name targets."""

    def initial(self) -> FrozenSet[Definition]:
        return frozenset()

    def join(
        self, left: FrozenSet[Definition], right: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        return left | right

    def transfer(
        self, stmt: ast.stmt, state: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        killed = set(assigned_names(stmt))
        if not killed:
            return state
        line = getattr(stmt, "lineno", 0)
        survivors = {d for d in state if d.var not in killed}
        survivors.update(Definition(var, line) for var in killed)
        return frozenset(survivors)


def assigned_names(stmt: ast.stmt) -> Iterator[str]:
    """Simple names (re)bound by ``stmt`` (tuple targets included)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        ]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id


# ----------------------------------------------------------------------
# Taint.


@dataclass
class TaintConfig:
    """What taints, what cleans, and how calls behave.

    Attributes:
        call_sources: called-name → taint kinds (``time.perf_counter`` →
            ``{"wallclock"}``); names are dotted best-effort renderings
            of the call target (see :func:`dotted_name`).
        attribute_sources: dotted value reads that taint without a call
            (``os.environ`` → ``{"environ"}``).
        sanitizers: call names whose *result* is clean regardless of
            argument taint (``sorted`` launders set-iteration order).
        summaries: bare callee name → :class:`CallSummary` describing
            taint through project-local calls.
        set_iteration: whether iterating a set-typed value taints the
            loop variable with ``"setiter"``.
    """

    call_sources: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    attribute_sources: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    sanitizers: FrozenSet[str] = frozenset({"sorted", "len", "min", "max", "sum"})
    summaries: Mapping[str, "CallSummary"] = field(default_factory=dict)
    set_iteration: bool = True


@dataclass(frozen=True)
class CallSummary:
    """How taint flows through one project-local function.

    Attributes:
        returns: kinds the return value carries regardless of arguments.
        passthrough: argument positions whose taint reaches the return
            value.
        returns_resource: the return value is (or contains) a live
            resource the caller becomes responsible for.
    """

    returns: FrozenSet[str] = EMPTY
    passthrough: FrozenSet[int] = frozenset()
    returns_resource: bool = False

    def merge(self, other: "CallSummary") -> "CallSummary":
        """Union of two summaries (same-name overloads join soundly)."""
        return CallSummary(
            returns=self.returns | other.returns,
            passthrough=self.passthrough | other.passthrough,
            returns_resource=self.returns_resource or other.returns_resource,
        )


def dotted_name(expr: ast.expr) -> str:
    """Best-effort dotted rendering (``a.b.c``) of a name/attribute."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if parts:
        return "." + ".".join(reversed(parts))
    return ""


class TaintAnalysis(ForwardAnalysis[TaintEnv]):
    """Taint propagation over simple-name environments."""

    def __init__(
        self, config: TaintConfig, seed: Optional[TaintEnv] = None
    ) -> None:
        self.config = config
        self.seed: TaintEnv = dict(seed or {})

    def initial(self) -> TaintEnv:
        return dict(self.seed)

    def join(self, left: TaintEnv, right: TaintEnv) -> TaintEnv:
        if left == right:
            return left
        merged = dict(left)
        for var, kinds in right.items():
            merged[var] = merged.get(var, EMPTY) | kinds
        return merged

    def equals(self, left: TaintEnv, right: TaintEnv) -> bool:
        return left == right

    # -- expression evaluation -----------------------------------------
    def taint_of(self, expr: Optional[ast.expr], env: TaintEnv) -> FrozenSet[str]:
        """The taint kinds carried by ``expr`` under ``env``."""
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            return env.get(expr.id, EMPTY)
        if isinstance(expr, ast.Call):
            return self.call_taint(expr, env)
        if isinstance(expr, ast.Attribute):
            name = dotted_name(expr)
            source = self.config.attribute_sources.get(name)
            if source:
                return source
            return self.taint_of(expr.value, env)
        if isinstance(expr, (ast.Await, ast.Starred)):
            return self.taint_of(expr.value, env)
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value, env) | self.taint_of(
                expr.slice, env
            )
        if isinstance(expr, ast.BinOp):
            return self.taint_of(expr.left, env) | self.taint_of(
                expr.right, env
            )
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand, env)
        if isinstance(expr, ast.BoolOp):
            kinds = EMPTY
            for value in expr.values:
                kinds |= self.taint_of(value, env)
            return kinds
        if isinstance(expr, ast.Compare):
            return EMPTY  # comparisons yield order-free booleans
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body, env) | self.taint_of(
                expr.orelse, env
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            kinds = EMPTY
            for element in expr.elts:
                kinds |= self.taint_of(element, env)
            return kinds
        if isinstance(expr, ast.Dict):
            kinds = EMPTY
            for key in expr.keys:
                if key is not None:
                    kinds |= self.taint_of(key, env)
            for value in expr.values:
                kinds |= self.taint_of(value, env)
            return kinds
        if isinstance(expr, ast.JoinedStr):
            kinds = EMPTY
            for value in expr.values:
                kinds |= self.taint_of(value, env)
            return kinds
        if isinstance(expr, ast.FormattedValue):
            return self.taint_of(expr.value, env)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.comprehension_taint(expr.elt, expr.generators, env)
        if isinstance(expr, ast.DictComp):
            return self.comprehension_taint(
                expr.value, expr.generators, env
            ) | self.comprehension_taint(expr.key, expr.generators, env)
        return EMPTY

    def comprehension_taint(
        self,
        element: ast.expr,
        generators: List[ast.comprehension],
        env: TaintEnv,
    ) -> FrozenSet[str]:
        local = dict(env)
        for gen in generators:
            iter_kinds = self.taint_of(gen.iter, local)
            if self.config.set_iteration and is_set_expr(gen.iter, local):
                iter_kinds |= frozenset({"setiter"})
            for node in ast.walk(gen.target):
                if isinstance(node, ast.Name):
                    local[node.id] = iter_kinds
        return self.taint_of(element, local)

    def call_taint(self, call: ast.Call, env: TaintEnv) -> FrozenSet[str]:
        name = dotted_name(call.func)
        bare = name.rsplit(".", 1)[-1]
        if bare in self.config.sanitizers:
            return EMPTY
        kinds = EMPTY
        source = self.config.call_sources.get(name)
        if source:
            kinds |= source
        summary = self.config.summaries.get(bare)
        if summary is not None:
            kinds |= summary.returns
            for position in summary.passthrough:
                if position < len(call.args):
                    kinds |= self.taint_of(call.args[position], env)
        else:
            # Unknown callee: conservatively, taint flows through the
            # arguments into the result (a pure-ish default that keeps
            # wrapper helpers like float()/str() transparent).
            for arg in call.args:
                kinds |= self.taint_of(arg, env)
            for keyword in call.keywords:
                kinds |= self.taint_of(keyword.value, env)
            # A method call on a tainted receiver yields taint.
            if isinstance(call.func, ast.Attribute):
                kinds |= self.taint_of(call.func.value, env)
        return kinds

    # -- transfer -------------------------------------------------------
    def transfer(self, stmt: ast.stmt, state: TaintEnv) -> TaintEnv:
        if isinstance(stmt, ast.Assign):
            kinds = self.taint_of(stmt.value, state)
            return self._bind_targets(stmt.targets, kinds, state)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return state
            kinds = self.taint_of(stmt.value, state)
            return self._bind_targets([stmt.target], kinds, state)
        if isinstance(stmt, ast.AugAssign):
            kinds = self.taint_of(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                existing = state.get(stmt.target.id, EMPTY)
                if kinds | existing != existing:
                    updated = dict(state)
                    updated[stmt.target.id] = existing | kinds
                    return updated
            return state
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            kinds = self.taint_of(stmt.iter, state)
            if self.config.set_iteration and is_set_expr(stmt.iter, state):
                kinds |= frozenset({"setiter"})
            return self._bind_targets([stmt.target], kinds, state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            updated = state
            for item in stmt.items:
                if item.optional_vars is not None:
                    kinds = self.taint_of(item.context_expr, state)
                    updated = self._bind_targets(
                        [item.optional_vars], kinds, updated
                    )
            return updated
        return state

    def _bind_targets(
        self, targets: List[ast.expr], kinds: FrozenSet[str], state: TaintEnv
    ) -> TaintEnv:
        names = [
            node.id
            for target in targets
            for node in ast.walk(target)
            if isinstance(node, ast.Name)
        ]
        if not names:
            return state
        updated = dict(state)
        for name in names:
            updated[name] = kinds
        return updated


#: Names whose calls build sets (for set-iteration detection).
_SET_BUILDERS = ("set", "frozenset")


def is_set_expr(expr: ast.expr, env: TaintEnv) -> bool:
    """Whether ``expr`` is syntactically set-typed (literal/ctor/comp).

    This is a *local* type guess, not inference: variables are tracked
    through the special ``"settype"`` taint kind that set-building
    expressions deposit (see :func:`set_type_kinds`).
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in _SET_BUILDERS:
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.Sub)
    ):
        # Set algebra on set operands stays a set; approximate by either
        # side looking set-typed.
        return is_set_expr(expr.left, env) or is_set_expr(expr.right, env)
    if isinstance(expr, ast.Name):
        return "settype" in env.get(expr.id, EMPTY)
    return False


def set_type_kinds(expr: ast.expr, env: TaintEnv) -> FrozenSet[str]:
    """``{"settype"}`` when ``expr`` evaluates to a set, else empty."""
    if is_set_expr(expr, env):
        return frozenset({"settype"})
    return EMPTY
