"""``python -m repro.analysis`` — the conformance checker CLI.

Usage::

    python -m repro.analysis src                 # lint a tree, text output
    python -m repro.analysis src --format json   # machine-readable report
    python -m repro.analysis --list-rules        # rule inventory

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage or I/O
error.  The CI ``lint-and-types`` job runs the ``src`` form and fails
the build on any nonzero exit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .engine import run_analysis
from .rules import META_CODES, RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST conformance checker for the semi-external model: I/O "
            "containment, memory discipline, determinism, error hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (e.g. src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule inventory and exit",
    )
    return parser


def _render_rule_list() -> str:
    lines = ["code    name                                    summary", "-" * 78]
    for code in sorted(META_CODES):
        lines.append(f"{code}  {'(engine meta rule)':38s}  {META_CODES[code]}")
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name:38s}  {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: at least one path is required (e.g. 'src')",
              file=sys.stderr)
        return 2

    try:
        report = run_analysis(args.paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render_text())
    except BrokenPipeError:
        # A downstream consumer (head, less) closed the pipe early; park
        # stdout on devnull so interpreter shutdown doesn't re-raise.
        # repro: allow[SEX102] re-points fd 1 at devnull; no data I/O
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if report.ok else 1
