"""``python -m repro.analysis`` — the conformance checker CLI.

Usage::

    python -m repro.analysis src                  # lint a tree, text output
    python -m repro.analysis src --format json    # machine-readable report
    python -m repro.analysis src --format sarif   # SARIF 2.1.0 document
    python -m repro.analysis src --cache-dir .analysis-cache   # warm reruns
    python -m repro.analysis --list-rules         # rule inventory

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage or I/O
error.  The CI ``lint-and-types`` job runs the ``src`` form and fails
the build on any nonzero exit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .cache import ResultCache
from .engine import run_analysis
from .rules import META_CODES, RULES
from .sarif import sarif_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST conformance checker for the semi-external model: I/O "
            "containment, memory discipline, determinism, error hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (e.g. src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=(
            "enable the content-hash result cache in DIR; warm reruns "
            "replay unchanged files without re-analyzing them"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir and analyze everything from scratch",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule inventory and exit",
    )
    return parser


def _render_rule_list() -> str:
    lines = ["code    name                                    summary", "-" * 78]
    for code in sorted(META_CODES):
        lines.append(f"{code}  {'(engine meta rule)':38s}  {META_CODES[code]}")
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name:38s}  {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: at least one path is required (e.g. 'src')",
              file=sys.stderr)
        return 2

    cache = None
    if args.cache_dir and not args.no_cache:
        try:
            cache = ResultCache(args.cache_dir)
        except OSError as error:
            print(f"error: cannot open cache directory: {error}",
                  file=sys.stderr)
            return 2

    try:
        report = run_analysis(args.paths, cache=cache)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        elif args.format == "sarif":
            print(json.dumps(sarif_report(report), indent=2, sort_keys=True))
        else:
            print(report.render_text())
    except BrokenPipeError:
        # A downstream consumer (head, less) closed the pipe early; park
        # stdout on devnull so interpreter shutdown doesn't re-raise.
        # repro: allow[SEX102] re-points fd 1 at devnull; no data I/O
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if report.ok else 1
