"""Shared result types and run context for the semi-external algorithms.

Every algorithm takes a :class:`~repro.graph.disk_graph.DiskGraph` plus a
memory budget ``M`` (in elements, ``k·n <= M``) and produces a
:class:`RunResult`: the spanning tree it built, the node order it
induces, and the measured costs (simulated block I/Os, edge-file passes).
The DFS family returns the :class:`DFSResult` specialization (divisions,
recursion depth); sibling traversals such as semi-external BFS return
their own subclasses (:class:`BFSResult` adds the level array) while the
context, budget, tracer, and I/O accounting stay shared.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from ..errors import MemoryBudgetExceeded
from ..graph.disk_graph import DiskGraph
from ..obs import NULL_TRACER, MemorySink, SpanEvent, Tracer, legacy_trace_entries
from ..storage.buffer_pool import TREE_NODE_COST, MemoryBudget
from ..storage.io_stats import IOSnapshot
from ..core.tree import SpanningTree, VirtualNodeAllocator
from ..core.validation import real_preorder

#: Whether the ``RunResult.trace`` deprecation has been announced (the
#: property warns once per process, not once per access).
_TRACE_DEPRECATION_WARNED = False


@dataclass
class RunResult:
    """The algorithm-neutral output of one semi-external run.

    Attributes:
        tree: the computed spanning tree (rooted at the virtual node
            ``γ``).  For DFS this is the DFS-Tree; for BFS the BFS-tree.
        order: total order over the real nodes the run induces (the DFS
            total order, or the level-sorted BFS visit order).
        algorithm: name of the algorithm that produced the result.
        io: simulated block I/Os consumed by the run.  ``io.reads`` /
            ``io.writes`` are *logical* charges — identical with and
            without injected faults; ``io.retries``, ``io.faults`` and
            ``io.checksum_failures`` report what the resilience layer
            absorbed (see :attr:`retries` / :attr:`faults`).
        elapsed_seconds: wall-clock time of the run.
        passes: full or partial edge-file scans (restructure passes for
            DFS, relaxation passes for BFS).
        kernel: name of the columnar kernel backend the run executed on
            (``python`` or ``numpy``); benchmarks record it so a result
            is attributable to a code path.
        block_codec: edge-block codec the run wrote files with
            (``fixed32`` or ``delta-varint``); like :attr:`kernel`, it
            changes costs only, never the tree, and benchmarks record it.
        details: free-form per-algorithm counters.
        events: the run's completed :class:`~repro.obs.SpanEvent` records
            (populated when the run was given a real
            :class:`~repro.obs.Tracer`; empty under the null tracer).
            The deprecated :attr:`trace` property renders these in the
            old list-of-dicts shape.
    """

    tree: SpanningTree
    order: List[int]
    algorithm: str
    io: IOSnapshot
    elapsed_seconds: float
    passes: int = 0
    kernel: str = "python"
    block_codec: str = "fixed32"
    details: Dict[str, int] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    #: Path of the artifact version directory the run sealed its tree
    #: into (``<device>/artifacts/<name>/vNNNNNN``), when it sealed one.
    #: Open it with ``ArtifactStore(os.path.dirname(os.path.dirname(p)))``
    #: or republish with full query columns via ``seal_result``.
    artifact_ref: Optional[str] = None

    @property
    def trace(self) -> List[Dict[str, object]]:
        """Deprecated legacy view of :attr:`events` (list of dicts).

        Renders the recorded span events in the shape the removed
        ``RunContext.record()`` mechanism produced; use :attr:`events`
        (typed, with I/O and timing deltas) instead.  See docs/API.md
        for the migration table.
        """
        global _TRACE_DEPRECATION_WARNED
        if not _TRACE_DEPRECATION_WARNED:
            _TRACE_DEPRECATION_WARNED = True
            warnings.warn(
                "DFSResult.trace is deprecated; use DFSResult.events",
                DeprecationWarning,
                stacklevel=2,
            )
        return legacy_trace_entries(self.events)

    @property
    def virtual_root(self) -> Optional[int]:
        """The ``γ`` node the result tree is rooted at."""
        return self.tree.root

    @property
    def retries(self) -> int:
        """Extra block-transfer attempts the device needed (0 fault-free)."""
        return self.io.retries

    @property
    def faults(self) -> int:
        """Block-level faults injected/observed during the run."""
        return self.io.faults

    @property
    def compression_ratio(self) -> float:
        """Raw-over-stored edge bytes moved by the run (1.0 = no gain)."""
        return self.io.compression_ratio

    def position_of(self) -> Dict[int, int]:
        """Map node -> position in the result's total order."""
        return {node: index for index, node in enumerate(self.order)}


@dataclass
class DFSResult(RunResult):
    """A :class:`RunResult` from the DFS family.

    Attributes:
        divisions: successful divisions performed (divide & conquer only).
        max_depth: deepest recursion level reached (divide & conquer only).
    """

    divisions: int = 0
    max_depth: int = 0


@dataclass
class BFSResult(RunResult):
    """A :class:`RunResult` from semi-external BFS.

    Attributes:
        levels: per-node BFS level indexed by node id; ``None`` exactly
            for the nodes unreachable from the start node.
    """

    levels: List[Optional[int]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Largest finite level (the start node's eccentricity); 0 when
        nothing was reached."""
        finite = [level for level in self.levels if level is not None]
        return max(finite) if finite else 0

    @property
    def reached_count(self) -> int:
        """How many nodes the traversal reached (start node included)."""
        return sum(1 for level in self.levels if level is not None)


#: Result specialization a :meth:`RunContext.finish_result` call builds.
ResultT = TypeVar("ResultT", bound=RunResult)


class RunContext:
    """Mutable bookkeeping shared by one algorithm invocation.

    The context owns the run's observability wiring: it binds the given
    :class:`~repro.obs.Tracer` (or the shared null tracer) to the
    device's I/O counter, attaches a private in-memory sink so
    :attr:`DFSResult.events` is always populated, and installs the
    tracer on the device for the duration of the run (so storage-layer
    code can count retries against it).  Runners must call
    :meth:`release` when done — :meth:`finish` does it for them on the
    success path; error paths should use ``try/finally``.
    """

    def __init__(
        self,
        graph: DiskGraph,
        memory: int,
        algorithm: str,
        deadline_seconds: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        workers: int = 1,
        block_codec: Optional[str] = None,
        worker_boundary: str = "shm",
    ) -> None:
        minimum = TREE_NODE_COST * graph.node_count
        if memory < minimum:
            raise MemoryBudgetExceeded(
                f"semi-external model needs M >= {TREE_NODE_COST}*|V| = {minimum}; "
                f"got M = {memory}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if worker_boundary not in ("shm", "pickle"):
            raise ValueError(
                f"worker_boundary must be 'shm' or 'pickle', got "
                f"{worker_boundary!r}"
            )
        self.graph = graph
        self.memory = memory
        self.algorithm = algorithm
        self.workers = workers
        #: How bulk data crosses the pool's process line: ``"shm"`` moves
        #: spanning trees as framed int32 columns in shared memory (with a
        #: per-part pickle fallback on shm-hostile hosts), ``"pickle"``
        #: forces the legacy fully-pickled payloads.  Irrelevant when
        #: ``workers == 1``.
        self.worker_boundary = worker_boundary
        self.budget = MemoryBudget(memory)
        self.allocator = VirtualNodeAllocator(graph.node_count)
        self.passes = 0
        self.divisions = 0
        self.max_depth = 0
        self.details: Dict[str, int] = {}
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self._events = MemorySink()
        self.tracer.attach(self._events)
        self.tracer.bind(graph.device.stats)
        self._prior_device_tracer = graph.device.tracer
        graph.device.tracer = self.tracer
        # Install the run's codec on the device (mirroring the tracer
        # slot): files written during the run — part files, sort runs,
        # rewrites — use it, and release() restores the prior setting.
        # ``None`` keeps whatever the device was configured with.
        self._prior_device_codec = graph.device.block_codec
        if block_codec is not None:
            from ..storage.serialization import resolve_block_codec

            graph.device.block_codec = resolve_block_codec(block_codec)
        #: The codec in effect for this run (for :attr:`DFSResult.block_codec`).
        self.block_codec = graph.device.block_codec
        self._released = False
        self._start_io = graph.device.stats.snapshot()
        # repro: allow[SEX302] observational timing metric; never feeds tree construction
        self._start_time = time.perf_counter()
        self._deadline = (
            None
            if deadline_seconds is None
            else self._start_time + deadline_seconds
        )

    def check_deadline(self) -> None:
        """Raise :class:`ConvergenceError` when the wall-clock limit passed.

        The cooperative analogue of the paper's 8-hour experiment timeout;
        checked once per restructure pass.
        """
        # repro: allow[SEX302] deadline aborts with ConvergenceError; it never alters the result tree
        if self._deadline is not None and time.perf_counter() > self._deadline:
            from ..errors import ConvergenceError

            raise ConvergenceError(
                f"{self.algorithm} exceeded its wall-clock deadline"
            )

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock budget left before the deadline (``None`` = no limit).

        The parallel part scheduler forwards this remainder to each worker
        process so a part's recursion honours the same overall deadline.
        """
        if self._deadline is None:
            return None
        # repro: allow[SEX302] deadline bookkeeping; never alters the result tree
        return max(0.0, self._deadline - time.perf_counter())

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a free-form counter."""
        self.details[key] = self.details.get(key, 0) + amount

    def release(self) -> None:
        """Detach the run's tracer wiring (idempotent).

        Restores the device's previous tracer, detaches the private
        event sink, and unbinds the I/O counter, so an abandoned context
        (``ConvergenceError``, deadline) cannot keep attributing another
        run's I/O to this one.
        """
        if self._released:
            return
        self._released = True
        self.graph.device.tracer = self._prior_device_tracer
        self.graph.device.block_codec = self._prior_device_codec
        self.tracer.detach(self._events)
        self.tracer.bind(None)

    def finish_result(
        self,
        factory: Callable[..., ResultT],
        tree: SpanningTree,
        order: Optional[List[int]] = None,
        **extra_fields: object,
    ) -> ResultT:
        """Package the final tree into a :class:`RunResult` subclass.

        Fills every algorithm-neutral field from the context (I/O window,
        elapsed time, pass count, kernel/codec, counters, events) and
        releases the tracer wiring; ``extra_fields`` carry the
        specialization's own fields (``divisions=...``, ``levels=...``).
        ``order`` defaults to the tree's non-virtual preorder.
        """
        io = self.graph.device.stats.snapshot() - self._start_io
        # repro: allow[SEX302] observational timing metric; never feeds tree construction
        elapsed = time.perf_counter() - self._start_time
        events = list(self._events.events)
        self.release()
        return factory(
            tree=tree,
            order=real_preorder(tree) if order is None else order,
            algorithm=self.algorithm,
            io=io,
            elapsed_seconds=elapsed,
            passes=self.passes,
            kernel=self.graph.device.kernel.name,
            block_codec=self.block_codec,
            details=dict(self.details),
            events=events,
            **extra_fields,
        )

    def finish(self, tree: SpanningTree) -> DFSResult:
        """Package the final tree into a :class:`DFSResult`."""
        return self.finish_result(
            DFSResult, tree,
            divisions=self.divisions, max_depth=self.max_depth,
        )


def initial_star_tree(
    graph: DiskGraph,
    allocator: VirtualNodeAllocator,
    start: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
) -> SpanningTree:
    """The paper's initial spanning tree: virtual ``γ`` over all nodes.

    Args:
        start: optional start node for the DFS; it becomes ``γ``'s first
            child so the search begins there (the Exp-6 treatment).
        order: optional full restart-priority order for ``γ``'s children
            (mutually exclusive with ``start``).  The baselines preserve
            this priority across restructuring — the property Kosaraju's
            second pass needs.
    """
    gamma = allocator.allocate()
    node_ids: Sequence[int] = range(graph.node_count)
    if order is not None:
        if start is not None:
            raise ValueError("pass either start or order, not both")
        return SpanningTree.initial_star(node_ids, gamma, order=order)
    if start is None:
        return SpanningTree.initial_star(node_ids, gamma)
    if not 0 <= start < graph.node_count:
        raise ValueError(f"start node {start} out of range")
    first = [start] + [node for node in node_ids if node != start]
    return SpanningTree.initial_star(node_ids, gamma, order=first)


def default_max_passes(node_count: int) -> int:
    """Pass cap for the restructuring heuristics.

    Sibeyn et al.'s procedures are heuristics with an ``n``-pass worst case;
    in practice they converge in a handful of passes.  The cap exists so a
    pathological input raises :class:`~repro.errors.ConvergenceError`
    instead of looping for hours (the paper used an 8-hour timeout).
    """
    return 2 * node_count + 16
