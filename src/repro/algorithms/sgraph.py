"""The summary graph Σ and the S-edge machinery (Section 6.1).

``Σ`` captures the relationships between divided subgraphs without touching
the full graph again: its nodes are the nodes of ``T_0``, its edges are
``T_0``'s tree edges plus the **S-edges** — cross-edges pushed up the tree
(Definition 6.2/6.3) until both endpoints are children of their LCA.  By
Theorem 6.1 a root-based division is DFS-preservable iff ``Σ`` is a DAG;
when it is not, the **node contraction operation** (SCC-aware division)
merges each multi-node SCC of ``Σ`` under a fresh virtual node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import InvalidDivisionError
from ..core.classify import IntervalIndex
from ..core.inmemory import tarjan_scc, topological_sort
from ..core.tree import SpanningTree, VirtualNodeAllocator


class SummaryGraph:
    """Σ: a small in-memory digraph over (a subset of) ``V(T_0)``."""

    def __init__(self) -> None:
        self.nodes: Set[int] = set()
        self.adjacency: Dict[int, Set[int]] = {}

    def add_node(self, node: int) -> None:
        if node not in self.nodes:
            self.nodes.add(node)
            self.adjacency[node] = set()

    def add_edge(self, source: int, target: int) -> None:
        """Add edge (deduplicated); both endpoints must be Σ nodes."""
        if source not in self.nodes or target not in self.nodes:
            raise InvalidDivisionError(
                f"S-edge ({source}, {target}) endpoint outside Σ's node set"
            )
        if source != target:
            self.adjacency[source].add(target)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.adjacency.values())

    def edges(self) -> Iterable[Tuple[int, int]]:
        for source, targets in self.adjacency.items():
            for target in targets:
                yield (source, target)

    # ------------------------------------------------------------------
    def sccs(self) -> List[List[int]]:
        """Strongly connected components (reverse topological order)."""
        ordered = {node: sorted(targets) for node, targets in self.adjacency.items()}
        return tarjan_scc(sorted(self.nodes), ordered)

    def is_dag(self) -> bool:
        """Whether Σ is a DAG (Theorem 6.1's validity condition)."""
        return all(len(component) == 1 for component in self.sccs())

    def topological_order(self) -> List[int]:
        """A deterministic topological order of Σ (must be a DAG)."""
        ordered = {node: sorted(targets) for node, targets in self.adjacency.items()}
        return topological_sort(self.nodes, ordered)

    def reverse_topological_order(
        self, priority: Optional[Dict[int, int]] = None
    ) -> List[int]:
        """A deterministic *reverse* topological order of Σ (must be a DAG).

        Every S-edge ``a -> b`` places ``b`` before ``a``, which is exactly
        the sibling order the merge step needs (potential forward-cross
        S-edges become backward-cross).  ``priority`` ranks the nodes among
        which the DAG leaves the order free — the merge passes the current
        sibling order so an unconstrained start-node hint survives division
        and reassembly instead of being re-sorted by node id.
        """
        reversed_adjacency: Dict[int, List[int]] = {node: [] for node in self.nodes}
        for source, targets in self.adjacency.items():
            for target in targets:
                reversed_adjacency[target].append(source)
        for targets_list in reversed_adjacency.values():
            targets_list.sort()
        return topological_sort(self.nodes, reversed_adjacency, priority=priority)

    def contract(self, members: Iterable[int], virtual_node: int) -> None:
        """Node contraction: replace ``members`` by ``virtual_node``.

        In-edges from outside the set are redirected to ``virtual_node``;
        out-edges likewise; edges internal to the set disappear.
        """
        member_set = set(members)
        if not member_set <= self.nodes:
            raise InvalidDivisionError("contraction members must be Σ nodes")
        self.add_node(virtual_node)
        incoming: Set[int] = set()
        outgoing: Set[int] = set()
        for member in member_set:
            for target in self.adjacency[member]:
                if target not in member_set:
                    outgoing.add(target)
        for node in self.nodes:
            if node in member_set or node == virtual_node:
                continue
            targets = self.adjacency[node]
            if targets & member_set:
                self.adjacency[node] = {t for t in targets if t not in member_set}
                incoming.add(node)
        for node in incoming:
            self.adjacency[node].add(virtual_node)
        for target in outgoing:
            if target != virtual_node:
                self.adjacency[virtual_node].add(target)
        for member in member_set:
            self.nodes.discard(member)
            self.adjacency.pop(member, None)

    def restrict(self, keep: Set[int]) -> None:
        """Drop every node (and incident edge) outside ``keep``."""
        drop = self.nodes - keep
        for node in drop:
            self.nodes.discard(node)
            self.adjacency.pop(node, None)
        for node in self.nodes:
            self.adjacency[node] &= self.nodes

    def __repr__(self) -> str:
        return f"SummaryGraph(nodes={len(self.nodes)}, edges={self.edge_count})"


def s_edge_endpoints(
    tree: SpanningTree, index: IntervalIndex, u: int, v: int
) -> Tuple[int, int, int]:
    """The S-edge of cross-edge ``(u, v)`` plus the LCA (Definition 6.3).

    Pushes each endpoint up while its parent is not an ancestor of the
    other endpoint; at the fixpoint both are children of the LCA, so the
    S-edge always connects two siblings.

    Returns:
        ``(a, b, lca)`` where ``(a, b)`` is the S-edge.
    """
    parent = tree.parent
    is_ancestor = index.is_ancestor
    a = u
    while True:
        p = parent[a]
        if p is None or is_ancestor(p, v):
            break
        a = p
    b = v
    while True:
        p = parent[b]
        if p is None or is_ancestor(p, u):
            break
        b = p
    lca = parent[a]
    if lca is None or parent[b] != lca:
        raise InvalidDivisionError(
            f"({u}, {v}) is not a cross edge: pushup did not meet at an LCA"
        )
    return a, b, lca


def contract_sigma_sccs(
    sigma: SummaryGraph,
    tree: SpanningTree,
    allocator: VirtualNodeAllocator,
) -> List[Tuple[int, List[int]]]:
    """Apply the SCC-aware node contraction to ``Σ`` *and* the tree.

    Every multi-node SCC of Σ consists of siblings in the tree (S-edges
    only ever connect siblings, and tree edges cannot close a cycle), so
    contraction re-parents the members under a fresh virtual node that
    takes their place.

    Returns:
        ``[(virtual_node, members_in_sibling_order), ...]``.
    """
    contractions: List[Tuple[int, List[int]]] = []
    for component in sigma.sccs():
        if len(component) <= 1:
            continue
        members = set(component)
        parents = {tree.parent[m] for m in members}
        if len(parents) != 1 or None in parents:
            raise InvalidDivisionError(
                f"Σ SCC members {sorted(members)} are not siblings "
                f"(parents: {parents})"
            )
        (common_parent,) = parents
        siblings = tree.child_list(common_parent)
        ordered = [c for c in siblings if c in members]
        virtual = allocator.allocate()
        tree.add_node(virtual, virtual=True)
        tree.attach(virtual, common_parent)
        for member in ordered:
            tree.reattach(member, virtual)
        # The virtual takes the *first member's* sibling slot (attach
        # appended it at the end): sibling order encodes restart priority —
        # the start-node hint in particular — and a contraction that always
        # sank the absorbed group to the back would silently demote it.
        placed = [virtual if c == ordered[0] else c
                  for c in siblings if c == ordered[0] or c not in members]
        tree.reorder_children(common_parent, placed)
        sigma.contract(members, virtual)
        contractions.append((virtual, ordered))
    return contractions
