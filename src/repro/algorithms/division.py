"""The division core shared by Divide-Star and Divide-TD.

Both Algorithm 3 and Algorithm 4 follow the same skeleton — they differ
only in the cut they carve out of the spanning tree (the root's children
versus a budgeted multi-level cut-tree):

1. **Collect S-edges** (one scan): for each cross-edge whose LCA is an
   expanded cut node, push it up to its sibling S-edge and add it to Σ.
2. **Contract Σ's SCCs** (Theorem 6.1): fresh virtual nodes absorb each
   multi-node SCC, in Σ and in the tree alike.
3. **Build T_0 top-down**: expandable cut nodes contribute their children;
   contraction virtuals stay leaves (their subgraphs cannot be divided
   further at this level).  Σ is restricted to ``V(T_0)``.
4. **Materialize the parts** (one scan + part writes): every edge with both
   endpoints in the same leaf subtree is routed to that part's edge file.

Step 4 is skipped when the division is invalid (fewer than two parts), so a
failed attempt costs one scan, not two.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ReproError
from ..kernels import resolve_kernel
from ..obs import NULL_TRACER, Tracer
from ..storage.edge_file import EdgeFile, PartitionWriter
from ..core.classify import IntervalIndex
from ..core.tree import SpanningTree, VirtualNodeAllocator
from .sgraph import SummaryGraph, contract_sigma_sccs, s_edge_endpoints


@dataclass
class Part:
    """One divided subgraph ``G_i`` (``i >= 1``) with its subtree ``T_i``."""

    index: int
    root: int
    tree: SpanningTree
    real_nodes: List[int]  # non-virtual nodes of the part
    edge_file: EdgeFile

    @property
    def size(self) -> int:
        """``|G_i| = |V_i| + |E_i|``."""
        return len(self.real_nodes) + self.edge_file.edge_count


@dataclass
class Division:
    """A valid root-based division: ``T_0``, Σ, and the parts."""

    t0: SpanningTree
    sigma: SummaryGraph
    parts: List[Part]
    contractions: int

    @property
    def part_count(self) -> int:
        return len(self.parts)


def _extract_subtree(tree: SpanningTree, root: int) -> Tuple[SpanningTree, List[int]]:
    """Copy the subtree rooted at ``root`` into a standalone tree."""
    subtree = SpanningTree()
    real_nodes: List[int] = []
    subtree.add_node(root, virtual=tree.is_virtual(root))
    subtree.root = root
    if not tree.is_virtual(root):
        real_nodes.append(root)
    for node in tree.preorder(start=root):
        if node == root:
            continue
        subtree.add_node(node, virtual=tree.is_virtual(node))
        subtree.attach(node, tree.parent[node])
        if not tree.is_virtual(node):
            real_nodes.append(node)
    return subtree, real_nodes


def _simulate_part_count(
    tree: SpanningTree,
    sigma: SummaryGraph,
    cut_nodes: Set[int],
    expanded: Set[int],
) -> int:
    """The number of parts the division would produce, without mutating.

    Mirrors the top-down ``T_0`` construction with every multi-node SCC of
    Σ treated as a single (contracted) leaf.
    """
    group_of: Dict[int, int] = {}
    for group_id, component in enumerate(sigma.sccs()):
        if len(component) > 1:
            for node in component:
                group_of[node] = group_id
    leaves = 0
    seen_groups: Set[int] = set()
    root = tree.root
    queue = [root]
    while queue:
        node = queue.pop()
        group = group_of.get(node)
        if group is not None:
            if group not in seen_groups:
                seen_groups.add(group)
                leaves += 1
            continue
        if node != root and node not in expanded:
            leaves += 1
            continue
        children = [child for child in tree.children(node) if child in cut_nodes]
        if not children:
            leaves += 1 if node != root else 0
            continue
        queue.extend(children)
    return leaves


def divide_with_cut(
    edge_file: EdgeFile,
    tree: SpanningTree,
    cut_nodes: Set[int],
    expanded: Set[int],
    allocator: VirtualNodeAllocator,
    tracer: Tracer = NULL_TRACER,
) -> Optional[Division]:
    """Run division steps 1–4 for a given cut.  ``None`` when invalid.

    Mutates ``tree`` only when the division will be valid: the part count
    is simulated (with Σ's SCCs collapsed) before the node contraction is
    applied, so failed attempts leave the tree untouched.  The S-edge
    scan and the part-routing scan each get a child span on ``tracer``
    (nested under the caller's ``divide`` span).
    """
    if len(cut_nodes) <= 1 or not expanded:
        return None
    index = IntervalIndex(tree)
    device = edge_file.device

    # Columnar kernel for both scans.  The device's kernel may decline a
    # sparse id set (a dense numpy index would be mostly holes); the
    # python kernel never declines, so it is the universal fallback —
    # `convert` marks that scanned columns need re-materializing in the
    # fallback backend's native column type (which also normalizes the
    # endpoints back to plain python ints).
    cross_kernel = device.kernel
    classifier = cross_kernel.make_index(tree)
    if classifier is None:
        cross_kernel = resolve_kernel("python")
        classifier = cross_kernel.make_index(tree)
    convert = cross_kernel is not device.kernel

    # Step 1: one scan collecting S-edges whose LCA is an expanded cut node.
    sigma = SummaryGraph()
    with tracer.span(
        "sgraph", edges=edge_file.edge_count, cut_nodes=len(cut_nodes),
        kernel=cross_kernel.name, codec=device.block_codec,
    ) as sgraph_span:
        for node in cut_nodes:
            sigma.add_node(node)
        for parent_node in expanded:
            for child in tree.children(parent_node):
                sigma.add_edge(parent_node, child)
        collect = cross_kernel.collect_cross_edges
        for u_col, v_col in edge_file.scan_columns():
            if convert:
                u_col, v_col = cross_kernel.make_columns(u_col, v_col)
            for u, v in collect(classifier, u_col, v_col):
                a, b, lca = s_edge_endpoints(tree, index, u, v)
                if lca in expanded:
                    sigma.add_edge(a, b)
        sgraph_span.annotate(s_edges=sigma.edge_count)

    # Before mutating anything, simulate the part count the contraction
    # would leave: each multi-node SCC of Σ collapses its sibling group
    # into ONE leaf.  An invalid division (p <= 1) must not alter the
    # tree — otherwise every failed attempt on a hard-to-divide graph
    # grows a chain of useless virtual nodes.
    if _simulate_part_count(tree, sigma, cut_nodes, expanded) <= 1:
        return None

    # Step 2: make Σ a DAG via SCC-aware contraction (mutates Σ and tree).
    contractions = contract_sigma_sccs(sigma, tree, allocator)
    new_virtuals = {virtual for virtual, _ in contractions}

    # Step 3: build T_0 top-down; contraction virtuals are leaves.
    in_cut = cut_nodes | new_virtuals
    t0 = SpanningTree()
    root = tree.root
    t0.add_node(root, virtual=tree.is_virtual(root))
    t0.root = root
    queue = deque([root])
    while queue:
        node = queue.popleft()
        if node in new_virtuals:
            continue  # a contracted SCC cannot be divided at this level
        if node != root and node not in expanded:
            continue  # leaf of the cut-tree: do not descend
        for child in tree.children(node):
            if child in in_cut:
                t0.add_node(child, virtual=tree.is_virtual(child))
                t0.attach(child, node)
                queue.append(child)
    sigma.restrict(set(t0.nodes))

    leaves = [node for node in t0.preorder() if t0.first_child[node] is None]
    if len(leaves) <= 1:
        return None

    # Step 4: owner map + one columnar routing scan into the part files.
    with tracer.span(
        "partition", parts=len(leaves), codec=device.block_codec
    ) as partition_span:
        owner: Dict[int, int] = {}
        part_meta: List[Tuple[int, int]] = []  # (index, root)
        for part_index, leaf in enumerate(leaves, start=1):
            part_meta.append((part_index, leaf))
            for node in tree.preorder(start=leaf):
                owner[node] = part_index
        route_kernel = device.kernel
        owner_index = route_kernel.make_owner_index(owner)
        if owner_index is None:  # dense routing index declined: dict path
            route_kernel = resolve_kernel("python")
            owner_index = route_kernel.make_owner_index(owner)
        route_convert = route_kernel is not device.kernel
        partition_span.annotate(kernel=route_kernel.name)
        writer = PartitionWriter(device, [i for i, _ in part_meta])
        try:
            route = route_kernel.route_edges
            for u_col, v_col in edge_file.scan_columns():
                if route_convert:
                    u_col, v_col = route_kernel.make_columns(u_col, v_col)
                for part_key, part_u_col, part_v_col in route(
                    owner_index, u_col, v_col
                ):
                    writer.route_columns(part_key, part_u_col, part_v_col)
            part_files = writer.seal()
        except ReproError:
            # A fault mid-routing (injected block fault, retries
            # exhausted, budget trip) must not strand half-written part
            # files on the device: the caller retries the whole division
            # against the intact parent edge file.
            writer.discard()
            raise

    parts: List[Part] = []
    for part_index, leaf in part_meta:
        subtree, real_nodes = _extract_subtree(tree, leaf)
        parts.append(
            Part(
                index=part_index,
                root=leaf,
                tree=subtree,
                real_nodes=real_nodes,
                edge_file=part_files[part_index],
            )
        )
    return Division(
        t0=t0, sigma=sigma, parts=parts, contractions=len(contractions)
    )
