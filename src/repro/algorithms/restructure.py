"""The shared ``Restructure(G, T, M)`` procedure (Algorithm 1, lines 7–16).

One call makes one pass over the edge file in memory-sized batches.  Per
batch it classifies every edge against the current tree (O(1) per edge via
an :class:`~repro.core.classify.IntervalIndex` rebuilt only when the tree
changes) and, if at least one forward-cross edge was loaded, rebuilds the
tree with the tree-order-preferring in-memory DFS over
``G_M = T ∪ (batch edges)``.

Only *cross* edges are retained in the batch adjacency: forward and
backward edges (ancestor-related endpoints) provably cannot become
forward-cross under the tree-preferring rebuild, so carrying them changes
nothing about the result — but every scanned non-tree edge still *charges*
the ``|G_M| <= M`` budget, because batch boundaries (and hence I/O
behaviour) must match the paper's procedure, which loads them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import MemoryBudgetExceeded
from ..storage.block_device import BlockDevice
from ..storage.buffer_pool import MemoryBudget
from ..storage.edge_file import EdgeFile
from ..core.classify import IntervalIndex
from ..core.inmemory import dfs_preferring_tree
from ..core.tree import SpanningTree


@dataclass
class RestructureOutcome:
    """What one Restructure pass did."""

    tree: SpanningTree
    update: bool  # a forward-cross edge existed somewhere in this pass
    batches: int
    rebuilds: int  # batches that actually triggered an in-memory DFS


def restructure(
    edge_file: EdgeFile,
    tree: SpanningTree,
    budget: MemoryBudget,
    stack_device: Optional[BlockDevice] = None,
    check_deadline: Optional[Callable[[], None]] = None,
) -> RestructureOutcome:
    """One batched pass of Algorithm 1's Restructure.

    Args:
        edge_file: the (sub)graph's edges on disk.
        budget: memory budget; the tree must already be charged under the
            label ``"tree"``, and the batch is granted the remainder.
        stack_device: forwarded to the in-memory DFS so its node stack can
            spill as an external stack (the SEMI-DFS configuration).
        check_deadline: optional callback invoked before each batch is
            flushed (i.e. once per memory-load of edges).  A caller with a
            wall-clock deadline passes
            :meth:`~repro.algorithms.base.RunContext.check_deadline` here
            so a single huge pass cannot overshoot the limit by a whole
            scan; the callback aborts by raising.

    Returns:
        The (possibly replaced) tree plus the pass's update flag and batch
        counts.

    Raises:
        MemoryBudgetExceeded: when not even one edge fits beside the tree.
    """
    batch_capacity = budget.available
    if batch_capacity < 1:
        raise MemoryBudgetExceeded(
            "no memory left for batch edges next to the spanning tree; "
            f"budget {budget.capacity}, used {budget.used}"
        )

    kernel = edge_file.device.kernel
    if kernel.vectorized:
        dense = kernel.make_index(tree)
        if dense is not None:  # None = ids too sparse; scalar path below
            return _restructure_vectorized(
                edge_file, tree, batch_capacity, stack_device, kernel, dense,
                check_deadline,
            )

    update = False
    batches = 0
    rebuilds = 0
    index = IntervalIndex(tree)
    extra: Dict[int, List[int]] = {}
    loaded = 0
    batch_has_forward_cross = False

    def flush_batch() -> None:
        nonlocal tree, index, extra, loaded, batch_has_forward_cross
        nonlocal batches, rebuilds, update
        if loaded == 0:
            return
        if check_deadline is not None:
            check_deadline()
        batches += 1
        if batch_has_forward_cross:
            update = True
            rebuilds += 1
            tree = dfs_preferring_tree(tree, extra, stack_device=stack_device)
            index = IntervalIndex(tree)
        extra = {}
        loaded = 0
        batch_has_forward_cross = False

    # The classification below inlines IntervalIndex.classify with hoisted
    # dict references — this loop touches every edge of the file every
    # pass and dominates the whole system's CPU profile.
    pre = index.pre
    size = index.size
    parent = tree.parent
    for block in edge_file.scan_blocks():
        for u, v in block:
            if u == v or parent.get(v) == u:
                continue  # self-loop / tree edge
            pre_u = pre[u]
            pre_v = pre[v]
            # Every scanned non-tree edge occupies batch memory (the paper
            # enlarges G_M with all of them), but only cross edges can
            # influence the rebuild, so only they enter the adjacency.
            loaded += 1
            if pre_u < pre_v:
                if pre_v < pre_u + size[u]:
                    pass  # forward edge: ancestor relation, harmless
                else:
                    targets = extra.get(u)  # forward-cross
                    if targets is None:
                        extra[u] = [v]
                    else:
                        targets.append(v)
                    batch_has_forward_cross = True
            elif pre_u >= pre_v + size[v]:
                targets = extra.get(u)  # backward-cross
                if targets is None:
                    extra[u] = [v]
                else:
                    targets.append(v)
            if loaded >= batch_capacity:
                flush_batch()
                pre = index.pre
                size = index.size
                parent = tree.parent
    flush_batch()
    return RestructureOutcome(tree=tree, update=update, batches=batches, rebuilds=rebuilds)


def _restructure_vectorized(
    edge_file: EdgeFile,
    tree: SpanningTree,
    batch_capacity: int,
    stack_device: Optional[BlockDevice],
    kernel,
    index,
    check_deadline: Optional[Callable[[], None]] = None,
) -> RestructureOutcome:
    """The same pass, block-at-a-time through the vectorized kernel.

    Blocks arrive as flat int32 columns (:meth:`EdgeFile.scan_columns`) and
    ``kernel.classify_slice`` computes forward-/backward-cross masks with
    array comparisons against a dense interval index; only the (rare) cross
    edges come back as Python pairs for the batch adjacency.  Batch
    boundaries, I/O charges, and every :class:`RestructureOutcome` counter
    are identical to the scalar loop — ``classify_slice`` stops at the
    exact edge that fills the batch, the batch is flushed, and the rest of
    the block is re-classified against the rebuilt tree.
    """
    update = False
    batches = 0
    rebuilds = 0
    extra: Dict[int, List[int]] = {}
    loaded = 0
    batch_has_forward_cross = False

    def flush_batch() -> None:
        nonlocal tree, index, extra, loaded, batch_has_forward_cross
        nonlocal batches, rebuilds, update
        if loaded == 0:
            return
        if check_deadline is not None:
            check_deadline()
        batches += 1
        if batch_has_forward_cross:
            update = True
            rebuilds += 1
            tree = dfs_preferring_tree(tree, extra, stack_device=stack_device)
            # The rebuild preserves the node set, so density (and hence the
            # dense index's availability) cannot change mid-pass.
            index = kernel.make_index(tree)
        extra = {}
        loaded = 0
        batch_has_forward_cross = False

    for u_col, v_col in edge_file.scan_columns():
        length = len(u_col)
        position = 0
        while position < length:
            position, counted, has_forward_cross, cross = kernel.classify_slice(
                index, u_col, v_col, position, batch_capacity - loaded
            )
            for u, v in cross:
                targets = extra.get(u)
                if targets is None:
                    extra[u] = [v]
                else:
                    targets.append(v)
            loaded += counted
            if has_forward_cross:
                batch_has_forward_cross = True
            if loaded >= batch_capacity:
                flush_batch()
    flush_batch()
    return RestructureOutcome(tree=tree, update=update, batches=batches, rebuilds=rebuilds)
