"""``EdgeByEdge`` — the per-edge restructuring baseline of Sibeyn et al.

Scan the edge file; whenever the scanned edge ``(u, v)`` is forward-cross
with respect to the in-memory tree, restructure immediately: delete the tree
edge ``(parent(v), v)`` and add ``(u, v)`` (re-parenting ``v``'s subtree
under ``u``).  Repeat full passes until one pass makes no change.

Because the tree mutates under the scan, classification uses the dynamic
O(depth) climbing comparator instead of a preorder index — maintaining a
total order under mutation is exactly the cost the paper's drawback (1)
describes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConvergenceError
from ..graph.disk_graph import DiskGraph
from ..obs import Tracer
from ..core.classify import EdgeType, IntervalIndex
from ..core.order import classify_edge_dynamic
from .base import DFSResult, RunContext, default_max_passes, initial_star_tree


def edge_by_edge(
    graph: DiskGraph,
    memory: int,
    start: Optional[int] = None,
    max_passes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    block_codec: Optional[str] = None,
) -> DFSResult:
    """Compute a DFS-Tree with the per-edge restructuring heuristic.

    Args:
        graph: the graph on disk.
        memory: budget ``M`` in elements (only the tree is held: ``3|V|``).
        start: optional DFS start node.
        max_passes: cap on scan passes; defaults to ``2n + 16``.
        tracer: a :class:`~repro.obs.Tracer` to receive one
            ``restructure`` span per scan pass plus progress heartbeats.

    Raises:
        ConvergenceError: if the heuristic exceeds ``max_passes``.
    """
    context = RunContext(
        graph, memory, "edge-by-edge", deadline_seconds, tracer,
        block_codec=block_codec,
    )
    context.budget.charge("tree", context.budget.tree_charge(graph.node_count))
    tree = initial_star_tree(graph, context.allocator, start)
    limit = default_max_passes(graph.node_count) if max_passes is None else max_passes

    # Adaptive classification: while the tree is unchanged this pass an
    # O(1)-per-edge interval index answers; after a fix the index is
    # stale.  A bounded number of O(n) rebuilds is worth paying (late,
    # nearly-converged passes have few fixes), beyond that the pass falls
    # back to O(depth) climbing.  Either path classifies exactly, so the
    # computed tree is identical to the naive implementation's.
    rebuild_allowance = max(1, graph.edge_count // max(1, graph.node_count))

    try:
        while True:
            context.check_deadline()
            update = False
            fixes = 0
            index = IntervalIndex(tree)
            with context.tracer.span(
                "restructure", nodes=graph.node_count,
                edges=graph.edge_file.edge_count,
            ) as span:
                for u, v in graph.edge_file.scan():
                    if u == v:
                        continue
                    if index is not None:
                        kind = index.classify(u, v)
                    else:
                        kind = classify_edge_dynamic(tree, u, v)
                    if kind is EdgeType.FORWARD_CROSS:
                        # Replace (parent(v), v) by (u, v): v's subtree moves
                        # under u.  u and v are order-incomparable (the edge
                        # is cross), so u cannot lie inside v's subtree.
                        tree.reattach(v, u)
                        update = True
                        fixes += 1
                        if fixes <= rebuild_allowance:
                            index = IntervalIndex(tree)
                        else:
                            index = None
                span.annotate(reattachments=fixes, update=update)
            context.passes += 1
            context.bump("reattachments", fixes)
            context.tracer.progress(
                algorithm="edge-by-edge", passes=context.passes,
                reattachments=fixes,
            )
            if not update:
                return context.finish(tree)
            if context.passes >= limit:
                raise ConvergenceError(
                    f"edge-by-edge did not converge within {limit} passes"
                )
    finally:
        context.release()
