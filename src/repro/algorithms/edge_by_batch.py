"""``EdgeByBatch`` — the paper's Algorithm 1, a.k.a. **SEMI-DFS** [14].

Build the initial ``γ``-star, then repeat batched Restructure passes until a
pass finds no forward-cross edge anywhere.  The whole edge file is scanned
every pass even if a single forward-cross edge remains — the inefficiency
(paper §4.1, drawbacks 2 and 3) that motivates divide & conquer.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from ..core.tree import SpanningTree
from ..errors import ConvergenceError
from ..graph.disk_graph import DiskGraph
from ..obs import Tracer
from ..serve.store import TREE_FILE, ArtifactStore
from .base import DFSResult, RunContext, default_max_passes, initial_star_tree
from .restructure import restructure


def edge_by_batch(
    graph: DiskGraph,
    memory: int,
    start: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    use_external_stack: bool = True,
    max_passes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
    initial_tree: Optional[SpanningTree] = None,
    tracer: Optional[Tracer] = None,
    block_codec: Optional[str] = None,
) -> DFSResult:
    """Compute a DFS-Tree with the SEMI-DFS batch heuristic.

    Args:
        graph: the graph on disk.
        memory: budget ``M`` in elements (``>= 3 * |V|``).
        start: optional DFS start node (γ's first child).
        order: optional full restart-priority order over the nodes; the
            relative order of the surviving restart roots is preserved
            across restructuring.
        use_external_stack: spill the in-memory DFS stack through an
            external stack on the graph's device — the configuration the
            paper charges to SEMI-DFS.
        max_passes: cap on Restructure passes; defaults to ``2n + 16``.
        deadline_seconds: optional wall-clock limit (the paper's timeout).
        checkpoint_every: publish the spanning tree to the run's
            artifact store (``<device>/artifacts``) every this many
            passes; runs at paper scale take hours, and a checkpoint
            makes them resumable.  The latest checkpoint's tree-blob
            path lands in ``DFSResult.details`` / on the
            :class:`~repro.errors.ConvergenceError` (``checkpoint_path``)
            when a cap interrupts the run, and the version directory in
            ``DFSResult.artifact_ref``.
        initial_tree: resume from a tree loaded via
            :func:`repro.core.load_tree` (or an artifact's tree) instead
            of the initial γ-star.
        tracer: a :class:`~repro.obs.Tracer` to receive the run's span
            events (one ``restructure`` span per pass, ``checkpoint``
            spans), metrics, and per-pass progress heartbeats.

    Raises:
        ConvergenceError: if the heuristic exceeds ``max_passes`` or the
            deadline.
    """
    context = RunContext(
        graph, memory, "edge-by-batch", deadline_seconds, tracer,
        block_codec=block_codec,
    )
    context.budget.charge("tree", context.budget.tree_charge(graph.node_count))
    if initial_tree is not None:
        if start is not None or order is not None:
            raise ValueError("initial_tree excludes start/order")
        tree = initial_tree
        # keep virtual ids fresh above any the checkpoint already uses
        for node in initial_tree.virtual:
            while context.allocator.next_id <= node:
                context.allocator.allocate()
    else:
        tree = initial_star_tree(graph, context.allocator, start, order)
    stack_device = graph.device if use_external_stack else None
    limit = default_max_passes(graph.node_count) if max_passes is None else max_passes
    checkpoint_path: Optional[str] = None
    checkpoint_ref: Optional[str] = None

    def take_checkpoint() -> None:
        nonlocal checkpoint_path, checkpoint_ref
        with context.tracer.span("checkpoint", passes=context.passes):
            ref = ArtifactStore.for_run(graph.device).publish_tree(
                tree, "edge-by-batch-ckpt", kind="checkpoint",
                algorithm="edge-by-batch", node_count=graph.node_count,
                details={"passes": context.passes},
            )
            checkpoint_ref = ref.path
            checkpoint_path = os.path.join(ref.path, TREE_FILE)

    try:
        while True:
            # The deadline is checked per pass here *and* per batch inside
            # restructure (check_deadline=): a single pass over a huge edge
            # file can dwarf the remaining budget, and checking only
            # between passes would overshoot the limit by a whole scan.
            # Either raise takes the same checkpoint-on-deadline path.
            try:
                context.check_deadline()
                with context.tracer.span(
                    "restructure", nodes=graph.node_count
                ) as span:
                    outcome = restructure(
                        graph.edge_file, tree, context.budget, stack_device,
                        check_deadline=context.check_deadline,
                    )
                    span.annotate(
                        edges=graph.edge_file.edge_count,
                        batches=outcome.batches, update=outcome.update,
                    )
            except ConvergenceError as exc:
                if checkpoint_every:
                    take_checkpoint()
                    exc.checkpoint_path = checkpoint_path  # type: ignore[attr-defined]
                raise
            tree = outcome.tree
            context.passes += 1
            context.bump("batches", outcome.batches)
            context.bump("rebuilds", outcome.rebuilds)
            context.tracer.progress(
                algorithm="edge-by-batch", passes=context.passes,
                batches=outcome.batches,
            )
            if checkpoint_every and context.passes % checkpoint_every == 0:
                take_checkpoint()
            if not outcome.update:
                result = context.finish(tree)
                if checkpoint_path is not None:
                    result.details["checkpoint"] = checkpoint_path  # type: ignore[index]
                    result.artifact_ref = checkpoint_ref
                return result
            if context.passes >= limit:
                error = ConvergenceError(
                    f"edge-by-batch did not converge within {limit} passes"
                )
                if checkpoint_every:
                    take_checkpoint()
                    error.checkpoint_path = checkpoint_path  # type: ignore[attr-defined]
                raise error
    finally:
        context.release()
