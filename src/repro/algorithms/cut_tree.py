"""Cut-tree construction (Definition 6.5) for Divide-TD.

A cut-tree ``T_c`` is a top fragment of the spanning tree: it contains the
root, and every non-leaf node of ``T_c`` contributes *all* of its tree
children (condition (2) — needed so that any S-edge whose LCA is a non-leaf
cut node lands with both endpoints inside ``T_c``).

:func:`build_cut_tree` grows ``T_c`` under the paper's memory rule — the
S-Graph over ``T_c`` has at most ``|V(T_c)|²`` edges, so growth stops
before ``|V(T_c)|²`` exceeds the budget granted to Σ.

Divide-Star's cut (:func:`star_cut`) is the first-branching-node special
case: descend the single-child spine from the root and expand exactly one
sibling group.  ``build_cut_tree`` always *contains* that cut before any
budgeted growth, because the paper presents Divide-TD as a strict
generalization of Divide-Star.
"""

from __future__ import annotations

from collections import deque
from typing import Set, Tuple

from ..core.tree import SpanningTree


def build_cut_tree(tree: SpanningTree, sigma_budget: int) -> Tuple[Set[int], Set[int]]:
    """Grow a cut-tree from the root within ``|V(T_c)|² <= sigma_budget``.

    The cut always contains at least the Divide-Star cut (the single-child
    spine from the root plus the first branching node's full sibling
    group) — Divide-TD is the paper's *generalization* of Divide-Star, so
    its cut must never be strictly weaker.  Beyond that mandatory core the
    cut grows breadth-first while ``|V(T_c)|²`` stays within the Σ budget.

    Returns:
        ``(cut_nodes, expanded)`` — the cut-tree's node set and the subset
        whose children were pulled in (the non-leaves of ``T_c``).
    """
    root = tree.root
    if root is None:
        return set(), set()
    budget = max(sigma_budget, 4)

    # Mandatory core: the Divide-Star cut, budget-exempt.  The frontier
    # follows preorder so growth is deterministic and level-ish.
    cut_nodes, expanded = star_cut(tree)
    frontier = deque(
        node
        for node in tree.preorder()
        if node in cut_nodes and node not in expanded
    )
    while frontier:
        node = frontier.popleft()
        children = tree.child_list(node)
        if not children:
            continue
        grown = len(cut_nodes) + len(children)
        if grown * grown > budget:
            break
        expanded.add(node)
        for child in children:
            cut_nodes.add(child)
            frontier.append(child)
    return cut_nodes, expanded


def star_cut(tree: SpanningTree) -> Tuple[Set[int], Set[int]]:
    """The Divide-Star cut: the first *branching* node plus its children.

    The paper's examples divide at a root with several children (Fig. 5's
    node A); under the virtual root ``γ`` a connected graph leaves ``γ``
    with a single child, where a literal one-level star can never divide.
    Descending the single-child spine to the first node with two or more
    children recovers the intended division without expanding anything
    beyond one sibling group.
    """
    root = tree.root
    if root is None:
        return set(), set()
    cut_nodes = {root}
    expanded: Set[int] = set()
    node = root
    while True:
        children = tree.child_list(node)
        if not children:
            break
        expanded.add(node)
        cut_nodes.update(children)
        if len(children) > 1:
            break
        node = children[0]
    if not expanded or len(cut_nodes) <= 1:
        return cut_nodes, set()
    return cut_nodes, expanded
