"""``DivideConquerDFS`` (Algorithm 2): the paper's main contribution.

The recursive procedure over a subgraph on disk:

* **base case** — the subgraph fits in memory (``|G_i| <= M``): load it and
  run the in-memory tree-preferring DFS once;
* otherwise alternate **Restructure** passes with **division attempts**
  (Divide-Star or Divide-TD).  A pass that finds no forward-cross edge
  means the current tree already is a DFS-Tree; a valid division
  (``p > 1`` parts) recurses into each part — each part's restructure scans
  only that part's (much smaller) edge file — and the part DFS-Trees are
  reassembled by :func:`~repro.algorithms.merge.merge_division`.

Invariant maintained everywhere (and checked by the test suite): every
tree edge whose parent is a real node is a real graph edge, so the final
tree is a genuine DFS forest of ``G`` under the virtual root ``γ``.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import ConvergenceError
from ..graph.disk_graph import DiskGraph
from ..obs import Tracer
from ..storage.buffer_pool import MemoryBudget
from ..storage.edge_file import EdgeFile
from ..core.inmemory import adjacency_from_edge_file, dfs_preferring_tree
from ..core.tree import SpanningTree
from .base import DFSResult, RunContext, default_max_passes, initial_star_tree
from .cut_tree import build_cut_tree, star_cut
from .division import Division, divide_with_cut
from .merge import merge_division, splice_non_root_virtuals
from .restructure import restructure

#: A cut strategy maps (tree, memory budget) -> (cut_nodes, expanded).
CutStrategy = Callable[[SpanningTree, MemoryBudget], Tuple[Set[int], Set[int]]]

#: Whether the "trace= ignored next to tracer=" deprecation has been
#: announced (once per process, mirroring the RunOptions kwargs shim).
_TRACE_TRACER_WARNED = False


def star_strategy(tree: SpanningTree, budget: MemoryBudget) -> Tuple[Set[int], Set[int]]:
    """Divide-Star's cut: the root and its children (Algorithm 3)."""
    return star_cut(tree)


def td_strategy(tree: SpanningTree, budget: MemoryBudget) -> Tuple[Set[int], Set[int]]:
    """Divide-TD's cut: a multi-level cut-tree sized so the S-Graph fits in
    the memory left next to the spanning tree (Algorithm 4)."""
    return build_cut_tree(tree, sigma_budget=budget.available)


def _solve_in_memory(
    edge_file: EdgeFile, tree: SpanningTree, context: RunContext
) -> SpanningTree:
    """Base case: ``|G_i| <= M`` — load the edges and DFS once in memory.

    The materialization happens in the designated in-memory solver
    (:func:`~repro.core.inmemory.adjacency_from_edge_file`), the one
    place the conformance checker permits it: the recursion only gets
    here after proving the part fits the budget.
    """
    extra = adjacency_from_edge_file(edge_file)
    context.bump("inmemory_solves")
    return dfs_preferring_tree(tree, extra)


def _first_real_node(tree: SpanningTree) -> Optional[int]:
    """The first non-virtual node in preorder — the restart-priority head.

    This is the node a priority-respecting DFS visits first: the start
    hint at the top level, the part root (or first contracted member) in
    a recursive call.  Restructure and the in-memory solve both preserve
    it, so it is the invariant a division must not break.
    """
    for node in tree.preorder():
        if not tree.is_virtual(node):
            return node
    return None


def _division_first_real(division: Division) -> Optional[int]:
    """The first real node the *merged* tree would visit.

    Simulates merge step 1 without building anything: descend ``T_0``
    from the root, at each level taking the child that the
    priority-respecting reverse topological order of Σ ranks first.  A
    part leaf resolves to its part's first real node (the recursion
    preserves it, by the same invariant this check enforces).
    """
    t0 = division.t0
    priority: Dict[int, int] = {
        node: rank for rank, node in enumerate(t0.preorder())
    }
    rank_of: Dict[int, int] = {
        node: rank
        for rank, node in enumerate(
            division.sigma.reverse_topological_order(priority)
        )
    }
    head_of_part: Dict[int, Optional[int]] = {
        part.root: (part.real_nodes[0] if part.real_nodes else None)
        for part in division.parts
    }
    node: Optional[int] = t0.root
    while node is not None:
        if node in head_of_part:
            return head_of_part[node]
        if not t0.is_virtual(node):
            return node
        children = t0.child_list(node)
        if not children:
            return None
        node = min(children, key=lambda child: rank_of[child])
    return None


def _discard_division(division: Division, tree: SpanningTree) -> None:
    """Undo a vetoed division: drop its part files and its virtuals.

    The part files are this level's only disk residue (the parent edge
    file is still intact — it is deleted only after a division is
    *accepted*).  Contraction virtuals that step 2 spliced into the
    spanning tree are removed again so repeated vetoes cannot grow a
    chain of dead virtual nodes across restructure passes.
    """
    for part in division.parts:
        part.edge_file.delete()
        if tree.is_virtual(part.root) and part.root in tree.parent:
            tree.splice_out(part.root)


def _divide_conquer(
    edge_file: EdgeFile,
    real_node_count: int,
    tree: SpanningTree,
    context: RunContext,
    strategy: CutStrategy,
    depth: int,
    owns_file: bool,
    pass_limit: int,
) -> SpanningTree:
    """Recursive body of Algorithm 2 (its DivideConquer procedure)."""
    if depth > context.max_depth:
        context.max_depth = depth
    size = real_node_count + edge_file.edge_count

    if size <= context.memory:
        # The deadline must interrupt here too: a division can hand this
        # branch hundreds of in-memory solves, and a run that only checked
        # the clock in the restructure loop would overshoot its budget by
        # a whole solve per part.
        context.check_deadline()
        with context.tracer.span(
            "solve", depth=depth, nodes=real_node_count,
            edges=edge_file.edge_count,
            kernel=edge_file.device.kernel.name,
            codec=edge_file.device.block_codec,
        ):
            result = _solve_in_memory(edge_file, tree, context)
        if owns_file:
            edge_file.delete()
        return result

    budget = MemoryBudget(context.memory)
    budget.charge("tree", budget.tree_charge(real_node_count))

    division = None
    level_passes = 0
    next_attempt = 1
    while division is None:
        context.check_deadline()
        with context.tracer.span(
            "restructure", depth=depth, nodes=real_node_count,
            kernel=edge_file.device.kernel.name,
            codec=edge_file.device.block_codec,
        ) as restructure_span:
            outcome = restructure(edge_file, tree, budget)
            restructure_span.annotate(
                edges=edge_file.edge_count, batches=outcome.batches,
                update=outcome.update,
            )
        tree = outcome.tree
        context.passes += 1
        level_passes += 1
        context.bump("batches", outcome.batches)
        context.tracer.progress(
            algorithm=context.algorithm, passes=context.passes, depth=depth,
            nodes=real_node_count,
        )
        if not outcome.update:
            # No forward-cross edge anywhere: the tree is a DFS-Tree.
            splice_non_root_virtuals(tree)
            if owns_file:
                edge_file.delete()
            return tree
        if context.passes >= pass_limit:
            raise ConvergenceError(
                f"divide & conquer exceeded {pass_limit} restructure passes"
            )
        # Divide as early as possible (paper §4.2), but back off after
        # failed attempts: a failed attempt costs a full scan, and on
        # hard-to-divide graphs (one giant SCC) paying it every pass would
        # let the baseline win on I/O.  The gap doubles up to a cap of 8
        # passes, bounding the overhead at ~12% while still catching a
        # division within 8 passes of it becoming possible.
        if level_passes < next_attempt:
            continue
        head = _first_real_node(tree)
        with context.tracer.span("cut-tree", depth=depth):
            cut_nodes, expanded = strategy(tree, budget)
        with context.tracer.span(
            "divide", depth=depth, nodes=real_node_count
        ) as divide_span:
            division = divide_with_cut(
                edge_file, tree, cut_nodes, expanded, context.allocator,
                tracer=context.tracer,
            )
            context.bump("division_attempts")
            if division is not None:
                divide_span.annotate(
                    parts=division.part_count,
                    contractions=division.contractions,
                    part_sizes=sorted(
                        (p.size for p in division.parts), reverse=True
                    ),
                )
        if division is not None and _division_first_real(division) != head:
            # Σ forces another part before the restart-priority head (an
            # S-edge out of the head's subtree into a sibling part): no
            # sibling permutation can honour the start hint under this
            # division.  Discard it and keep restructuring — the next
            # rebuild re-parents the offending target *under* the head's
            # subtree, exactly as the baselines resolve it.
            _discard_division(division, tree)
            context.bump("divisions_vetoed")
            division = None
        if division is None:
            next_attempt = level_passes + min(max(level_passes, 1), 8)

    context.divisions += 1
    context.bump("parts_created", division.part_count)
    if owns_file:
        edge_file.delete()  # the parts and Σ fully replace this file

    part_trees: List[SpanningTree] = []
    try:
        if context.workers > 1 and depth == 0 and division.part_count > 1:
            # Top-level parts go to the process pool; each worker runs this
            # same recursion sequentially on its own part (repro.parallel).
            from ..parallel import conquer_parts

            part_trees = conquer_parts(
                division, context, strategy, depth + 1, pass_limit
            )
        else:
            for part in division.parts:
                # The deadline must also interrupt between parts: a division
                # can produce hundreds of them, and a run that checked the
                # clock only inside each part's restructure loop could
                # overshoot its budget by a whole in-memory solve per part.
                context.check_deadline()
                with context.tracer.span(
                    "part", depth=depth + 1, part=part.index,
                    nodes=len(part.real_nodes), edges=part.edge_file.edge_count,
                ):
                    part_trees.append(
                        _divide_conquer(
                            part.edge_file,
                            len(part.real_nodes),
                            part.tree,
                            context,
                            strategy,
                            depth + 1,
                            owns_file=True,
                            pass_limit=pass_limit,
                        )
                    )
    # repro: allow[SEX402] cleanup-and-reraise at the recursion boundary; the error propagates untouched
    except Exception:
        # This level's division already replaced the parent edge file, so
        # its part files are owned here and nowhere else: without this
        # sweep, an error raised inside any part (deadline, pass cap, a
        # crashed pool worker) would leak every not-yet-consumed part file
        # onto the device.  delete() is idempotent, so parts the recursion
        # or a worker already consumed are unaffected.
        for part in division.parts:
            part.edge_file.delete()
        raise
    with context.tracer.span("merge", depth=depth, parts=division.part_count):
        merged = merge_division(division, part_trees)
    return merged


def _run(
    graph: DiskGraph,
    memory: int,
    strategy: CutStrategy,
    name: str,
    start: Optional[int],
    max_passes: Optional[int],
    deadline_seconds: Optional[float],
    trace: bool,
    tracer: Optional[Tracer],
    workers: int,
    block_codec: Optional[str],
    worker_boundary: str,
) -> DFSResult:
    global _TRACE_TRACER_WARNED
    if tracer is None and trace:
        tracer = Tracer()  # the legacy spelling of "record events"
    elif tracer is not None and trace and not _TRACE_TRACER_WARNED:
        # Passing both is almost always a half-finished migration; the
        # explicit tracer wins, but silently dropping trace=True hides
        # that.  Warn once per process, like the RunOptions kwargs shim.
        _TRACE_TRACER_WARNED = True
        warnings.warn(
            "trace=True is ignored when an explicit tracer= is given; "
            "drop the deprecated trace flag",
            DeprecationWarning,
            stacklevel=3,
        )
    context = RunContext(
        graph, memory, name, deadline_seconds, tracer, workers=workers,
        block_codec=block_codec, worker_boundary=worker_boundary,
    )
    try:
        tree = initial_star_tree(graph, context.allocator, start)
        limit = (
            default_max_passes(graph.node_count)
            if max_passes is None else max_passes
        )
        final = _divide_conquer(
            graph.edge_file,
            graph.node_count,
            tree,
            context,
            strategy,
            depth=0,
            owns_file=False,
            pass_limit=limit,
        )
        splice_non_root_virtuals(final)
        return context.finish(final)
    finally:
        context.release()


def divide_star_dfs(
    graph: DiskGraph,
    memory: int,
    start: Optional[int] = None,
    max_passes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    trace: bool = False,
    tracer: Optional[Tracer] = None,
    workers: int = 1,
    block_codec: Optional[str] = None,
    worker_boundary: str = "shm",
) -> DFSResult:
    """DivideConquerDFS with the Divide-Star division (Algorithm 3).

    Args:
        trace: deprecated spelling of ``tracer=Tracer()`` — record
            per-level restructure/division/in-memory events in
            ``DFSResult.events``.
        tracer: a :class:`~repro.obs.Tracer` to receive the run's span
            events, metrics, and progress heartbeats.
        workers: process-pool width for the top-level division's parts
            (see :mod:`repro.parallel`); ``1`` keeps the sequential loop
            and is bit-identical to earlier releases.
        block_codec: edge-block codec for files written during the run
            (``"fixed32"`` / ``"delta-varint"``; default: the device's
            setting).  Changes block counts only, never the DFS tree.
        worker_boundary: how pooled part trees cross the process line —
            ``"shm"`` (default) for framed shared-memory columns,
            ``"pickle"`` to force the legacy pickled payloads.  Results
            and I/O charges are identical either way.
    """
    return _run(
        graph, memory, star_strategy, "divide-star", start, max_passes,
        deadline_seconds, trace, tracer, workers, block_codec,
        worker_boundary,
    )


def divide_td_dfs(
    graph: DiskGraph,
    memory: int,
    start: Optional[int] = None,
    max_passes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    trace: bool = False,
    tracer: Optional[Tracer] = None,
    workers: int = 1,
    block_codec: Optional[str] = None,
    worker_boundary: str = "shm",
) -> DFSResult:
    """DivideConquerDFS with the Divide-TD division (Algorithm 4).

    Args:
        trace: deprecated spelling of ``tracer=Tracer()`` — record
            per-level restructure/division/in-memory events in
            ``DFSResult.events``.
        tracer: a :class:`~repro.obs.Tracer` to receive the run's span
            events, metrics, and progress heartbeats.
        workers: process-pool width for the top-level division's parts
            (see :mod:`repro.parallel`); ``1`` keeps the sequential loop
            and is bit-identical to earlier releases.
        block_codec: edge-block codec for files written during the run
            (``"fixed32"`` / ``"delta-varint"``; default: the device's
            setting).  Changes block counts only, never the DFS tree.
        worker_boundary: how pooled part trees cross the process line —
            ``"shm"`` (default) for framed shared-memory columns,
            ``"pickle"`` to force the legacy pickled payloads.  Results
            and I/O charges are identical either way.
    """
    return _run(
        graph, memory, td_strategy, "divide-td", start, max_passes,
        deadline_seconds, trace, tracer, workers, block_codec,
        worker_boundary,
    )
