"""Semi-external graph algorithms: the two Sibeyn-et-al. DFS baselines,
the paper's divide & conquer family (Divide-Star, Divide-TD), and the
sibling semi-external BFS traversal."""

from .base import (
    BFSResult,
    DFSResult,
    RunResult,
    default_max_passes,
    initial_star_tree,
)
from .bfs import semi_external_bfs
from .cut_tree import build_cut_tree, star_cut
from .divide_conquer import divide_star_dfs, divide_td_dfs
from .division import Division, Part, divide_with_cut
from .edge_by_batch import edge_by_batch
from .edge_by_edge import edge_by_edge
from .merge import merge_division, splice_non_root_virtuals
from .restructure import RestructureOutcome, restructure
from .sgraph import SummaryGraph, contract_sigma_sccs, s_edge_endpoints

__all__ = [
    "BFSResult",
    "DFSResult",
    "Division",
    "Part",
    "RestructureOutcome",
    "RunResult",
    "SummaryGraph",
    "build_cut_tree",
    "contract_sigma_sccs",
    "default_max_passes",
    "divide_star_dfs",
    "divide_td_dfs",
    "divide_with_cut",
    "edge_by_batch",
    "edge_by_edge",
    "initial_star_tree",
    "merge_division",
    "restructure",
    "s_edge_endpoints",
    "semi_external_bfs",
    "splice_non_root_virtuals",
    "star_cut",
]
