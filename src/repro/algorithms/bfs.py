"""Semi-external breadth-first search — the DFS family's sibling traversal.

Wan & Han's semi-external BFS (arXiv:2507.12925) under this repo's cost
model: the only in-memory state is O(n) — a level array, a parent array,
and one pass's improvement proposals — while the edge set stays on disk
and is scanned block-by-block through the kernel layer.  Each *relaxation
pass* freezes the level array, streams every edge block through
``Kernel.relax_levels`` (``level[v] -> level[u] + 1`` where that
improves), and applies the merged proposals at the pass boundary; the
run converges when a pass improves nothing.

Freezing the levels per pass (Jacobi iteration, like the restructure
baseline's batch discipline) buys determinism: a pass's outcome depends
only on the levels entering it, so the result is bit-identical across
kernel backends, block codecs, and block sizes, and the pass count is
exactly ``depth(start) + 1`` — each pass settles one more BFS level, and
the final pass proves the fixpoint.

The BFS-tree is sealed through the run's artifact store
(:meth:`repro.serve.ArtifactStore.for_run`): a virtual root ``γ``
adopts the start node and every unreached node, each reached node hangs
under its BFS parent, and the manifest-bearing artifact is written to
the run's device inside a ``checkpoint`` span so the write I/Os tile.
``result.artifact_ref`` points at the published version directory.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..core.tree import SpanningTree
from ..errors import ConvergenceError
from ..graph.disk_graph import DiskGraph
from ..obs import Tracer
from ..serve.store import TREE_FILE, ArtifactStore
from .base import BFSResult, RunContext, default_max_passes

#: Level value marking an unreached node inside the kernel columns (the
#: public :class:`BFSResult` surfaces these as ``None``).
UNREACHED = -1


def _build_bfs_tree(
    context: RunContext,
    levels: List[int],
    parents: List[int],
    start: Optional[int],
) -> SpanningTree:
    """Materialize the γ-rooted BFS-tree from the level/parent arrays.

    γ's children are the start node followed by every unreached node in
    ascending id order (the same free-restart convention as the DFS
    initial star); each reached node's children appear in ascending id
    order, which is forced by the deterministic parent rule rather than
    chosen here.
    """
    gamma = context.allocator.allocate()
    parent_map: Dict[int, Optional[int]] = {gamma: None}
    children: Dict[int, List[int]] = {gamma: []}
    roots = [] if start is None else [start]
    roots += [v for v in range(len(levels)) if levels[v] == UNREACHED]
    children[gamma] = roots
    for v in roots:
        parent_map[v] = gamma
    for v in range(len(levels)):
        if levels[v] > 0:
            parent = parents[v]
            parent_map[v] = parent
            children.setdefault(parent, []).append(v)
    return SpanningTree.from_structure(gamma, parent_map, children, {gamma})


def _bfs_order(levels: List[int]) -> List[int]:
    """The level-sorted visit order: reached nodes by (level, id), then
    the unreached ones by id."""
    reached: List[Tuple[int, int]] = []
    unreached: List[int] = []
    for node in range(len(levels)):
        if levels[node] == UNREACHED:
            unreached.append(node)
        else:
            reached.append((levels[node], node))
    reached.sort()
    return [node for _, node in reached] + unreached


def semi_external_bfs(
    graph: DiskGraph,
    memory: int,
    start: Optional[int] = None,
    max_passes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    block_codec: Optional[str] = None,
) -> BFSResult:
    """Compute a BFS-tree of an on-disk graph under a memory budget.

    Args:
        graph: the graph on disk.
        memory: budget ``M`` in elements (``>= 3 * |V|``: levels,
            parents, and one pass's proposals).
        start: BFS source node (default 0).
        max_passes: cap on relaxation passes; defaults to ``2n + 16``
            (any reachable level settles within ``n`` passes).
        deadline_seconds: optional wall-clock limit, checked per block.
        tracer: a :class:`~repro.obs.Tracer` to receive the run's span
            events (one ``relax`` span per pass, one ``checkpoint`` span
            for the sealed BFS-tree artifact) and progress heartbeats.
        block_codec: edge-block codec for files written during the run.

    Returns:
        A :class:`~repro.algorithms.base.BFSResult`; ``levels[v]`` is
        ``None`` exactly when ``v`` is unreachable from ``start``, the
        parent of every reached non-start node is the scan-order-first
        tail among its minimal-level in-edges, and
        ``details["bfs_tree"]`` / the sealed artifact record the tree.

    Raises:
        ConvergenceError: the pass cap or the deadline was exceeded.
        ValueError: ``start`` out of range.
    """
    context = RunContext(
        graph, memory, "bfs", deadline_seconds, tracer,
        block_codec=block_codec,
    )
    node_count = graph.node_count
    try:
        if start is None and node_count:
            start = 0
        if start is not None and not 0 <= start < node_count:
            raise ValueError(f"start node {start} out of range")
        context.budget.charge("levels", node_count)
        context.budget.charge("parents", node_count)
        context.budget.charge("proposals", node_count)
        levels = [UNREACHED] * node_count
        parents = [UNREACHED] * node_count
        if start is not None:
            levels[start] = 0
        limit = (
            default_max_passes(node_count)
            if max_passes is None
            else max_passes
        )
        kernel = graph.device.kernel
        edge_file = graph.edge_file
        while True:
            context.check_deadline()
            if context.passes >= limit:
                raise ConvergenceError(
                    f"bfs did not converge within {limit} passes"
                )
            frozen = kernel.make_level_column(levels)
            # Merged proposals for this pass: v -> (level, parent).  The
            # strictly-less replacement mirrors the kernels' own rule, so
            # across blocks the winner is still the first edge in overall
            # scan order achieving the global minimum.
            best: Dict[int, Tuple[int, int]] = {}
            with context.tracer.span(
                "relax", nodes=node_count,
                kernel=kernel.name, codec=graph.device.block_codec,
            ) as span:
                for u_col, v_col in edge_file.scan_columns():
                    context.check_deadline()
                    for v, level, parent in kernel.relax_levels(
                        frozen, u_col, v_col
                    ):
                        previous = best.get(v)
                        if previous is None or level < previous[0]:
                            best[v] = (level, parent)
                span.annotate(
                    edges=edge_file.edge_count, improved=len(best),
                )
            context.passes += 1
            for v, (level, parent) in best.items():
                levels[v] = level
                parents[v] = parent
            context.bump("improvements", len(best))
            context.tracer.progress(
                algorithm="bfs", passes=context.passes, improved=len(best),
            )
            if not best:
                break
        tree = _build_bfs_tree(context, levels, parents, start)
        with context.tracer.span("checkpoint", nodes=node_count):
            ref = ArtifactStore.for_run(graph.device).publish_tree(
                tree, "bfs-tree", kind="bfs-tree", algorithm="bfs",
                node_count=node_count,
            )
        result = context.finish_result(
            BFSResult, tree,
            order=_bfs_order(levels),
            levels=[
                None if level == UNREACHED else level for level in levels
            ],
        )
        result.artifact_ref = ref.path
        result.details["bfs_tree"] = os.path.join(ref.path, TREE_FILE)  # type: ignore[index]
        return result
    finally:
        context.release()
