"""The merge algorithm (Algorithm 5).

Given the parts' DFS-Trees and the S-Graph Σ (a DAG over ``V(T_0)``), the
DFS-Tree of the whole graph is assembled without touching the edge file:

1. topologically sort Σ and reorder every sibling group of ``T_0`` in
   *reverse* topological order — every S-edge connects two siblings (the
   pushup fixpoint), so this single permutation turns each potential
   forward-cross S-edge into a backward-cross edge;
2. graft each part's DFS-Tree at its leaf of ``T_0``;
3. splice out the virtual contraction nodes (children promoted in place,
   Algorithm 5 lines 6–10).

Merge is tree-only by construction: it performs zero edge-file I/O (and
therefore has no row-at-a-time scan to vectorize) — every per-edge cost
of a division was already paid by the columnar kernels in
:mod:`repro.algorithms.division`.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.tree import SpanningTree
from .division import Division


def splice_non_root_virtuals(tree: SpanningTree) -> int:
    """Remove every attached virtual node except the root; returns count.

    Children are promoted into the removed node's position, so the tree's
    real-node preorder is unchanged.
    """
    victims = [
        node
        for node in tree.preorder()
        if tree.is_virtual(node) and node != tree.root
    ]
    for node in victims:
        tree.splice_out(node)
    return len(victims)


def merge_division(division: Division, part_trees: List[SpanningTree]) -> SpanningTree:
    """Merge the recursed part trees through ``T_0`` and Σ.

    Args:
        division: the division that produced the parts (Σ must be a DAG).
        part_trees: the DFS-Trees of the parts, in ``division.parts`` order;
            each must be rooted at its part's root.

    Returns:
        The merged DFS-Tree, with this level's contraction virtuals spliced
        out (the root is kept even if virtual — the caller owns it).
    """
    merged = division.t0.copy()

    # Step 1: reverse-topological sibling order.  The reverse topological
    # order is computed with the *current* sibling priority as the
    # tie-break (T_0's preorder rank), so wherever Σ leaves two siblings
    # unordered they keep their existing relative order — in particular
    # the start-node hint, which lives entirely in γ's child order,
    # survives division and reassembly instead of being re-sorted by id.
    priority: Dict[int, int] = {
        node: rank for rank, node in enumerate(merged.preorder())
    }
    sibling_rank: Dict[int, int] = {
        node: rank
        for rank, node in enumerate(
            division.sigma.reverse_topological_order(priority)
        )
    }
    for node in list(merged.preorder()):
        children = merged.child_list(node)
        if len(children) > 1:
            children.sort(key=lambda child: sibling_rank[child])
            merged.reorder_children(node, children)

    # Step 2: graft each part tree at its T_0 leaf.
    for part, part_tree in zip(division.parts, part_trees):
        if part_tree.root != part.root:
            raise ValueError(
                f"part {part.index} tree rooted at {part_tree.root}, "
                f"expected {part.root}"
            )
        for node in part_tree.preorder():
            if node == part.root:
                continue
            merged.add_node(node, virtual=part_tree.is_virtual(node))
            merged.attach(node, part_tree.parent[node])

    # Step 3: splice out virtual nodes (contraction nodes and any virtual
    # part roots), keeping the merged root for the caller.
    splice_non_root_virtuals(merged)
    return merged
