"""Core data structures: ordered spanning trees, edge classification,
in-memory DFS/SCC/topological sort, and DFS-Tree validation."""

from .classify import EdgeType, IntervalIndex
from .inmemory import (
    adjacency_from_edge_file,
    dfs_preferring_tree,
    tarjan_scc,
    topological_sort,
)
from .order import classify_edge_dynamic, compare_preorder, find_lca, is_ancestor
from .tree import SpanningTree, VirtualNodeAllocator
from .tree_io import load_tree, save_tree
from .validation import (
    DFSTreeReport,
    TreeCheckResult,
    check_spanning_tree,
    real_preorder,
    verify_dfs_tree,
    verify_dfs_tree_inmemory,
)

__all__ = [
    "DFSTreeReport",
    "EdgeType",
    "IntervalIndex",
    "SpanningTree",
    "TreeCheckResult",
    "VirtualNodeAllocator",
    "check_spanning_tree",
    "classify_edge_dynamic",
    "compare_preorder",
    "adjacency_from_edge_file",
    "dfs_preferring_tree",
    "find_lca",
    "is_ancestor",
    "load_tree",
    "real_preorder",
    "save_tree",
    "tarjan_scc",
    "topological_sort",
    "verify_dfs_tree",
    "verify_dfs_tree_inmemory",
]
