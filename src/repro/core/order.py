"""Dynamic order queries on a mutating spanning tree.

EdgeByEdge restructures the tree after (potentially) *every* edge it reads,
so a static preorder index would be rebuilt O(m) times — exactly the
"maintaining a total order is expensive" drawback the paper calls out for
the existing solutions.  This module answers ancestor / preorder-comparison
queries directly from the live tree in O(depth) per query, with no global
renumbering:

* the LCA is found by walking both root paths;
* for order-incomparable nodes, the preorder comparison reduces to the
  *sibling keys* of the two LCA children on the respective paths —
  sibling keys are monotone within a sibling group by construction
  (:mod:`repro.core.tree`), so one integer comparison decides.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import InvalidGraphError
from .classify import EdgeType
from .tree import SpanningTree


def root_path(tree: SpanningTree, node: int) -> List[int]:
    """The path ``[node, parent, ..., root]``."""
    path = [node]
    parent = tree.parent.get(node)
    if parent is None and node != tree.root:
        if node not in tree.parent:
            raise InvalidGraphError(f"unknown node {node}")
        raise InvalidGraphError(f"node {node} is detached")
    while parent is not None:
        path.append(parent)
        parent = tree.parent[parent]
    return path


def find_lca(tree: SpanningTree, u: int, v: int) -> Tuple[int, Optional[int], Optional[int]]:
    """The LCA of ``u`` and ``v`` plus the LCA children on each path.

    Returns:
        ``(w, a, b)`` where ``w`` is the lowest common ancestor, ``a`` is
        the child of ``w`` on the path to ``u`` (``None`` when ``w == u``),
        and ``b`` likewise for ``v``.
    """
    path_u = root_path(tree, u)
    on_path_u = {node: index for index, node in enumerate(path_u)}
    current = v
    child_on_v_side: Optional[int] = None
    while current not in on_path_u:
        child_on_v_side = current
        current = tree.parent[current]
        if current is None:  # pragma: no cover - disconnected trees are invalid
            raise InvalidGraphError(f"nodes {u} and {v} have no common ancestor")
    lca = current
    index = on_path_u[lca]
    child_on_u_side = path_u[index - 1] if index > 0 else None
    return lca, child_on_u_side, child_on_v_side


def is_ancestor(tree: SpanningTree, u: int, v: int) -> bool:
    """Whether ``u`` is an ancestor of ``v`` (nodes are self-ancestors)."""
    current: Optional[int] = v
    while current is not None:
        if current == u:
            return True
        current = tree.parent[current]
    return False


def compare_preorder(tree: SpanningTree, u: int, v: int) -> int:
    """Sign of ``pre(u) - pre(v)`` on the live tree.

    Returns -1 when ``u`` precedes ``v``, +1 when it follows, 0 when equal.
    An ancestor always precedes its descendants.
    """
    if u == v:
        return 0
    lca, child_u, child_v = find_lca(tree, u, v)
    if child_u is None:  # u == lca: u is an ancestor of v
        return -1
    if child_v is None:  # v == lca
        return 1
    return -1 if tree.sibling_key[child_u] < tree.sibling_key[child_v] else 1


def classify_edge_dynamic(tree: SpanningTree, u: int, v: int) -> EdgeType:
    """Classify edge ``(u, v)`` against the live (possibly mutating) tree.

    Semantics match :meth:`repro.core.classify.IntervalIndex.classify`, at
    O(depth) per call instead of O(1)-after-O(n)-rebuild.
    """
    if tree.parent.get(v) == u:
        return EdgeType.TREE
    if u == v:
        return EdgeType.BACKWARD
    lca, child_u, child_v = find_lca(tree, u, v)
    if child_u is None:  # u is a strict ancestor of v
        return EdgeType.FORWARD
    if child_v is None:  # v is a strict ancestor of u
        return EdgeType.BACKWARD
    if tree.sibling_key[child_u] < tree.sibling_key[child_v]:
        return EdgeType.FORWARD_CROSS
    return EdgeType.BACKWARD_CROSS
