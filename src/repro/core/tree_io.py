"""Spanning-tree persistence: checkpoint the in-memory tree to the device.

Semi-external DFS runs can be long (the paper's experiments run for
hours); the only in-memory state the algorithms carry between passes is
the spanning tree, so checkpointing it makes a run resumable.  A tree
over ``n`` nodes serializes to ``3`` ints per node (node, parent,
virtual flag) plus a small header, costing ``ceil(3n / B)`` write I/Os —
the same unit the algorithms are charged in.

Format (little-endian int32 stream)::

    MAGIC  root  count  [node parent flags] * count

Nodes are emitted in preorder, so reconstruction by appending children
reproduces the sibling order exactly.

The module-level :func:`write_tree_blob` / :func:`read_tree_blob` pair
is the raw wire format, used by :mod:`repro.serve.store` as the tree
payload *inside* a manifest-bearing artifact directory.  The historical
:func:`save_tree` / :func:`load_tree` entry points write the same bytes
but as a bare, unversioned file with no manifest — they still work, but
are deprecated in favour of publishing through
:class:`repro.serve.ArtifactStore`.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import StorageError
from ..storage.block_device import BlockDevice
from ..storage.serialization import pack_ints, unpack_ints
from .tree import SpanningTree

#: Format marker ("DFS1" as an int, little-endian).
MAGIC = 0x44465331

_NO_PARENT = -1
_FLAG_VIRTUAL = 1

#: Deprecated entry points that have already warned this process.
_WARNED_BLOB_API: Set[str] = set()


def _warn_bare_blob(name: str) -> None:
    if name in _WARNED_BLOB_API:
        return
    _WARNED_BLOB_API.add(name)
    warnings.warn(
        f"{name}() reads/writes a bare, unversioned tree blob; publish "
        "and open sealed trees through repro.serve.ArtifactStore instead "
        "(manifest, checksums, versioning)",
        DeprecationWarning,
        stacklevel=3,
    )


def tree_columns(tree: SpanningTree) -> Tuple[int, List[int], List[int], List[int]]:
    """Decompose ``tree`` into ``(root, nodes, parents, flags)`` columns.

    Nodes appear in preorder (so sibling order is recoverable by
    appending), ``parents`` uses ``-1`` for the root, and ``flags``
    carries the virtual bit.  This is the columnar form the
    shared-memory worker boundary moves across the process line; the
    row-oriented wire format below is a zip of the same columns.

    Only the part of the tree reachable from the root is emitted
    (detached nodes are transient algorithm state, never
    checkpoint-worthy).

    Raises:
        StorageError: when the tree has no root.
    """
    if tree.root is None:
        raise StorageError("cannot save a rootless tree")
    nodes: List[int] = []
    parents: List[int] = []
    flags: List[int] = []
    for node in tree.preorder():
        parent = tree.parent[node]
        nodes.append(node)
        parents.append(_NO_PARENT if parent is None else parent)
        flags.append(_FLAG_VIRTUAL if tree.is_virtual(node) else 0)
    return tree.root, nodes, parents, flags


def tree_from_columns(
    root: int,
    nodes: Sequence[int],
    parents: Sequence[int],
    flags: Sequence[int],
    context: str = "tree columns",
) -> SpanningTree:
    """Rebuild a tree from :func:`tree_columns` output.

    Raises:
        StorageError: mismatched column lengths.
    """
    if len(nodes) != len(parents) or len(nodes) != len(flags):
        raise StorageError(f"{context}: mismatched tree column lengths")
    return SpanningTree.from_preorder(
        root, nodes, parents, flags, no_parent=_NO_PARENT
    )


def tree_values(tree: SpanningTree) -> List[int]:
    """Serialize ``tree`` to its int32 wire values (header + triples).

    Raises:
        StorageError: when the tree has no root.
    """
    root, nodes, parents, flags = tree_columns(tree)
    values = [MAGIC, root, len(nodes)]
    for triple in zip(nodes, parents, flags):
        values.extend(triple)
    return values


def tree_from_values(values: List[int], context: str) -> SpanningTree:
    """Reconstruct a tree from its wire values (see :func:`tree_values`).

    Raises:
        StorageError: on a bad magic number or truncated value stream.
    """
    if len(values) < 3 or values[0] != MAGIC:
        raise StorageError(f"{context} is not a tree checkpoint")
    root, count = values[1], values[2]
    expected = 3 + 3 * count
    if len(values) < expected:
        raise StorageError(
            f"{context} truncated: expected {expected} values, got {len(values)}"
        )
    body = values[3:expected]
    return tree_from_columns(
        root, body[0::3], body[1::3], body[2::3], context=context
    )


def write_tree_blob(device: BlockDevice, tree: SpanningTree, path: str) -> None:
    """Write ``tree`` to ``path`` as CRC-framed blocks on ``device``."""
    values = tree_values(tree)
    block_values = device.block_elements
    # repro: allow[SEX101] checkpoint frames flow through device.write_block, so every block IS charged
    with open(path, "wb") as handle:
        for start in range(0, len(values), block_values):
            device.write_block(
                handle, pack_ints(values[start : start + block_values]),
                context=path,
            )


def read_tree_blob(device: BlockDevice, path: str) -> SpanningTree:
    """Read a tree written by :func:`write_tree_blob` (I/O-counted).

    Raises:
        StorageError: on a bad magic number, truncated file, or (via
            :class:`~repro.errors.CorruptBlockError`) a block whose
            checksum no longer matches.
    """
    values: List[int] = []
    # repro: allow[SEX101] checkpoint frames flow through device.read_block, so every block IS charged
    with open(path, "rb") as handle:
        while True:
            chunk = device.read_block(handle, context=path)
            if chunk is None:
                break
            values.extend(unpack_ints(chunk))
    return tree_from_values(values, context=path)


def save_tree(
    device: BlockDevice, tree: SpanningTree, name: Optional[str] = None
) -> str:
    """Write ``tree`` to a new bare blob on ``device``; returns the path.

    .. deprecated::
        Bare blobs carry no manifest, checksum, or version.  Publish
        through :class:`repro.serve.ArtifactStore` instead; this wrapper
        warns once per process and will eventually be removed.

    Raises:
        StorageError: when the tree has no root.
    """
    _warn_bare_blob("save_tree")
    path = device.allocate_path(name, suffix=".tree")
    write_tree_blob(device, tree, path)
    return path


def load_tree(device: BlockDevice, path: str) -> SpanningTree:
    """Reconstruct a tree written by :func:`save_tree` (I/O-counted).

    Reading a *legacy* bare blob still works — artifact tree payloads
    use the identical wire format — but new code should open artifacts
    by name through :class:`repro.serve.ArtifactStore`.

    Raises:
        StorageError: on a bad magic number, truncated file, or (via
            :class:`~repro.errors.CorruptBlockError`) a block whose
            checksum no longer matches.
    """
    _warn_bare_blob("load_tree")
    return read_tree_blob(device, path)
