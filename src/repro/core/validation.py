"""Validators: spanning-tree structure and the DFS-Tree property.

``verify_dfs_tree`` is the ground truth every algorithm is tested against:
it scans the full edge set (paying real I/O when the graph is on disk) and
asserts the defining property of a DFS-Tree — **no forward-cross edges**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..graph.digraph import Digraph
from ..graph.disk_graph import DiskGraph
from .classify import EdgeType, IntervalIndex
from .tree import SpanningTree

Edge = Tuple[int, int]


@dataclass
class TreeCheckResult:
    """Outcome of :func:`check_spanning_tree`."""

    ok: bool
    problems: List[str] = field(default_factory=list)


def check_spanning_tree(tree: SpanningTree, node_ids: Iterable[int]) -> TreeCheckResult:
    """Structural check: rooted, acyclic, spans exactly ``node_ids``.

    Virtual nodes are allowed anywhere in the tree; ``node_ids`` are the
    *real* nodes that must all be present and reachable from the root.
    """
    problems: List[str] = []
    required = set(node_ids)
    if tree.root is None:
        return TreeCheckResult(False, ["tree has no root"])

    reachable = set()
    for node in tree.preorder():
        if node in reachable:
            problems.append(f"node {node} visited twice in preorder")
            break
        reachable.add(node)

    missing = required - reachable
    if missing:
        sample = sorted(missing)[:5]
        problems.append(f"{len(missing)} required nodes unreachable, e.g. {sample}")

    extra_real = {
        node for node in reachable if node not in required and not tree.is_virtual(node)
    }
    if extra_real:
        sample = sorted(extra_real)[:5]
        problems.append(f"non-virtual nodes outside the node set: {sample}")

    # parent/child link consistency
    for node in reachable:
        for child in tree.children(node):
            if tree.parent.get(child) != node:
                problems.append(f"child link {node}->{child} without matching parent link")
    return TreeCheckResult(not problems, problems)


@dataclass
class DFSTreeReport:
    """Outcome of a DFS-Tree verification scan.

    Attributes:
        ok: whether no forward-cross edge was found.
        forward_cross_count: number of forward-cross edges seen.
        first_offender: the first forward-cross edge, if any.
        counts: edges seen per :class:`~repro.core.classify.EdgeType`.
            **Self-loops are counted as** ``BACKWARD`` **without consulting
            the interval index**: ``(u, u)`` is trivially an edge to an
            ancestor-or-self, it can never be forward-cross, and the index
            does not define the relation of a node to itself.  Graphs with
            many self-loops therefore report them all under ``BACKWARD``;
            the dedicated ``self_loops`` field separates them back out.
        self_loops: how many of the ``BACKWARD`` edges were ``(u, u)``
            self-loops.
    """

    ok: bool
    forward_cross_count: int
    first_offender: Optional[Edge]
    counts: Dict[EdgeType, int]
    self_loops: int = 0

    def __bool__(self) -> bool:
        return self.ok


def _classify_stream(
    edges: Iterable[Edge], tree: SpanningTree, stop_early: bool
) -> DFSTreeReport:
    index = IntervalIndex(tree)
    counts: Dict[EdgeType, int] = {kind: 0 for kind in EdgeType}
    forward_cross = 0
    self_loops = 0
    first: Optional[Edge] = None
    for u, v in edges:
        if u == v:
            # Self-loop special case: classified BACKWARD by definition,
            # bypassing the index (see DFSTreeReport.counts).
            counts[EdgeType.BACKWARD] += 1
            self_loops += 1
            continue
        kind = index.classify(u, v)
        counts[kind] += 1
        if kind is EdgeType.FORWARD_CROSS:
            forward_cross += 1
            if first is None:
                first = (u, v)
            if stop_early:
                break
    return DFSTreeReport(
        forward_cross == 0, forward_cross, first, counts, self_loops
    )


def verify_dfs_tree(
    graph: DiskGraph, tree: SpanningTree, stop_early: bool = False
) -> DFSTreeReport:
    """Scan the on-disk edge set; report forward-cross edges w.r.t. ``tree``.

    The scan pays real (simulated) I/O, exactly like the algorithms do.
    """
    return _classify_stream(graph.scan(), tree, stop_early)


def verify_dfs_tree_inmemory(
    graph: Digraph, tree: SpanningTree, stop_early: bool = False
) -> DFSTreeReport:
    """In-memory variant of :func:`verify_dfs_tree`."""
    return _classify_stream(graph.edges(), tree, stop_early)


def real_preorder(tree: SpanningTree) -> List[int]:
    """The tree's preorder with virtual nodes removed — the DFS total order."""
    return [node for node in tree.preorder() if not tree.is_virtual(node)]
