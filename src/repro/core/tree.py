"""The ordered spanning tree held in memory by every semi-external algorithm.

A DFS-Tree is an *ordered* spanning tree: sibling order is part of the
result, because the preorder it induces is the DFS total order.  This module
provides :class:`SpanningTree`, an ordered rooted tree over arbitrary integer
node ids with O(1) structural mutations:

* children form a doubly-linked sibling list (``first_child`` /
  ``next_sibling`` / ...), so detach / attach-first / attach-last are O(1)
  even for the virtual root with ``n`` children;
* every node carries a *sibling key*, monotone within its sibling group
  (appends get increasing keys, prepends decreasing ones), so two siblings'
  relative order is a single integer comparison — the primitive the dynamic
  edge classifier (:mod:`repro.core.order`) builds on.

Virtual nodes (the global root ``γ`` and SCC-contraction nodes) are ordinary
tree nodes flagged virtual; they are allocated by
:class:`VirtualNodeAllocator` so ids never collide across recursion levels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import InvalidGraphError


class VirtualNodeAllocator:
    """Hands out fresh virtual node ids above the real node range."""

    def __init__(self, first_id: int) -> None:
        self._next = first_id

    def allocate(self) -> int:
        """Return a fresh, never-before-used virtual node id."""
        node = self._next
        self._next += 1
        return node

    @property
    def next_id(self) -> int:
        """The id the next :meth:`allocate` call will return."""
        return self._next


class SpanningTree:
    """An ordered rooted tree over integer node ids.

    Nodes must be added (:meth:`add_node`) before they can be attached.
    The tree tracks which nodes are *virtual* (``γ`` / contraction nodes);
    everything else is a real graph node.
    """

    __slots__ = (
        "parent",
        "first_child",
        "last_child",
        "next_sibling",
        "prev_sibling",
        "sibling_key",
        "_next_key",
        "_min_key",
        "root",
        "virtual",
    )

    def __init__(self) -> None:
        self.parent: Dict[int, Optional[int]] = {}
        self.first_child: Dict[int, Optional[int]] = {}
        self.last_child: Dict[int, Optional[int]] = {}
        self.next_sibling: Dict[int, Optional[int]] = {}
        self.prev_sibling: Dict[int, Optional[int]] = {}
        self.sibling_key: Dict[int, int] = {}
        self._next_key: Dict[int, int] = {}
        self._min_key: Dict[int, int] = {}
        self.root: Optional[int] = None
        self.virtual: Set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def initial_star(
        cls,
        node_ids: Iterable[int],
        virtual_root: int,
        order: Optional[Sequence[int]] = None,
    ) -> "SpanningTree":
        """The paper's initial spanning tree: virtual ``γ`` over all nodes.

        Args:
            order: optional visit order for the children; defaults to sorted
                node id order.  Putting a chosen start node first makes the
                DFS begin there (the paper's Exp-6 treatment).
        """
        tree = cls()
        tree.add_node(virtual_root, virtual=True)
        tree.root = virtual_root
        children = list(order) if order is not None else sorted(node_ids)
        if order is not None and set(children) != set(node_ids):
            raise InvalidGraphError("order must be a permutation of node_ids")
        for node in children:
            tree.add_node(node)
            tree.attach(node, virtual_root)
        return tree

    @classmethod
    def from_structure(
        cls,
        root: int,
        parent: Dict[int, Optional[int]],
        children_in_order: Dict[int, List[int]],
        virtual: Set[int],
    ) -> "SpanningTree":
        """Bulk-build a tree from parent links and ordered child lists.

        Semantically identical to ``add_node`` + ``attach``-in-order, but
        an order of magnitude cheaper — this is the constructor the
        restructure hot path uses to materialize each batch's new tree.

        Args:
            parent: parent of every node (``None`` for the root).
            children_in_order: children per node, in sibling order; nodes
                without children may be omitted.
            virtual: the virtual-node subset.
        """
        tree = cls()
        tree.root = root
        tree.parent = dict(parent)
        tree.virtual = set(virtual)
        first_child: Dict[int, Optional[int]] = dict.fromkeys(parent, None)
        last_child: Dict[int, Optional[int]] = dict.fromkeys(parent, None)
        next_sibling: Dict[int, Optional[int]] = dict.fromkeys(parent, None)
        prev_sibling: Dict[int, Optional[int]] = dict.fromkeys(parent, None)
        sibling_key: Dict[int, int] = dict.fromkeys(parent, 0)
        next_key: Dict[int, int] = dict.fromkeys(parent, 0)
        for node, children in children_in_order.items():
            if not children:
                continue
            first_child[node] = children[0]
            last_child[node] = children[-1]
            next_key[node] = len(children)
            previous = None
            for key, child in enumerate(children, start=1):
                sibling_key[child] = key
                prev_sibling[child] = previous
                if previous is not None:
                    next_sibling[previous] = child
                previous = child
        tree.first_child = first_child
        tree.last_child = last_child
        tree.next_sibling = next_sibling
        tree.prev_sibling = prev_sibling
        tree.sibling_key = sibling_key
        tree._next_key = next_key
        tree._min_key = dict.fromkeys(parent, 0)
        return tree

    @classmethod
    def from_preorder(
        cls,
        root: int,
        nodes: Sequence[int],
        parents: Sequence[int],
        virtual_flags: Sequence[int],
        no_parent: int = -1,
    ) -> "SpanningTree":
        """Build a tree from parallel preorder columns.

        The columnar twin of the ``add_node`` + ``attach`` wire-format
        loop: ``nodes`` lists every node in preorder, ``parents[i]`` is
        the parent of ``nodes[i]`` (``no_parent`` for the root), and a
        nonzero ``virtual_flags[i]`` marks a virtual node.  Because
        preorder lists each sibling group in sibling order, appending
        children per parent reproduces sibling keys 1..n exactly as the
        attach loop would.  This is the constructor the shared-memory
        worker boundary uses on both sides of the process line.

        Raises:
            InvalidGraphError: mismatched column lengths or duplicates.
        """
        if len(nodes) != len(parents) or len(nodes) != len(virtual_flags):
            raise InvalidGraphError(
                "preorder columns must have equal lengths, got "
                f"{len(nodes)}/{len(parents)}/{len(virtual_flags)}"
            )
        parent_map: Dict[int, Optional[int]] = {}
        children: Dict[int, List[int]] = {}
        virtual: Set[int] = set()
        for raw_node, raw_parent, flags in zip(nodes, parents, virtual_flags):
            node = int(raw_node)
            parent = int(raw_parent)
            if node in parent_map:
                raise InvalidGraphError(f"node {node} listed twice in preorder")
            if parent == no_parent:
                parent_map[node] = None
            else:
                parent_map[node] = parent
                children.setdefault(parent, []).append(node)
            if flags:
                virtual.add(node)
        return cls.from_structure(int(root), parent_map, children, virtual)

    def add_node(self, node: int, virtual: bool = False) -> None:
        """Register ``node`` as an isolated (detached) tree node."""
        if node in self.parent:
            raise InvalidGraphError(f"node {node} already in tree")
        self.parent[node] = None
        self.first_child[node] = None
        self.last_child[node] = None
        self.next_sibling[node] = None
        self.prev_sibling[node] = None
        self.sibling_key[node] = 0
        self._next_key[node] = 0
        self._min_key[node] = 0
        if virtual:
            self.virtual.add(node)

    def __contains__(self, node: int) -> bool:
        return node in self.parent

    def __len__(self) -> int:
        return len(self.parent)

    @property
    def nodes(self) -> Iterable[int]:
        """All node ids registered in the tree (attached or not)."""
        return self.parent.keys()

    def is_virtual(self, node: int) -> bool:
        """Whether ``node`` is a virtual (γ / contraction) node."""
        return node in self.virtual

    # ------------------------------------------------------------------
    # structural mutation (all O(1))
    # ------------------------------------------------------------------
    def attach(self, child: int, parent: int, first: bool = False) -> None:
        """Attach a detached ``child`` under ``parent``.

        Appends to the sibling list by default; prepends when ``first``.
        """
        if self.parent.get(child, "missing") is not None:
            if child not in self.parent:
                raise InvalidGraphError(f"unknown node {child}")
            raise InvalidGraphError(f"node {child} is already attached")
        if parent not in self.parent:
            raise InvalidGraphError(f"unknown parent {parent}")
        self.parent[child] = parent
        if first:
            self._min_key[parent] -= 1
            self.sibling_key[child] = self._min_key[parent]
            old_first = self.first_child[parent]
            self.next_sibling[child] = old_first
            self.prev_sibling[child] = None
            if old_first is not None:
                self.prev_sibling[old_first] = child
            self.first_child[parent] = child
            if self.last_child[parent] is None:
                self.last_child[parent] = child
        else:
            self._next_key[parent] += 1
            self.sibling_key[child] = self._next_key[parent]
            old_last = self.last_child[parent]
            self.prev_sibling[child] = old_last
            self.next_sibling[child] = None
            if old_last is not None:
                self.next_sibling[old_last] = child
            self.last_child[parent] = child
            if self.first_child[parent] is None:
                self.first_child[parent] = child

    def detach(self, node: int) -> None:
        """Detach ``node`` (with its whole subtree) from its parent."""
        parent = self.parent.get(node)
        if parent is None:
            if node not in self.parent:
                raise InvalidGraphError(f"unknown node {node}")
            raise InvalidGraphError(f"node {node} is not attached")
        before = self.prev_sibling[node]
        after = self.next_sibling[node]
        if before is not None:
            self.next_sibling[before] = after
        else:
            self.first_child[parent] = after
        if after is not None:
            self.prev_sibling[after] = before
        else:
            self.last_child[parent] = before
        self.parent[node] = None
        self.prev_sibling[node] = None
        self.next_sibling[node] = None

    def reattach(self, node: int, new_parent: int, first: bool = False) -> None:
        """Move ``node`` (with its subtree) under ``new_parent``.

        The caller must ensure ``new_parent`` is not inside ``node``'s
        subtree; the EdgeByEdge restructuring rule guarantees this because
        a forward-cross edge's endpoints are order-incomparable.
        """
        self.detach(node)
        self.attach(node, new_parent, first=first)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def children(self, node: int) -> Iterator[int]:
        """Iterate ``node``'s children in sibling order."""
        child = self.first_child.get(node)
        if child is None and node not in self.parent:
            raise InvalidGraphError(f"unknown node {node}")
        while child is not None:
            yield child
            child = self.next_sibling[child]

    def child_list(self, node: int) -> List[int]:
        """``node``'s children in sibling order, as a list."""
        return list(self.children(node))

    def preorder(self, start: Optional[int] = None) -> Iterator[int]:
        """Iterative preorder traversal from ``start`` (default: root)."""
        node = self.root if start is None else start
        if node is None:
            return
        stack = [node]
        first_child = self.first_child
        next_sibling = self.next_sibling
        stop_parent = self.parent.get(node)
        while stack:
            current = stack.pop()
            yield current
            # Push the next sibling (resume point) before descending.
            sibling = next_sibling[current]
            if sibling is not None and self.parent[current] != stop_parent:
                stack.append(sibling)
            child = first_child[current]
            if child is not None:
                stack.append(child)

    def subtree(self, node: int) -> Iterator[int]:
        """All nodes of the subtree rooted at ``node`` (preorder)."""
        return self.preorder(start=node)

    def postorder(self, start: Optional[int] = None) -> Iterator[int]:
        """Iterative postorder traversal (the DFS *finish* order)."""
        node = self.root if start is None else start
        if node is None:
            return
        stack = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                yield current
                continue
            stack.append((current, True))
            for child in reversed(self.child_list(current)):
                stack.append((child, False))

    def depth_of(self, node: int) -> int:
        """Distance from ``node`` to the root (O(depth))."""
        depth = 0
        current = self.parent.get(node)
        if current is None and node != self.root and node in self.parent:
            raise InvalidGraphError(f"node {node} is detached")
        while current is not None:
            depth += 1
            current = self.parent[current]
        return depth

    def tree_edges(self) -> Iterator[Tuple[int, int]]:
        """All ``(parent, child)`` tree edges reachable from the root."""
        for node in self.preorder():
            parent = self.parent[node]
            if parent is not None:
                yield (parent, node)

    # ------------------------------------------------------------------
    # sibling-group surgery (used by Merge)
    # ------------------------------------------------------------------
    def reorder_children(self, parent: int, ordered: Sequence[int]) -> None:
        """Replace ``parent``'s sibling order with ``ordered``.

        ``ordered`` must be a permutation of the current children.
        """
        current = self.child_list(parent)
        if sorted(current) != sorted(ordered):
            raise InvalidGraphError(
                "reorder_children requires a permutation of the current children"
            )
        for child in current:
            self.detach(child)
        for child in ordered:
            self.attach(child, parent)

    def splice_out(self, node: int) -> None:
        """Remove virtual ``node``, promoting its children into its place.

        Implements Algorithm 5 lines 6–10: the children take ``node``'s
        position in its parent's sibling order, preserving both the parent
        group's order and the children's relative order.
        """
        parent = self.parent.get(node)
        if parent is None:
            raise InvalidGraphError(f"cannot splice out the root or detached node {node}")
        grand_children = self.child_list(node)
        siblings = self.child_list(parent)
        position = siblings.index(node)
        new_order = siblings[:position] + grand_children + siblings[position + 1 :]
        for child in grand_children:
            self.detach(child)
        self.detach(node)
        # Rebuild the parent's sibling group in the new order.
        for child in self.child_list(parent):
            self.detach(child)
        for child in new_order:
            self.attach(child, parent)
        self._remove_node(node)

    def _remove_node(self, node: int) -> None:
        """Forget a detached, childless node entirely."""
        if self.first_child[node] is not None:
            raise InvalidGraphError(f"node {node} still has children")
        for mapping in (
            self.parent,
            self.first_child,
            self.last_child,
            self.next_sibling,
            self.prev_sibling,
            self.sibling_key,
            self._next_key,
            self._min_key,
        ):
            mapping.pop(node, None)
        self.virtual.discard(node)

    # ------------------------------------------------------------------
    def copy(self) -> "SpanningTree":
        """A structural deep copy (shares no mutable state)."""
        clone = SpanningTree()
        clone.parent = dict(self.parent)
        clone.first_child = dict(self.first_child)
        clone.last_child = dict(self.last_child)
        clone.next_sibling = dict(self.next_sibling)
        clone.prev_sibling = dict(self.prev_sibling)
        clone.sibling_key = dict(self.sibling_key)
        clone._next_key = dict(self._next_key)
        clone._min_key = dict(self._min_key)
        clone.root = self.root
        clone.virtual = set(self.virtual)
        return clone

    def __repr__(self) -> str:
        return (
            f"SpanningTree(nodes={len(self.parent)}, root={self.root}, "
            f"virtual={len(self.virtual)})"
        )
