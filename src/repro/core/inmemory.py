"""In-memory graph algorithms: tree-preferring DFS, Tarjan SCC, topo sort.

The central routine is :func:`dfs_preferring_tree` — the in-memory DFS that
Algorithm 1's Restructure applies to ``G_M = T ∪ (batch edges)``.  Its
adjacency order lists the current tree children *first, in their current
sibling order*, then the batch edges, implementing the paper's note that
"DFS should visit the nodes which stay in memory before newly loaded ones":
when the batch forces no change, the DFS reproduces ``T`` exactly.

The DFS stack holds plain node ids; when a device is passed, its spill
I/O is accounted inline with the exact semantics of
:class:`~repro.storage.external_stack.ExternalStack` — the external-memory
stack the paper charges to SEMI-DFS in its Exp-1/Exp-5 discussions.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import InvalidGraphError, NotADAGError
from ..storage.block_device import BlockDevice
from .tree import SpanningTree

Adjacency = Mapping[int, Sequence[int]]

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..storage.edge_file import EdgeFile


def adjacency_from_edge_file(edge_file: "EdgeFile") -> Dict[int, List[int]]:
    """Materialize an edge file's adjacency for an in-memory solve.

    This is the *designated* loader for the divide & conquer base case:
    the recursion calls it only after proving ``|V_i| + |E_i| ≤ M``, so
    the materialization is exactly the memory the model already budgets
    for the part.  Self-loops are dropped (they never affect a DFS
    tree).  Outside this module, accumulating scan output into memory is
    a conformance violation (SEX201/SEX211) — route base cases here.
    """
    adjacency: Dict[int, List[int]] = {}
    for u_col, v_col in edge_file.scan_columns():
        # tolist() re-materializes backend columns (numpy ndarray or
        # stdlib array) as plain python ints in one call, keeping
        # foreign int types out of the adjacency dict and the tree.
        for u, v in zip(u_col.tolist(), v_col.tolist()):
            if u == v:
                continue
            targets = adjacency.get(u)
            if targets is None:
                adjacency[u] = [v]
            else:
                targets.append(v)
    return adjacency


def dfs_preferring_tree(
    tree: SpanningTree,
    extra_adjacency: Optional[Adjacency] = None,
    stack_device: Optional[BlockDevice] = None,
) -> SpanningTree:
    """DFS over ``G_M = tree ∪ extra_adjacency``; returns the new DFS tree.

    Args:
        tree: the current in-memory spanning tree (spans every node, so the
            DFS reaches every node from ``tree.root``).
        extra_adjacency: the batch's non-tree out-edges per node; targets
            must be nodes of ``tree``.
        stack_device: when given, stack-spill I/Os are charged to that
            device exactly as an
            :class:`~repro.storage.external_stack.ExternalStack` would
            (page = one block, two hot pages).

    Returns:
        A fresh :class:`SpanningTree` over the same node set (virtual flags
        preserved), whose preorder is the DFS visit order.  The result has
        no forward-cross edges w.r.t. any edge of ``G_M``.
    """
    root = tree.root
    if root is None:
        raise InvalidGraphError("tree has no root")
    extra = extra_adjacency or {}

    # Adjacency is materialized lazily on first visit: current tree
    # children first (their sibling order is the memory-resident visit
    # preference), then batch edges.
    first_child = tree.first_child
    next_sibling = tree.next_sibling
    node_count = len(tree.parent)

    adjacency: Dict[int, List[int]] = {}
    next_index: Dict[int, int] = {}
    new_parent: Dict[int, Optional[int]] = {root: None}
    children_acc: Dict[int, List[int]] = {}
    visited = {root}

    def targets_of(node: int) -> List[int]:
        targets: List[int] = []
        child = first_child[node]
        while child is not None:
            targets.append(child)
            child = next_sibling[child]
        batch_targets = extra.get(node)
        if batch_targets:
            targets.extend(batch_targets)
        adjacency[node] = targets
        next_index[node] = 0
        return targets

    # The node stack is a plain list; when `stack_device` is given its
    # spill I/O is accounted inline with the exact semantics of
    # :class:`ExternalStack` (page size = block, 2 hot pages): a write
    # when a push crosses a page boundary beyond the hot region, a read
    # when pops drain the hot region while pages remain spilled.  The
    # integer arithmetic costs nothing against routing 2 function calls
    # per DFS step through the stack object.
    page = stack_device.block_elements if stack_device is not None else 0
    hot_capacity = 2 * page  # ExternalStack's default hot_pages = 2
    hot_elements = 0
    spilled_pages = 0
    spill_writes = 0
    spill_reads = 0

    plain_stack: List[int] = []
    stack_append = plain_stack.append
    stack_pop = plain_stack.pop

    targets_of(root)
    stack_append(root)
    if page:
        hot_elements = 1
    while plain_stack:
        node = stack_pop()
        if page:
            if hot_elements == 0 and spilled_pages:
                spilled_pages -= 1
                spill_reads += 1
                hot_elements = page
            hot_elements -= 1
        targets = adjacency[node]
        index = next_index[node]
        child = None
        while index < len(targets):
            candidate = targets[index]
            index += 1
            if candidate not in visited:
                child = candidate
                break
        next_index[node] = index
        if child is not None:
            visited.add(child)
            new_parent[child] = node
            acc = children_acc.get(node)
            if acc is None:
                children_acc[node] = [child]
            else:
                acc.append(child)
            targets_of(child)
            stack_append(node)  # resume `node` after the child's subtree
            stack_append(child)
            if page:
                for _ in range(2):
                    if hot_elements == hot_capacity:
                        spilled_pages += 1
                        spill_writes += 1
                        hot_elements -= page
                    hot_elements += 1
    if stack_device is not None and (spill_writes or spill_reads):
        stack_device.stats.add_writes(spill_writes)
        stack_device.stats.add_reads(spill_reads)

    if len(visited) != node_count:
        missing = node_count - len(visited)
        raise InvalidGraphError(
            f"DFS did not span the tree's node set ({missing} nodes unreached); "
            "the input tree must span all nodes"
        )
    return SpanningTree.from_structure(root, new_parent, children_acc, tree.virtual)


def tarjan_scc(nodes: Iterable[int], adjacency: Adjacency) -> List[List[int]]:
    """Strongly connected components (iterative Tarjan).

    Returns:
        Components in *reverse topological order* of the condensation (the
        order Tarjan naturally emits).
    """
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    scc_stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for start in nodes:
        if start in index_of:
            continue
        # Each work entry is [node, neighbor_position].
        work: List[List[int]] = [[start, 0]]
        while work:
            node, position = work[-1]
            if position == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack[node] = True
            targets = adjacency.get(node, ())
            advanced = False
            while position < len(targets):
                target = targets[position]
                position += 1
                if target not in index_of:
                    work[-1][1] = position
                    work.append([target, 0])
                    advanced = True
                    break
                if on_stack.get(target):
                    if index_of[target] < lowlink[node]:
                        lowlink[node] = index_of[target]
            if advanced:
                continue
            work[-1][1] = position
            # All neighbors explored: retire `node`.
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def topological_sort(
    nodes: Iterable[int],
    adjacency: Adjacency,
    priority: Optional[Mapping[int, int]] = None,
) -> List[int]:
    """Kahn's algorithm; deterministic (seeds processed in sorted order).

    Args:
        priority: optional rank per node; among simultaneously-ready nodes
            the smallest ``(priority, id)`` pair is emitted first.  This is
            how the merge step preserves an existing sibling priority (the
            start-node hint) wherever the DAG leaves the order free.
            Without it, ties break on node id alone.

    Raises:
        NotADAGError: when the graph contains a cycle.
    """
    node_list = sorted(set(nodes))
    in_degree: Dict[int, int] = {node: 0 for node in node_list}
    for node in node_list:
        for target in adjacency.get(node, ()):
            if target not in in_degree:
                raise InvalidGraphError(f"edge target {target} not in node set")
            in_degree[target] += 1

    def rank(node: int) -> Tuple[int, int]:
        if priority is None:
            return (0, node)
        return (priority.get(node, len(node_list)), node)

    ready = [rank(node) for node in node_list if in_degree[node] == 0]
    heapq.heapify(ready)  # smallest (priority, id) first, for determinism
    order: List[int] = []
    while ready:
        _, node = heapq.heappop(ready)
        order.append(node)
        for target in adjacency.get(node, ()):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                heapq.heappush(ready, rank(target))
    if len(order) != len(node_list):
        raise NotADAGError("graph contains a cycle; topological sort impossible")
    return order
