"""Edge classification against an ordered spanning tree (Section 2).

Given an ordered spanning tree ``T`` of ``G``, every edge of ``G`` is one of:

* **tree** — an edge of ``T``;
* **forward** — ``u`` is a (strict) ancestor of ``v``;
* **backward** — ``u`` is a descendant of ``v`` (includes self-loops);
* **forward-cross** — no ancestor relation and ``u`` precedes ``v`` in
  preorder;
* **backward-cross** — no ancestor relation and ``u`` follows ``v``.

An ordered spanning tree is a DFS-Tree iff it admits **no forward-cross
edge** — the invariant every algorithm in this library drives toward.

:class:`IntervalIndex` supports O(1) classification while the tree is
frozen: one O(n) traversal assigns each node its preorder number and subtree
size, making ancestorship an interval containment test.  Rebuild it after
any tree mutation (the ``version`` handshake in the restructure loop does
this); for classification *during* mutation use :mod:`repro.core.order`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from .tree import SpanningTree


class EdgeType(enum.Enum):
    """The Section-2 edge taxonomy."""

    TREE = "tree"
    FORWARD = "forward"
    BACKWARD = "backward"
    FORWARD_CROSS = "forward-cross"
    BACKWARD_CROSS = "backward-cross"


class IntervalIndex:
    """Preorder/size interval labelling of a frozen :class:`SpanningTree`.

    ``pre[u] <= pre[v] < pre[u] + size[u]`` iff ``u`` is an ancestor of
    ``v`` (a node is its own ancestor).
    """

    __slots__ = ("pre", "size", "_parent")

    def __init__(self, tree: SpanningTree) -> None:
        self.pre: Dict[int, int] = {}
        self.size: Dict[int, int] = {}
        self._parent = tree.parent
        self._build(tree)

    def _build(self, tree: SpanningTree) -> None:
        if tree.root is None:
            return
        # Pass 1: preorder numbering (inlined sibling-resume walk — this
        # runs once per restructure batch and per division; the generator
        # indirection is measurable at that call rate).
        first_child = tree.first_child
        next_sibling = tree.next_sibling
        root = tree.root
        order: List[int] = []
        append = order.append
        stack = [root]
        stack_pop = stack.pop
        stack_push = stack.append
        while stack:
            node = stack_pop()
            append(node)
            sibling = next_sibling[node]
            if sibling is not None and node != root:
                stack_push(sibling)
            child = first_child[node]
            if child is not None:
                stack_push(child)
        pre = self.pre
        for counter, node in enumerate(order):
            pre[node] = counter
        # Pass 2: subtree sizes, folded bottom-up over reversed preorder
        # (children always precede their parent when walking backwards).
        size = self.size
        parent = tree.parent
        for node in reversed(order):
            total = size.get(node, 0) + 1
            size[node] = total
            up = parent[node]
            if up is not None:
                size[up] = size.get(up, 0) + total

    # ------------------------------------------------------------------
    def covers(self, node: int) -> bool:
        """Whether ``node`` was reachable from the root at build time."""
        return node in self.pre

    def is_ancestor(self, u: int, v: int) -> bool:
        """Whether ``u`` is an ancestor of ``v`` (nodes are self-ancestors)."""
        pre_u = self.pre[u]
        return pre_u <= self.pre[v] < pre_u + self.size[u]

    def preorder_position(self, node: int) -> int:
        """The node's preorder number."""
        return self.pre[node]

    def classify(self, u: int, v: int) -> EdgeType:
        """Classify graph edge ``(u, v)`` against the indexed tree."""
        if self._parent.get(v) == u:
            return EdgeType.TREE
        pre_u = self.pre[u]
        pre_v = self.pre[v]
        if pre_u <= pre_v < pre_u + self.size[u]:
            return EdgeType.FORWARD
        if pre_v <= pre_u < pre_v + self.size[v]:
            return EdgeType.BACKWARD
        if pre_u < pre_v:
            return EdgeType.FORWARD_CROSS
        return EdgeType.BACKWARD_CROSS

    def classify_fast(self, u: int, v: int) -> Tuple[EdgeType, int, int]:
        """:meth:`classify` plus both preorder positions (hot-loop helper)."""
        kind = self.classify(u, v)
        return kind, self.pre[u], self.pre[v]
