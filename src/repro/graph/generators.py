"""Synthetic graph generators.

Two generators reproduce the paper's synthetic workloads (Section 8,
"Datasets"):

* :func:`random_graph` — "randomly generate a node pair and add to the graph
  until the number of edges is ``D * |V|``".
* :func:`power_law_graph` — preferential attachment after Dorogovtsev,
  Mendes & Samukhin [7], parameterized by the "power-law-ness" ``A``: a new
  edge's target is chosen with probability proportional to
  ``in_degree(v) + A``.  Larger ``|A| / D`` means a larger fraction of
  high-degree nodes (the paper's Exp-5 knob).

The remaining generators build structured inputs for tests: trees, DAGs,
cycles, grids, and disconnected multi-component graphs.

Everything is deterministic given ``seed`` and streams edges lazily so the
benchmark harness can materialize graphs straight to disk.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from .digraph import Digraph

Edge = Tuple[int, int]


def random_graph_edges(
    node_count: int,
    average_degree: float,
    seed: int = 0,
    allow_duplicates: bool = False,
) -> Iterator[Edge]:
    """Stream the edges of the paper's uniform random graph.

    Node pairs ``(u, v)`` with ``u != v`` are drawn uniformly until
    ``average_degree * node_count`` edges have been produced.
    """
    if node_count < 2:
        return
    rng = random.Random(seed)
    target_edges = int(average_degree * node_count)
    if not allow_duplicates:
        # without duplicates at most n*(n-1) distinct edges exist
        target_edges = min(target_edges, node_count * (node_count - 1))
    produced = 0
    seen = None if allow_duplicates else set()
    while produced < target_edges:
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u == v:
            continue
        if seen is not None:
            if (u, v) in seen:
                continue
            seen.add((u, v))
        yield (u, v)
        produced += 1


def random_graph(node_count: int, average_degree: float, seed: int = 0) -> Digraph:
    """The paper's uniform random graph, materialized in memory."""
    return Digraph.from_edges(
        node_count, random_graph_edges(node_count, average_degree, seed)
    )


def power_law_graph_edges(
    node_count: int,
    average_degree: float,
    attractiveness: Optional[float] = None,
    seed: int = 0,
    reverse_fraction: float = 0.15,
) -> Iterator[Edge]:
    """Stream the edges of a preferential-attachment power-law graph.

    Nodes arrive in id order; each new node emits ``D`` edges whose targets
    are chosen with probability proportional to ``in_degree + A`` among the
    nodes present so far (the Dorogovtsev et al. model the paper cites).

    Args:
        attractiveness: the paper's ``A``; defaults to ``average_degree``
            (i.e. power-law-ness ``|A|/D = 1``, the paper's default).
        reverse_fraction: fraction of edges emitted old-node -> new-node
            instead of new -> old.  Pure preferential attachment (the
            cited model) is acyclic; reversing a small fraction plants the
            cycles a DFS workload needs without disturbing the degree skew
            or growing a giant SCC.
    """
    if node_count < 2:
        return
    rng = random.Random(seed)
    degree = max(1, int(round(average_degree)))
    attract = float(average_degree) if attractiveness is None else float(attractiveness)
    if attract <= 0:
        raise ValueError("attractiveness must be positive")
    # `endpoints` holds one entry per in-degree unit; sampling from it is
    # sampling proportional to in-degree.  The uniform `A` component is
    # realized by choosing a uniform node with the complementary probability.
    endpoints: List[int] = []
    for new in range(1, node_count):
        emitted = degree if new >= degree else 1
        for _ in range(emitted):
            total_in = len(endpoints)
            if endpoints and rng.random() >= (new * attract) / (new * attract + total_in):
                target = endpoints[rng.randrange(total_in)]
            else:
                target = rng.randrange(new)
            endpoints.append(target)
            if rng.random() < reverse_fraction:
                yield (target, new)
            else:
                yield (new, target)


def power_law_graph(
    node_count: int,
    average_degree: float,
    attractiveness: Optional[float] = None,
    seed: int = 0,
    reverse_fraction: float = 0.15,
) -> Digraph:
    """Preferential-attachment power-law graph, materialized in memory."""
    return Digraph.from_edges(
        node_count,
        power_law_graph_edges(
            node_count, average_degree, attractiveness, seed, reverse_fraction
        ),
    )


# ----------------------------------------------------------------------
# structured generators for tests
# ----------------------------------------------------------------------
def random_tree(node_count: int, seed: int = 0) -> Digraph:
    """A uniformly random arborescence rooted at node 0."""
    rng = random.Random(seed)
    graph = Digraph(node_count)
    for v in range(1, node_count):
        graph.add_edge(rng.randrange(v), v)
    return graph


def random_dag(node_count: int, edge_count: int, seed: int = 0) -> Digraph:
    """A random DAG: edges only from smaller to larger ids."""
    if node_count < 2 and edge_count > 0:
        raise ValueError("a DAG with edges needs at least 2 nodes")
    rng = random.Random(seed)
    graph = Digraph(node_count)
    produced = 0
    limit = node_count * (node_count - 1) // 2
    target = min(edge_count, limit)
    seen = set()
    while produced < target:
        u = rng.randrange(node_count - 1)
        v = rng.randrange(u + 1, node_count)
        if (u, v) in seen:
            continue
        seen.add((u, v))
        graph.add_edge(u, v)
        produced += 1
    return graph


def directed_cycle(node_count: int) -> Digraph:
    """The directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    graph = Digraph(node_count)
    for u in range(node_count):
        graph.add_edge(u, (u + 1) % node_count)
    return graph


def grid_graph(width: int, height: int) -> Digraph:
    """A directed grid: edges point right and down."""
    graph = Digraph(width * height)
    for row in range(height):
        for col in range(width):
            node = row * width + col
            if col + 1 < width:
                graph.add_edge(node, node + 1)
            if row + 1 < height:
                graph.add_edge(node, node + width)
    return graph


def disconnected_clusters(
    cluster_sizes: List[int], intra_degree: float = 2.0, seed: int = 0
) -> Digraph:
    """Several random clusters with no edges between them."""
    node_count = sum(cluster_sizes)
    graph = Digraph(node_count)
    rng = random.Random(seed)
    offset = 0
    for size in cluster_sizes:
        target_edges = int(intra_degree * size)
        produced = 0
        while produced < target_edges and size >= 2:
            u = offset + rng.randrange(size)
            v = offset + rng.randrange(size)
            if u == v:
                continue
            graph.add_edge(u, v)
            produced += 1
        offset += size
    return graph
