"""A compact in-memory directed graph.

Nodes are integers ``0 .. n-1``.  The representation is an adjacency list
(one Python list per node), which is what the in-memory DFS over ``G_M``
wants: out-neighbors in a controllable order, cheap iteration, and parallel
edges allowed (an edge file may legitimately contain duplicates).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..errors import InvalidGraphError

Edge = Tuple[int, int]


class Digraph:
    """Adjacency-list directed graph over nodes ``0 .. n-1``.

    >>> g = Digraph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2)
    >>> sorted(g.edges())
    [(0, 1), (1, 2)]
    """

    __slots__ = ("node_count", "adjacency", "edge_count")

    def __init__(self, node_count: int) -> None:
        if node_count < 0:
            raise InvalidGraphError("node_count must be non-negative")
        self.node_count = node_count
        self.adjacency: List[List[int]] = [[] for _ in range(node_count)]
        self.edge_count = 0

    @classmethod
    def from_edges(cls, node_count: int, edges: Iterable[Edge]) -> "Digraph":
        """Build a graph from an edge iterable."""
        graph = cls(node_count)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise InvalidGraphError(
                f"node {node} out of range for graph with {self.node_count} nodes"
            )

    def add_edge(self, u: int, v: int) -> None:
        """Add directed edge ``u -> v`` (parallel edges allowed)."""
        self._check_node(u)
        self._check_node(v)
        self.adjacency[u].append(v)
        self.edge_count += 1

    def out_neighbors(self, u: int) -> List[int]:
        """The out-neighbor list of ``u`` (live view; do not mutate)."""
        self._check_node(u)
        return self.adjacency[u]

    def out_degree(self, u: int) -> int:
        """Number of out-edges of ``u``."""
        self._check_node(u)
        return len(self.adjacency[u])

    def in_degrees(self) -> List[int]:
        """In-degree of every node, computed in one pass."""
        degrees = [0] * self.node_count
        for targets in self.adjacency:
            for v in targets:
                degrees[v] += 1
        return degrees

    def degrees(self) -> List[int]:
        """Total (in + out) degree of every node."""
        totals = self.in_degrees()
        for u, targets in enumerate(self.adjacency):
            totals[u] += len(targets)
        return totals

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in adjacency order."""
        for u, targets in enumerate(self.adjacency):
            for v in targets:
                yield (u, v)

    def reversed(self) -> "Digraph":
        """The graph with every edge direction flipped."""
        flipped = Digraph(self.node_count)
        for u, v in self.edges():
            flipped.add_edge(v, u)
        return flipped

    def induced_subgraph(self, nodes: Iterable[int]) -> Tuple["Digraph", List[int]]:
        """The subgraph induced by ``nodes``.

        Returns:
            ``(subgraph, originals)`` where the subgraph is relabelled to
            ``0 .. len(nodes)-1`` and ``originals[i]`` is the original id of
            the subgraph's node ``i``.
        """
        originals = sorted(set(nodes))
        index = {node: i for i, node in enumerate(originals)}
        subgraph = Digraph(len(originals))
        member = set(originals)
        for u in originals:
            for v in self.adjacency[u]:
                if v in member:
                    subgraph.add_edge(index[u], index[v])
        return subgraph, originals

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` (the paper's graph size measure)."""
        return self.node_count + self.edge_count

    def __repr__(self) -> str:
        return f"Digraph(n={self.node_count}, m={self.edge_count})"
