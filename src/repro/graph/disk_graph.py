"""The on-disk graph handle the semi-external algorithms operate on.

A :class:`DiskGraph` is the pair the paper's problem statement fixes: a node
count ``n`` (nodes are implicit, ``0 .. n-1``) and an edge set on disk.  Only
the node count, not the edges, is assumed to fit in memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..errors import InvalidGraphError
from ..storage.block_device import BlockDevice
from ..storage.edge_file import EdgeFile
from .digraph import Digraph

Edge = Tuple[int, int]


class DiskGraph:
    """A directed graph whose edge set lives on a :class:`BlockDevice`.

    Construct via :meth:`from_edges` (streams straight to disk) or
    :meth:`from_digraph`.
    """

    def __init__(self, device: BlockDevice, node_count: int, edge_file: EdgeFile) -> None:
        if node_count < 0:
            raise InvalidGraphError("node_count must be non-negative")
        if not edge_file.sealed:
            raise InvalidGraphError("DiskGraph requires a sealed edge file")
        self.device = device
        self.node_count = node_count
        self.edge_file = edge_file

    @classmethod
    def from_edges(
        cls,
        device: BlockDevice,
        node_count: int,
        edges: Iterable[Edge],
        validate: bool = True,
    ) -> "DiskGraph":
        """Stream ``edges`` to a fresh edge file on ``device``.

        Args:
            validate: check every endpoint against ``node_count`` while
                writing (cheap; disable only for trusted re-materialization).
        """
        edge_file = device.create_edge_file()
        if validate:
            for u, v in edges:
                if not (0 <= u < node_count and 0 <= v < node_count):
                    edge_file.delete()
                    raise InvalidGraphError(
                        f"edge ({u}, {v}) out of range for {node_count} nodes"
                    )
                edge_file.append(u, v)
        else:
            edge_file.extend(edges)
        return cls(device, node_count, edge_file.seal())

    @classmethod
    def from_digraph(cls, device: BlockDevice, graph: Digraph) -> "DiskGraph":
        """Materialize an in-memory :class:`Digraph` to disk."""
        return cls.from_edges(device, graph.node_count, graph.edges(), validate=False)

    # ------------------------------------------------------------------
    @property
    def edge_count(self) -> int:
        """``m = |E|``."""
        return self.edge_file.edge_count

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` (the paper's size measure)."""
        return self.node_count + self.edge_count

    def scan(self) -> Iterator[Edge]:
        """Scan all edges, paying ``ceil(m / B)`` read I/Os."""
        return self.edge_file.scan()

    def scan_blocks(self) -> Iterator[List[Edge]]:
        """Scan block-by-block (same I/O cost as :meth:`scan`)."""
        return self.edge_file.scan_blocks()

    def load(self) -> Digraph:
        """Read the whole graph into memory (paying the full scan cost)."""
        graph = Digraph(self.node_count)
        for u, v in self.scan():
            graph.add_edge(u, v)
        return graph

    def delete(self) -> None:
        """Remove the backing edge file."""
        self.edge_file.delete()

    def __repr__(self) -> str:
        return f"DiskGraph(n={self.node_count}, m={self.edge_count})"
