"""Text edge-list I/O and disk materialization helpers.

The text format is one ``u v`` pair per line, ``#``-prefixed comment lines
allowed — the format SNAP and KONECT datasets ship in, so real edge lists
drop in directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from ..errors import InvalidGraphError
from ..storage.block_device import BlockDevice
from .digraph import Digraph
from .disk_graph import DiskGraph

Edge = Tuple[int, int]


def read_edge_list(path: str) -> Iterator[Edge]:
    """Stream ``(u, v)`` pairs from a whitespace-separated text file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise InvalidGraphError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            try:
                yield (int(parts[0]), int(parts[1]))
            except ValueError as exc:
                raise InvalidGraphError(
                    f"{path}:{line_number}: non-integer endpoint in {stripped!r}"
                ) from exc


def write_edge_list(path: str, edges: Iterable[Edge], header: str = "") -> int:
    """Write edges as text; returns the number of edges written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def load_edge_list(path: str, device: BlockDevice, node_count: int = -1) -> DiskGraph:
    """Load a text edge list straight onto a device.

    Args:
        node_count: total nodes; inferred as ``max endpoint + 1`` when -1
            (which requires buffering the edges once in memory).
    """
    if node_count >= 0:
        return DiskGraph.from_edges(device, node_count, read_edge_list(path))
    edges = list(read_edge_list(path))
    inferred = 1 + max((max(u, v) for u, v in edges), default=-1)
    return DiskGraph.from_edges(device, inferred, edges)


def digraph_from_edge_list(path: str, node_count: int = -1) -> Digraph:
    """Load a text edge list fully into memory."""
    edges = list(read_edge_list(path))
    if node_count < 0:
        node_count = 1 + max((max(u, v) for u, v in edges), default=-1)
    return Digraph.from_edges(node_count, edges)
