"""Graphs: in-memory digraphs, on-disk graphs, generators, and datasets."""

from .datasets import (
    DatasetSpec,
    all_datasets,
    arabic2005_like,
    twitter2010_like,
    webspam_uk2007_like,
    wikilink_like,
)
from .digraph import Digraph
from .disk_graph import DiskGraph
from .generators import (
    directed_cycle,
    disconnected_clusters,
    grid_graph,
    power_law_graph,
    power_law_graph_edges,
    random_dag,
    random_graph,
    random_graph_edges,
    random_tree,
)
from .io import digraph_from_edge_list, load_edge_list, read_edge_list, write_edge_list
from .relabel import relabel_graph
from .sampling import sample_edges

__all__ = [
    "DatasetSpec",
    "Digraph",
    "DiskGraph",
    "all_datasets",
    "arabic2005_like",
    "digraph_from_edge_list",
    "directed_cycle",
    "disconnected_clusters",
    "grid_graph",
    "load_edge_list",
    "power_law_graph",
    "power_law_graph_edges",
    "random_dag",
    "random_graph",
    "random_graph_edges",
    "random_tree",
    "read_edge_list",
    "relabel_graph",
    "sample_edges",
    "twitter2010_like",
    "webspam_uk2007_like",
    "wikilink_like",
    "write_edge_list",
]
