"""Deterministic stand-ins for the paper's four real massive datasets.

The paper evaluates on wikilink, arabic-2005, twitter-2010 and
webspam-uk2007 — graphs of 0.6–3.7 billion edges that are neither shippable
nor traversable from Python at full scale.  Per the substitution rule in
DESIGN.md §5, each dataset is replaced by a generator that reproduces the
structural property the paper leans on:

* **wikilink** — a skewed cross-document link graph (avg degree ≈ 23).
* **arabic-2005** — a web crawl with strong *host locality*: most edges stay
  inside a host.  The paper's Fig. 11 discussion hinges on this locality.
* **twitter-2010** — "hard to compress", with a giant SCC covering 80.4% of
  nodes.  The giant SCC is what defeats root-children division, so the
  stand-in plants one covering the same fraction.
* **webspam-uk2007** — the largest dataset (the one where SEMI-DFS fails
  even at 20% of the edges); many hosts, highest degree.

Node counts are scaled down ~1000x from the paper; average degrees are kept.
All generators stream edges and are deterministic given their seed.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from .generators import power_law_graph_edges

Edge = Tuple[int, int]
EdgeSource = Callable[[], Iterator[Edge]]


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset: node count plus a replayable edge stream."""

    name: str
    node_count: int
    average_degree: float
    edge_source: EdgeSource

    def edges(self) -> Iterator[Edge]:
        """A fresh pass over the dataset's edge stream."""
        return self.edge_source()


def crawl_page_permutation(node_count: int, seed: int) -> list:
    """The page-id scrambling applied by the crawl stand-ins.

    Real crawl datasets number pages by *discovery order*, which
    interleaves hosts — node ids carry almost no structural locality.
    The stand-ins apply this fixed pseudo-random permutation so that the
    id-ordered initial spanning tree is as uninformative as it is on the
    real datasets (otherwise the baselines converge unrealistically
    fast).  ``permutation[structural_id] = public_id``.
    """
    permutation = list(range(node_count))
    random.Random(seed ^ 0x5EED).shuffle(permutation)
    return permutation


def _scramble(edges: Iterator[Edge], node_count: int, seed: int) -> Iterator[Edge]:
    """Scramble page ids AND the on-disk edge order.

    Real crawl edge files interleave hosts in discovery order, so the
    edges touching one region of the graph are spread across the whole
    file — the low *locality* the paper's §4.1 (drawback 3) blames for
    the baselines' iteration counts (measured directly by the locality
    ablation benchmark).  Without this, a generator that emits edges
    host-by-host hands the batch algorithms one region per batch and they
    converge unrealistically fast.
    """
    permutation = crawl_page_permutation(node_count, seed)
    materialized = [(permutation[u], permutation[v]) for u, v in edges]
    random.Random(seed ^ 0xF11E).shuffle(materialized)
    return iter(materialized)


def _host_web_edges(
    node_count: int,
    average_degree: float,
    host_size: int,
    intra_fraction: float,
    seed: int,
    scramble_ids: bool = True,
) -> Iterator[Edge]:
    """A host-structured web graph (public ids scrambled by default)."""
    edges = _host_web_edges_structural(
        node_count, average_degree, host_size, intra_fraction, seed
    )
    if scramble_ids:
        return _scramble(edges, node_count, seed)
    return edges


def _host_web_edges_structural(
    node_count: int,
    average_degree: float,
    host_size: int,
    intra_fraction: float,
    seed: int,
) -> Iterator[Edge]:
    """A host-structured web graph in structural (host-major) ids.

    The model reproduces the crawl-graph structure the paper's Exp-1
    datasets have and its divisions rely on:

    * **hosts** of ``host_size`` consecutive pages, the first page being
      the home page, the rest organized into navigation *sections*
      (home -> section head -> pages, with breadcrumb links back up);
    * **hub vs archive sections** — only the first third of each host's
      sections cross-link freely (within the host's hub region); archive
      sections are reachable from the home without linking back out,
      giving every host separable tendrils;
    * **inter-host links** from hub pages to other hosts' home pages,
      forward in crawl order except for a short backward *window* (sister
      sites), so the host-level structure is a near-DAG;
    * **seed-only hosts** — 2 in 5 hosts receive no inter-host in-links
      at all (they were crawled from seeds, not discovered), so a DFS
      restarts at many homes and the top sibling group holds many
      independent subtrees.
    """
    rng = random.Random(seed)
    host_size = max(12, host_size)
    host_count = max(1, node_count // host_size)
    fanout = 4  # navigation-tree branching inside a section

    def host_range(host: int) -> tuple:
        start = host * host_size
        end = node_count if host == host_count - 1 else start + host_size
        return start, end

    def host_of(node: int) -> int:
        return min(node // host_size, host_count - 1)

    def is_linkable(host: int) -> bool:
        """Hosts that other hosts may link to (3 in 5)."""
        return host % 5 < 3

    def hub_limit(start: int, end: int) -> int:
        """Pages below this bound form the host's hub region."""
        return start + max(4, (end - start) // 3)

    target_edges = int(average_degree * node_count)
    produced = 0

    # Deterministic navigation skeleton: every page is discoverable from
    # its home page, and links back up the hierarchy.
    section_pages = fanout * 5  # pages per section
    for host in range(host_count):
        start, end = host_range(host)
        for page in range(start + 1, end):
            offset = page - start - 1
            section, index = divmod(offset, section_pages)
            if index == 0:
                parent = start  # section head sits on the home page's menu
            else:
                section_start = start + 1 + section * section_pages
                parent = section_start + (index - 1) // fanout
            yield (parent, page)   # navigation: parent lists the page
            yield (page, parent)   # breadcrumb back up
            produced += 2

    # Remaining budget: each page emits a DISTINCT set of extra links
    # (pages list each link once; duplicated links would hand every batch
    # a copy of the same structure and trivialize the baselines).
    remaining = max(0, target_edges - produced)
    linkable = [h for h in range(host_count) if is_linkable(h)] or [0]
    hub_pages_total = 0
    for host in range(host_count):
        start, end = host_range(host)
        hub_pages_total += hub_limit(start, end) - start
    # +50% overshoot compensates the per-page distinct-target dedup
    per_hub_page = max(2, remaining * 3 // (2 * max(1, hub_pages_total)))
    popular_hubs: list = []  # endpoint list: sampling is popularity-weighted
    for host in range(host_count):
        start, end = host_range(host)
        hub_end = hub_limit(start, end)
        for u in range(start, hub_end):
            targets = set()
            # pagination: "next page" links chain the hub region into one
            # long ring per host — long cycles the baselines must untangle
            targets.add(start + (u - start + 1) % (hub_end - start))
            intra_share = 0.80 * intra_fraction  # the rest: content + inter
            for _ in range(per_hub_page - 1):
                roll = rng.random()
                if roll < intra_share:
                    # hub pages link anywhere in their own host; in-links
                    # into archive regions are harmless for separability
                    # (archive pages still never link out)
                    v = rng.randrange(start, end)
                elif roll < intra_share + 0.15 and popular_hubs:
                    # content link: popularity-weighted over hub pages seen
                    # so far — the preferential-attachment tangle that
                    # drives the baselines' iteration counts, kept away
                    # from the archive regions so they stay separable
                    v = popular_hubs[rng.randrange(len(popular_hubs))]
                elif is_linkable(host):
                    # the web core: linkable hosts cite each other freely,
                    # so their hubs form one giant cross-host SCC
                    v = linkable[rng.randrange(len(linkable))] * host_size
                else:
                    # seed-only hosts point forward into the core
                    cut = bisect.bisect_right(linkable, host)
                    if cut >= len(linkable):
                        cut = 0
                    v = linkable[rng.randrange(cut, len(linkable))] * host_size
                if v != u:
                    targets.add(v)
            for v in targets:
                yield (u, v)
                popular_hubs.append(v)


def _giant_scc_edges(
    node_count: int,
    average_degree: float,
    scc_fraction: float,
    seed: int,
    scramble_ids: bool = True,
) -> Iterator[Edge]:
    """A follower-style graph with a planted giant SCC (scrambled ids)."""
    edges = _giant_scc_edges_structural(
        node_count, average_degree, scc_fraction, seed
    )
    if scramble_ids:
        return _scramble(edges, node_count, seed)
    return edges


def _giant_scc_edges_structural(
    node_count: int,
    average_degree: float,
    scc_fraction: float,
    seed: int,
) -> Iterator[Edge]:
    """A follower-style graph with a planted giant SCC.

    The first ``scc_fraction * n`` nodes form the core: a directed cycle
    through all of them guarantees they are one SCC, and the remaining core
    edges are skewed random core-to-core links.  Peripheral nodes take a
    fixed one-directional role — even ids only *follow* the core, odd ids
    are only *followed by* it — so the periphery can never join the SCC and
    the planted SCC fraction is exact.
    """
    rng = random.Random(seed)
    core_size = max(2, int(scc_fraction * node_count))
    target_edges = int(average_degree * node_count)

    # The planted cycle that certifies the giant SCC.
    for u in range(core_size):
        yield (u, (u + 1) % core_size)
    produced = core_size

    # Skewed random sampler: preferring small ids approximates the
    # celebrity skew of a follower graph.
    def skewed_core_node() -> int:
        return min(int(rng.random() ** 2 * core_size), core_size - 1)

    def periphery_node(role: int) -> int:
        node = rng.randrange(core_size, node_count)
        if node % 2 != role:
            node = node + 1 if node + 1 < node_count else node - 1
        return node

    while produced < target_edges:
        roll = rng.random()
        if roll < 0.70 or core_size == node_count:  # core-to-core
            u = rng.randrange(core_size)
            v = skewed_core_node()
        elif roll < 0.92:  # an even-id peripheral follows the core
            u = periphery_node(0)
            v = skewed_core_node()
        else:  # the core reaches out to an odd-id peripheral
            u = rng.randrange(core_size)
            v = periphery_node(1)
        if u != v and (u < core_size or u % 2 == 0) and (v < core_size or v % 2 == 1):
            yield (u, v)
            produced += 1


def wikilink_like(scale: float = 1.0, seed: int = 7) -> DatasetSpec:
    """Stand-in for wikilink: skewed cross-document link graph, degree 23."""
    node_count = max(64, int(8_000 * scale))
    degree = 23.0
    return DatasetSpec(
        name="wikilink",
        node_count=node_count,
        average_degree=degree,
        edge_source=lambda: power_law_graph_edges(
            node_count, degree, attractiveness=degree, seed=seed, reverse_fraction=0.2
        ),
    )


def arabic2005_like(scale: float = 1.0, seed: int = 11) -> DatasetSpec:
    """Stand-in for arabic-2005: host-local web crawl, degree 28."""
    node_count = max(64, int(8_000 * scale))
    return DatasetSpec(
        name="arabic-2005",
        node_count=node_count,
        average_degree=28.0,
        edge_source=lambda: _host_web_edges(
            node_count, 28.0, host_size=100, intra_fraction=0.85, seed=seed
        ),
    )


def twitter2010_like(scale: float = 1.0, seed: int = 13) -> DatasetSpec:
    """Stand-in for twitter-2010: giant SCC over ~80% of nodes, degree 35."""
    node_count = max(64, int(12_000 * scale))
    return DatasetSpec(
        name="twitter-2010",
        node_count=node_count,
        average_degree=35.0,
        edge_source=lambda: _giant_scc_edges(
            node_count, 35.0, scc_fraction=0.804, seed=seed
        ),
    )


def webspam_uk2007_like(scale: float = 1.0, seed: int = 17) -> DatasetSpec:
    """Stand-in for webspam-uk2007: the largest host-structured web graph."""
    node_count = max(64, int(20_000 * scale))
    return DatasetSpec(
        name="webspam-uk2007",
        node_count=node_count,
        average_degree=35.0,
        edge_source=lambda: _host_web_edges(
            node_count, 35.0, host_size=175, intra_fraction=0.80, seed=seed
        ),
    )


def all_datasets(scale: float = 1.0) -> Dict[str, DatasetSpec]:
    """The four Exp-1 datasets, keyed by name, ordered as in the paper."""
    specs = [
        webspam_uk2007_like(scale),
        twitter2010_like(scale),
        wikilink_like(scale),
        arabic2005_like(scale),
    ]
    return {spec.name: spec for spec in specs}
