"""Relabel an on-disk graph by a node permutation — typically a DFS order.

The paper's §4.1 (drawback 3) blames baseline iteration counts on low
*locality*: edges stored far from their position in the DFS visiting
sequence.  Renumbering nodes by a previously computed DFS order (and
optionally sorting the edge file by source) produces a layout where
subsequent traversals touch nearly-sorted data — the preprocessing
behind the locality ablation benchmark, and a standard trick for graph
compression.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import InvalidGraphError
from .disk_graph import DiskGraph


def relabel_graph(graph: DiskGraph, order: Sequence[int]) -> DiskGraph:
    """Rewrite ``graph`` with node ``order[i]`` renamed to ``i``.

    Args:
        order: a permutation of ``range(graph.node_count)`` — e.g.
            ``DFSResult.order``.

    Returns:
        A new :class:`DiskGraph` on the same device (one scan + one write
        of the edge file).  The original graph is left untouched.
    """
    node_count = graph.node_count
    if sorted(order) != list(range(node_count)):
        raise InvalidGraphError("order must be a permutation of the node ids")
    new_id: List[int] = [0] * node_count
    for position, node in enumerate(order):
        new_id[node] = position
    return DiskGraph.from_edges(
        graph.device,
        node_count,
        ((new_id[u], new_id[v]) for u, v in graph.scan()),
        validate=False,
    )
