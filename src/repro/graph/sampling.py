"""Edge sampling — the Exp-1 "vary percentage of |E|" treatment.

The paper's Exp-1 randomly selects a fraction of ``E`` and sweeps the
fraction from 20% to 100%.  :func:`sample_edges` filters an edge stream with
an independent keep-probability, which matches "randomly select edges from
E" while remaining single-pass and deterministic per seed.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Tuple

Edge = Tuple[int, int]


def sample_edges(edges: Iterable[Edge], fraction: float, seed: int = 0) -> Iterator[Edge]:
    """Keep each edge independently with probability ``fraction``.

    Args:
        fraction: in ``(0, 1]``; 1.0 streams every edge through unchanged.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        yield from edges
        return
    rng = random.Random(seed)
    for edge in edges:
        if rng.random() < fraction:
            yield edge
