"""Process-pool execution of division parts (the parallel conquer step).

The paper's DivideConquerDFS recurses into the parts of a valid division
one after another, yet the parts are *independent by construction*: part
``G_i`` shares no edge with part ``G_j``, each part owns a private edge
file, and the merge step consumes the part DFS-Trees in part order.  This
module exploits that independence.  When a run is configured with
``workers > 1``, the top-level division's parts are submitted to a
:class:`concurrent.futures.ProcessPoolExecutor`; each worker process
rebuilds a private :class:`~repro.storage.block_device.BlockDevice` /
:class:`~repro.algorithms.base.RunContext` around the part's already
materialized edge file and runs the *unmodified* sequential recursion on
it.  The parent then reassembles deterministically:

* part DFS-Trees are collected **in part order** — the merge sees exactly
  the sequence the sequential loop would have produced, so the final DFS
  order is identical whatever the completion order of the workers;
* each worker's measured :class:`~repro.storage.io_stats.IOSnapshot` is
  folded into the parent device's counter with
  :meth:`~repro.storage.io_stats.IOStats.absorb`, so ``DFSResult.io``
  still reports every block transfer of the run;
* each worker's span events are re-emitted through the parent tracer
  (:meth:`~repro.obs.Tracer.replay`) tagged ``worker=<part index>``, so
  per-phase I/O totals still tile the run total exactly;
* the memory budget ``M`` is split across the concurrently running
  workers (:func:`part_memory_shares`) so the pool as a whole stays
  inside the semi-external model's budget whenever the parts allow it.

The worker boundary is **columnar, not pickled** (the default ``"shm"``
boundary).  A part's spanning tree crosses the process line as preorder
int32 columns — node / parent / virtual-flag, the
:func:`~repro.core.tree_io.tree_columns` decomposition — framed into a
:class:`~repro.storage.shm.ColumnSegment` shared-memory segment by the
kernel layer, and the part DFS-Tree comes back the same way through a
pre-allocated outcome segment.  Only scalars, the strategy reference,
and span events are pickled.  Workers map the already-sealed part file
read-only (``EdgeFile.open_sealed(..., mapped=True)``) instead of
re-reading it through buffered I/O, so the page cache is shared across
the pool; every block still flows through ``device.read_block``, so
logical I/O charges are bit-identical to the sequential run.

Segment lifecycle is parent-owned: every segment is created before
dispatch and unlinked in a ``finally`` after the pool drains, so worker
crashes, ``FIRST_EXCEPTION`` cancellation, and deadline expiry cannot
leak ``/dev/shm`` entries.  A host that cannot provide shared memory
degrades per part to the legacy pickle boundary (counted in
``worker_boundary_fallbacks``); ``worker_boundary="pickle"`` forces it.

Failure semantics: the pool waits with ``FIRST_EXCEPTION``; on a worker
failure the in-flight siblings are cancelled, every remaining part edge
file and worker scratch directory is removed, and the first failing
part's error (in part order, for determinism) is re-raised in the parent.
"""

from __future__ import annotations

import os
import shutil
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .errors import MemoryBudgetExceeded, StorageError
from .graph.disk_graph import DiskGraph
from .obs import MemorySink, SpanEvent, Tracer
from .storage.block_device import BlockDevice
from .storage.buffer_pool import TREE_NODE_COST, MemoryBudget
from .storage.edge_file import EdgeFile
from .storage.faults import FaultPlan
from .storage.io_stats import IOSnapshot
from .storage.shm import ColumnSegment, words_for_columns
from .core.tree import SpanningTree, VirtualNodeAllocator
from .core.tree_io import tree_columns, tree_from_columns

if TYPE_CHECKING:
    from .algorithms.base import RunContext
    from .algorithms.division import Division
    from .kernels.base import Kernel

#: A cut strategy as :mod:`repro.algorithms.divide_conquer` defines it.
#: Workers receive the module-level ``star_strategy`` / ``td_strategy``
#: functions, which pickle by reference.
_Strategy = Callable[[SpanningTree, MemoryBudget], Tuple[Set[int], Set[int]]]

#: Headroom elements granted to a part beyond its spanning-tree cost, so
#: a worker's context never starts exactly at the ``k * |V_i|`` floor.
_SHARE_HEADROOM = 2

#: Extra per-column capacity in a part's outcome segment.  The recursion
#: only *removes* nodes from a part tree before returning it (every
#: return path splices out non-root virtual nodes), so the input tree's
#: node count bounds the outcome; the headroom merely absorbs the root
#: row and keeps the bound honest against off-by-one drift.
_OUTCOME_HEADROOM = 16


@dataclass(frozen=True)
class PartPayload:
    """Everything a worker process needs to conquer one division part.

    The payload is the parent→worker *control* interface and must stay
    picklable (plain ints/strings, a module-level strategy function, an
    optional frozen :class:`~repro.storage.faults.FaultPlan`).  Bulk data
    does not ride in it: under the default ``shm`` boundary the part's
    spanning tree crosses as framed int32 columns in the shared-memory
    segment named by ``tree_segment`` (and ``tree`` is ``None``), and
    the worker writes its result tree into ``outcome_segment``.  When
    both segment names are ``None`` the payload is self-contained and
    ``tree`` carries the pickled spanning tree (the legacy boundary,
    still used as a per-part fallback on shm-hostile hosts).
    """

    index: int
    depth: int
    edge_path: str
    edge_count: int
    block_count: int
    tree: Optional[SpanningTree]
    real_node_count: int
    memory: int
    pass_limit: int
    deadline_seconds: Optional[float]
    strategy: _Strategy
    algorithm: str
    block_elements: int
    kernel: str
    fault_plan: Optional[FaultPlan]
    max_retries: int
    backoff_seconds: float
    allocator_start: int
    worker_dir: str
    traced: bool
    block_codec: str
    tree_segment: Optional[str] = None
    outcome_segment: Optional[str] = None


@dataclass(frozen=True)
class PartOutcome:
    """What a worker sends back: measurements plus the part DFS-Tree.

    Under the shm boundary ``tree`` is ``None`` — the DFS-Tree went back
    as columns in the payload's ``outcome_segment`` and only this record
    (scalars, counter dict, span events) is pickled.  ``tree`` is only
    populated on the pickle boundary, or when a result tree unexpectedly
    outgrew its pre-sized outcome segment.
    """

    index: int
    tree: Optional[SpanningTree]
    io: IOSnapshot
    passes: int
    divisions: int
    max_depth: int
    details: Dict[str, int]
    events: Tuple[SpanEvent, ...]


def part_memory_shares(
    total: int, part_node_counts: Sequence[int], workers: int
) -> Tuple[List[int], bool]:
    """Split the budget ``M`` across the concurrently running parts.

    Each part receives an even ``M / concurrent`` slice, raised to its
    spanning-tree floor ``k * |V_i| + 2`` when the slice is too small for
    the part's tree to exist at all (the semi-external model's
    ``k * |V| <= M`` precondition, with a little headroom).

    Returns:
        ``(shares, oversubscribed)`` — one share per part, in part order,
        and whether the ``concurrent`` largest shares exceed ``total``
        (i.e. the floors forced the pool beyond the budget; the run is
        still correct, but the paper's memory bound no longer holds for
        the pool as a whole).
    """
    if total <= 0:
        raise ValueError("memory budget must be positive")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not part_node_counts:
        return [], False
    concurrent = max(1, min(workers, len(part_node_counts)))
    even = total // concurrent
    shares = [
        max(even, TREE_NODE_COST * count + _SHARE_HEADROOM)
        for count in part_node_counts
    ]
    budget = MemoryBudget(total)
    oversubscribed = False
    for rank, share in enumerate(sorted(shares, reverse=True)[:concurrent]):
        try:
            budget.charge(f"worker-{rank}", share)
        except MemoryBudgetExceeded:
            oversubscribed = True
            break
    return shares, oversubscribed


def _tree_to_segment(
    segment: ColumnSegment, tree: SpanningTree, kernel: "Kernel"
) -> None:
    """Frame ``tree`` into ``segment`` as ``[root] / nodes / parents / flags``."""
    root, nodes, parents, flags = tree_columns(tree)
    segment.write_columns([[root], nodes, parents, flags], kernel)


def _tree_from_segment(
    segment: ColumnSegment, kernel: "Kernel"
) -> SpanningTree:
    """Rebuild the spanning tree framed by :func:`_tree_to_segment`.

    Copies every column out of shared memory before constructing, so the
    returned tree never aliases the segment.
    """
    columns = segment.read_column_lists(kernel)
    if len(columns) != 4 or len(columns[0]) != 1:
        raise StorageError(
            f"segment {segment.name} does not hold a spanning tree"
        )
    root_column, nodes, parents, flags = columns
    return tree_from_columns(
        root_column[0], nodes, parents, flags, context=segment.name
    )


def _run_part_worker(payload: PartPayload) -> PartOutcome:
    """Worker entry point: conquer one part in a private process.

    Rebuilds the storage stack around the part's sealed edge file — a
    private device (scratch files go to ``payload.worker_dir``), a
    :class:`DiskGraph` adopting the parent-materialized part file mapped
    read-only, and a fresh ``workers=1``
    :class:`~repro.algorithms.base.RunContext` — then runs the sequential
    recursion unchanged.  The part file is owned (``owns_file=True``)
    exactly as in the sequential loop, so the worker deletes it once
    consumed.

    The part tree arrives as shared columns (``payload.tree_segment``) or
    pickled (``payload.tree``); the result tree leaves the same way.
    This function never unlinks a segment — the parent owns them all.
    """
    from .algorithms.base import RunContext
    from .algorithms.divide_conquer import _divide_conquer

    device = BlockDevice(
        block_elements=payload.block_elements,
        directory=payload.worker_dir,
        kernel=payload.kernel,
        fault_plan=payload.fault_plan,
        max_retries=payload.max_retries,
        backoff_seconds=payload.backoff_seconds,
        block_codec=payload.block_codec,
    )
    try:
        if payload.tree_segment is not None:
            attached = ColumnSegment.attach(payload.tree_segment)
            try:
                part_tree = _tree_from_segment(attached, device.kernel)
            finally:
                attached.close()
        elif payload.tree is not None:
            part_tree = payload.tree
        else:
            raise StorageError(
                f"part {payload.index}: payload carries neither a tree "
                "segment nor a pickled tree"
            )
        edge_file = EdgeFile.open_sealed(
            device,
            payload.edge_path,
            payload.edge_count,
            payload.block_count,
            mapped=True,
        )
        graph = DiskGraph(device, payload.real_node_count, edge_file)
        sink: Optional[MemorySink] = None
        tracer: Optional[Tracer] = None
        if payload.traced:
            sink = MemorySink()
            tracer = Tracer(sinks=[sink])
        context = RunContext(
            graph,
            payload.memory,
            payload.algorithm,
            deadline_seconds=payload.deadline_seconds,
            tracer=tracer,
            workers=1,
        )
        try:
            # Continue the parent's virtual-id sequence so part trees and
            # worker-internal contractions can never collide with ids the
            # parent handed out before dispatch.  Worker-allocated ids are
            # spliced out before the tree is returned (every return path
            # of the recursion removes non-root virtuals), so two workers
            # sharing this start value is safe.
            context.allocator = VirtualNodeAllocator(payload.allocator_start)
            with context.tracer.span(
                "part",
                depth=payload.depth,
                part=payload.index,
                nodes=payload.real_node_count,
                edges=payload.edge_count,
            ):
                tree = _divide_conquer(
                    edge_file,
                    payload.real_node_count,
                    part_tree,
                    context,
                    payload.strategy,
                    payload.depth,
                    owns_file=True,
                    pass_limit=payload.pass_limit,
                )
            pickled_tree: Optional[SpanningTree] = tree
            if payload.outcome_segment is not None:
                outcome = ColumnSegment.attach(payload.outcome_segment)
                try:
                    _tree_to_segment(outcome, tree, device.kernel)
                    pickled_tree = None
                except StorageError:
                    # The result outgrew its pre-sized segment (should be
                    # impossible — the recursion only removes nodes); fall
                    # back to pickling rather than failing the part.
                    pickled_tree = tree
                finally:
                    outcome.close()
            return PartOutcome(
                index=payload.index,
                tree=pickled_tree,
                io=device.stats.snapshot(),
                passes=context.passes,
                divisions=context.divisions,
                max_depth=context.max_depth,
                details=dict(context.details),
                events=tuple(sink.events) if sink is not None else (),
            )
        finally:
            context.release()
    finally:
        device.close()
        shutil.rmtree(payload.worker_dir, ignore_errors=True)


def _build_payloads(
    division: "Division",
    context: "RunContext",
    strategy: _Strategy,
    depth: int,
    pass_limit: int,
) -> Tuple[List[PartPayload], Dict[str, ColumnSegment]]:
    """Snapshot the dispatch-time state of the run into one payload per part.

    Under the ``shm`` boundary each part also gets two parent-owned
    shared-memory segments: its spanning tree framed as columns, and a
    pre-sized empty outcome segment for the result tree.  Returns the
    payloads plus every created segment keyed by name — the caller MUST
    unlink them all (normally in a ``finally``) whatever happens to the
    pool.  A part whose segments cannot be allocated falls back to the
    pickle boundary and is counted in ``worker_boundary_fallbacks``.
    """
    device = context.graph.device
    shares, oversubscribed = part_memory_shares(
        context.memory,
        [len(part.real_nodes) for part in division.parts],
        context.workers,
    )
    if oversubscribed:
        context.bump("worker_memory_oversubscribed")
    use_shm = context.worker_boundary != "pickle"
    remaining_deadline = context.remaining_seconds()
    remaining_passes = max(1, pass_limit - context.passes)
    payloads: List[PartPayload] = []
    segments: Dict[str, ColumnSegment] = {}
    for part, share in zip(division.parts, shares):
        tree: Optional[SpanningTree] = part.tree
        tree_segment: Optional[str] = None
        outcome_segment: Optional[str] = None
        if use_shm:
            try:
                root, nodes, parents, flags = tree_columns(part.tree)
                inbound = ColumnSegment.create(
                    words_for_columns([1, len(nodes), len(nodes), len(nodes)])
                )
                segments[inbound.name] = inbound
                inbound.write_columns(
                    [[root], nodes, parents, flags], device.kernel
                )
                cap = len(nodes) + _OUTCOME_HEADROOM
                outbound = ColumnSegment.create(
                    words_for_columns([1, cap, cap, cap])
                )
                segments[outbound.name] = outbound
                tree = None
                tree_segment = inbound.name
                outcome_segment = outbound.name
            except (OSError, StorageError):
                # Shared memory unavailable (or exhausted) on this host:
                # this part rides the legacy pickle boundary instead.
                context.bump("worker_boundary_fallbacks")
                tree = part.tree
                tree_segment = None
                outcome_segment = None
        payloads.append(
            PartPayload(
                index=part.index,
                depth=depth,
                edge_path=part.edge_file.path,
                edge_count=part.edge_file.edge_count,
                block_count=part.edge_file.block_count,
                tree=tree,
                real_node_count=len(part.real_nodes),
                memory=share,
                pass_limit=remaining_passes,
                deadline_seconds=remaining_deadline,
                strategy=strategy,
                algorithm=context.algorithm,
                block_elements=device.block_elements,
                kernel=device.kernel.name,
                fault_plan=device.fault_plan,
                max_retries=device.max_retries,
                backoff_seconds=device.backoff_seconds,
                allocator_start=context.allocator.next_id,
                worker_dir=os.path.join(
                    device.directory, f"pool-{depth}-{part.index}"
                ),
                traced=context.tracer.enabled,
                block_codec=device.block_codec,
                tree_segment=tree_segment,
                outcome_segment=outcome_segment,
            )
        )
    return payloads, segments


def _cleanup_failed_dispatch(
    division: "Division", payloads: Sequence[PartPayload]
) -> None:
    """Remove every part artifact a failed pool run may have left behind.

    Part files a worker already consumed are gone (``EdgeFile.delete`` is
    idempotent and tolerates a missing file); cancelled or failed parts
    still have theirs, and crashed workers may have left scratch
    directories.  After this, zero part artifacts survive the error.
    (Shared-memory segments are not handled here — ``conquer_parts``
    unlinks them in its ``finally`` regardless of how the pool ended.)
    """
    for part in division.parts:
        part.edge_file.delete()
    for payload in payloads:
        shutil.rmtree(payload.worker_dir, ignore_errors=True)


def conquer_parts(
    division: "Division",
    context: "RunContext",
    strategy: _Strategy,
    depth: int,
    pass_limit: int,
) -> List[SpanningTree]:
    """Conquer a division's parts on a process pool; return trees in order.

    The drop-in parallel replacement for the sequential part loop of
    :func:`~repro.algorithms.divide_conquer._divide_conquer`.  The caller
    only dispatches here from the top-level recursion (workers recurse
    sequentially inside their part), so no parent span is open while
    worker I/O is absorbed and worker events are replayed — which is what
    keeps the leaf-phase tiling invariant exact.

    Every shared-memory segment created for the dispatch is unlinked in
    the ``finally`` below — on success, on a worker exception, on
    ``FIRST_EXCEPTION`` cancellation, on a crashed worker process, and on
    deadline expiry alike, because the cleanup never depends on worker
    cooperation.
    """
    payloads, segments = _build_payloads(
        division, context, strategy, depth, pass_limit
    )
    try:
        worker_count = max(1, min(context.workers, len(payloads)))
        futures: List["Future[PartOutcome]"] = []
        executor = ProcessPoolExecutor(max_workers=worker_count)
        try:
            futures = [
                executor.submit(_run_part_worker, payload)
                for payload in payloads
            ]
            wait(futures, return_when=FIRST_EXCEPTION)
            for future in futures:
                future.cancel()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)

        errors: List[BaseException] = []
        outcomes: List[Optional[PartOutcome]] = []
        for future in futures:
            if future.cancelled():
                outcomes.append(None)
                continue
            error = future.exception()
            if error is not None:
                errors.append(error)
                outcomes.append(None)
            else:
                outcomes.append(future.result())
        if errors or any(outcome is None for outcome in outcomes):
            _cleanup_failed_dispatch(division, payloads)
            if errors:
                raise errors[0]
            raise RuntimeError("process pool dropped a part without an error")

        device = context.graph.device
        trees: List[SpanningTree] = []
        for payload, outcome in zip(payloads, outcomes):
            if outcome is None:  # unreachable; narrows the Optional for mypy
                continue
            device.stats.absorb(outcome.io)
            context.passes += outcome.passes
            context.divisions += outcome.divisions
            if outcome.max_depth > context.max_depth:
                context.max_depth = outcome.max_depth
            for key, amount in outcome.details.items():
                context.bump(key, amount)
            context.tracer.replay(outcome.events, worker=payload.index)
            if outcome.tree is not None:
                trees.append(outcome.tree)
            elif payload.outcome_segment is not None:
                trees.append(
                    _tree_from_segment(
                        segments[payload.outcome_segment], device.kernel
                    )
                )
            else:
                raise StorageError(
                    f"part {payload.index} returned neither a pickled tree "
                    "nor an outcome segment"
                )
        context.bump("parallel_dispatches")
        context.check_deadline()
        return trees
    finally:
        for segment in segments.values():
            segment.destroy()
