"""Aggregation and human-readable rendering of span events.

Two consumers:

* :func:`phase_totals` — per-phase totals over the *non-overlapping*
  phase spans (:data:`LEAF_PHASES`).  Because those spans tile a run's
  I/O exactly (asserted by the test suite), their read/write deltas sum
  to ``DFSResult.io.reads`` / ``.writes``; the bench harness reads its
  per-phase CSV columns from here.
* :func:`render_profile` — a flamegraph-style text tree: span paths
  (``run/part/restructure``) aggregated over calls, indented by depth,
  with wall-clock and I/O columns.  This is what ``repro dfs --profile``
  prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from ..storage.io_stats import IOSnapshot
from .events import ZERO_IO, SpanEvent
from .metrics import Metrics

#: The non-overlapping phase spans: no span in this set is ever nested
#: inside another one from the set, so their I/O deltas partition the
#: run's total charge.  ``sgraph``/``partition``/``cut-tree`` nest inside
#: ``divide`` and ``part`` wraps whole recursions — they attribute finer
#: detail but must not be double-counted into phase totals.  ``relax`` is
#: the BFS sibling of ``restructure``: one span per level-relaxation
#: pass over the edge file.
LEAF_PHASES: "frozenset[str]" = frozenset(
    {"restructure", "divide", "solve", "merge", "checkpoint", "sort", "relax"}
)


@dataclass
class PhaseTotal:
    """Accumulated cost of one phase name across all its spans."""

    calls: int = 0
    seconds: float = 0.0
    io: IOSnapshot = field(default_factory=lambda: ZERO_IO)

    def add(self, event: SpanEvent) -> None:
        self.calls += 1
        self.seconds += event.elapsed_seconds
        self.io = self.io + event.io


def phase_totals(
    events: Sequence[SpanEvent],
    phases: AbstractSet[str] = LEAF_PHASES,
) -> Dict[str, PhaseTotal]:
    """Total seconds/IO per phase name over the non-overlapping spans."""
    totals: Dict[str, PhaseTotal] = {}
    for event in events:
        if event.name not in phases:
            continue
        bucket = totals.get(event.name)
        if bucket is None:
            bucket = PhaseTotal()
            totals[event.name] = bucket
        bucket.add(event)
    return totals


def _span_paths(events: Sequence[SpanEvent]) -> List[Tuple[Tuple[str, ...], SpanEvent]]:
    """Pair each event with its name path from the span-tree root."""
    by_id: Dict[int, SpanEvent] = {event.span_id: event for event in events}
    paths: List[Tuple[Tuple[str, ...], SpanEvent]] = []
    for event in events:
        names: List[str] = [event.name]
        parent = event.parent_id
        hops = 0
        while parent is not None and hops < 10_000:
            ancestor = by_id.get(parent)
            if ancestor is None:
                break  # partial stream (e.g. filtered JSONL): root the path here
            names.append(ancestor.name)
            parent = ancestor.parent_id
            hops += 1
        names.reverse()
        paths.append((tuple(names), event))
    return paths


def render_profile(
    events: Sequence[SpanEvent],
    metrics: Optional[Metrics] = None,
) -> str:
    """Flamegraph-style text summary of a run's span events.

    Spans are grouped by their name *path* (so each ``restructure``
    under a deeper recursion aggregates separately from the top level's),
    indented by path depth, with call counts, wall-clock, and I/O deltas.
    """
    if not events:
        return "profile: no span events recorded"
    aggregated: Dict[Tuple[str, ...], PhaseTotal] = {}
    first_seen: Dict[Tuple[str, ...], int] = {}
    for path, event in _span_paths(events):
        bucket = aggregated.get(path)
        if bucket is None:
            bucket = PhaseTotal()
            aggregated[path] = bucket
            first_seen[path] = len(first_seen)
        bucket.add(event)

    # Stable tree order: parents before children, then first-appearance.
    ordered = sorted(
        aggregated.items(),
        key=lambda item: _tree_sort_key(item[0], first_seen),
    )
    rows = [("phase", "calls", "seconds", "reads", "writes")]
    for path, total in ordered:
        label = "  " * (len(path) - 1) + path[-1]
        rows.append((
            label,
            str(total.calls),
            f"{total.seconds:.4f}",
            str(total.io.reads),
            str(total.io.writes),
        ))
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(rows[0]))
    ]
    lines = ["profile (per span path; child time is included in parents):"]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(widths[0]) if column == 0 else cell.rjust(widths[column])
                for column, cell in enumerate(row)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if metrics is not None and metrics:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(metrics.counters):
            lines.append(f"  {name} = {metrics.counters[name]}")
        for name in sorted(metrics.gauges):
            lines.append(f"  {name} = {metrics.gauges[name]:g}")
    return "\n".join(lines)


def _tree_sort_key(
    path: Tuple[str, ...], first_seen: Dict[Tuple[str, ...], int]
) -> Tuple[Tuple[int, ...], int]:
    """Order paths so every prefix sorts before (and adjacent to) its
    descendants, with siblings in first-appearance order."""
    ranks = tuple(
        first_seen.get(path[: index + 1], len(first_seen))
        for index in range(len(path))
    )
    return ranks, len(path)
