"""Span-based observability for semi-external DFS runs.

The package attributes wall-clock time and block-I/O deltas to the
phases the paper reasons about (restructure passes, divisions, in-memory
solves, merges) via nested spans, and fans the resulting structured
events out to pluggable sinks.  See docs/OBSERVABILITY.md for the event
schema and usage, :mod:`repro.obs.span` for the tracer itself.
"""

from .events import SpanEvent, legacy_trace_entries
from .metrics import Metrics
from .profile import LEAF_PHASES, PhaseTotal, phase_totals, render_profile
from .sinks import JSONLSink, LegacyTraceSink, MemorySink, TraceSink
from .span import (
    NULL_TRACER,
    NullTracer,
    ProgressCallback,
    Span,
    Tracer,
)

__all__ = [
    "JSONLSink",
    "LEAF_PHASES",
    "LegacyTraceSink",
    "MemorySink",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "PhaseTotal",
    "ProgressCallback",
    "Span",
    "SpanEvent",
    "TraceSink",
    "Tracer",
    "legacy_trace_entries",
    "phase_totals",
    "render_profile",
]
