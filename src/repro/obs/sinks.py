"""Pluggable destinations for completed span events.

A sink is anything with ``emit(event)`` (:class:`TraceSink`); the tracer
fans every completed :class:`~repro.obs.events.SpanEvent` out to all
attached sinks in attachment order.

* :class:`MemorySink` — collects events in a list; the run context uses
  a private one to populate ``DFSResult.events``.
* :class:`JSONLSink` — appends one JSON object per event to a text file
  (the ``repro dfs --trace-out events.jsonl`` format); round-trips
  through :meth:`~repro.obs.events.SpanEvent.from_dict`.
* :class:`LegacyTraceSink` — maintains the pre-``repro.obs``
  ``DFSResult.trace`` list-of-dicts shape for callers that still consume
  the deprecated attribute.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, TextIO

from .events import legacy_trace_entries

if TYPE_CHECKING:
    from .events import SpanEvent


class TraceSink(Protocol):
    """Anything that can receive completed span events."""

    def emit(self, event: "SpanEvent") -> None:
        """Handle one completed span event."""


class MemorySink:
    """Collect events in memory (the ``DFSResult.events`` source)."""

    def __init__(self) -> None:
        self.events: List["SpanEvent"] = []

    def emit(self, event: "SpanEvent") -> None:
        self.events.append(event)

    def clear(self) -> None:
        """Drop all collected events."""
        self.events.clear()


class JSONLSink:
    """Write one JSON object per event to ``path`` (JSON-Lines).

    The file is opened lazily on the first event and must be released
    with :meth:`close` (or by using the sink as a context manager).
    Trace files are diagnostics about the run, not part of the modelled
    block I/O, so this writes through the plain filesystem.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events_written = 0
        self._handle: Optional[TextIO] = None

    def emit(self, event: "SpanEvent") -> None:
        if self._handle is None:
            # repro: allow[SEX101] diagnostics trace file, not modelled block I/O
            self._handle = open(self.path, "w", encoding="utf-8")
        json.dump(event.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the output file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LegacyTraceSink:
    """Maintain the deprecated ``DFSResult.trace`` list-of-dicts shape.

    Only the phases the pre-``repro.obs`` tracer knew about surface here
    (``restructure``, successful ``divide`` attempts as ``division``,
    ``solve`` as ``inmemory``); see
    :data:`repro.obs.events.LEGACY_EVENT_NAMES`.
    """

    def __init__(self) -> None:
        self.entries: List[Dict[str, object]] = []

    def emit(self, event: "SpanEvent") -> None:
        self.entries.extend(legacy_trace_entries([event]))
