"""Span-based tracing: attribute wall-clock and I/O deltas to phases.

The paper's whole argument is a *cost story* — restructure passes,
division attempts, S-Graph builds, per-part recursions, merges — yet a
single end-of-run :class:`~repro.storage.io_stats.IOSnapshot` cannot say
*which* phase paid for what.  A :class:`Tracer` fixes that: entering a
:class:`Span` snapshots the bound :class:`~repro.storage.io_stats.IOStats`
counter and a perf counter; exiting records the elapsed time, the
read/write/retry/fault deltas, and free-form attributes into an immutable
:class:`~repro.obs.events.SpanEvent` that is fanned out to pluggable
sinks (:mod:`repro.obs.sinks`).

Spans nest: a ``divide`` span contains ``sgraph`` and ``partition``
children, a ``part`` span contains the recursion's own ``restructure``
spans, and so on.  A parent's delta therefore *includes* its children's —
per-phase totals that must tile the run sum only the non-overlapping
phase spans (see :data:`repro.obs.profile.LEAF_PHASES`).

:class:`NullTracer` is the disabled implementation: every operation is a
no-op, no sink is ever attached, and — asserted by a regression test — it
charges no I/O and allocates no events, so instrumented code paths can
call it unconditionally.

Determinism note: the perf-counter reads in this module are purely
observational — they land in event records and never feed tree
construction — which is why ``repro/obs/`` is on the conformance
checker's waiver-free allowlist for the SEX3xx wall-clock rule (see
``repro.analysis.rules.base.OBSERVABILITY_PATH_PREFIXES``).
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Type

from ..storage.io_stats import IOSnapshot, IOStats
from .events import ZERO_IO, SpanEvent
from .metrics import Metrics
from .sinks import TraceSink

#: Callback invoked by :meth:`Tracer.progress` with a small mapping of
#: counters (pass count, frontier size, ...) so long runs can report
#: liveness without a span per heartbeat.
ProgressCallback = Callable[[Mapping[str, object]], None]


class Span:
    """An open phase: a context manager that measures until exit.

    Obtained from :meth:`Tracer.span`; use :meth:`annotate` to add
    attributes discovered mid-phase (batch counts, part sizes, ...).
    """

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "depth",
        "_attributes", "_start_seconds", "_start_io", "_closed",
    )

    def __init__(
        self,
        tracer: Optional["Tracer"],
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attributes: Dict[str, object],
        start_seconds: float,
        start_io: IOSnapshot,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self._attributes = attributes
        self._start_seconds = start_seconds
        self._start_io = start_io
        self._closed = False

    def annotate(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self._attributes.update(attributes)

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._closed or self._tracer is None:
            return
        self._closed = True
        if exc_type is not None:
            self._attributes.setdefault("error", exc_type.__name__)
        self._tracer._exit_span(self)


class _NullSpan(Span):
    """The shared no-op span handed out by :class:`NullTracer`."""

    def __init__(self) -> None:
        super().__init__(
            tracer=None, name="", span_id=0, parent_id=None, depth=0,
            attributes={}, start_seconds=0.0, start_io=ZERO_IO,
        )

    def annotate(self, **attributes: object) -> None:
        return None

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


class Tracer:
    """Collects span events, counters/gauges, and progress heartbeats.

    Args:
        sinks: initial sinks to fan events out to (more can be attached
            with :meth:`attach`; the run context attaches a private
            in-memory sink so ``DFSResult.events`` is always populated).
        progress: optional callback for :meth:`progress` heartbeats.

    The tracer measures I/O against the :class:`IOStats` counter bound
    with :meth:`bind` (a run context binds its device's counter).  With
    no counter bound, spans still measure wall-clock time and report
    zero I/O deltas.
    """

    #: Whether this tracer records anything (``False`` on the null
    #: implementation); lets hot paths skip attribute preparation.
    enabled = True

    def __init__(
        self,
        sinks: Sequence[TraceSink] = (),
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self._sinks: List[TraceSink] = list(sinks)
        self._progress = progress
        self._stats: Optional[IOStats] = None
        self._stack: List[Span] = []
        self._next_id = 1
        self._sequence = 0
        self.metrics = Metrics()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, stats: Optional[IOStats]) -> None:
        """Bind the I/O counter spans snapshot (``None`` unbinds)."""
        self._stats = stats

    def attach(self, sink: TraceSink) -> None:
        """Add a sink; it receives every event completed from now on."""
        self._sinks.append(sink)

    def detach(self, sink: TraceSink) -> None:
        """Remove a previously attached sink (no-op when absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def wants_progress(self) -> bool:
        """Whether a progress callback is registered (guard for callers
        that would otherwise compute heartbeat fields for nobody)."""
        return self._progress is not None

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def _snapshot_io(self) -> IOSnapshot:
        return self._stats.snapshot() if self._stats is not None else ZERO_IO

    def span(self, name: str, **attributes: object) -> Span:
        """Open a span; use as ``with tracer.span("restructure", ...):``."""
        parent = self._stack[-1] if self._stack else None
        opened = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            attributes=dict(attributes),
            start_seconds=time.perf_counter(),
            start_io=self._snapshot_io(),
        )
        self._next_id += 1
        self._stack.append(opened)
        return opened

    def _exit_span(self, span: Span) -> None:
        # Unwind to (and including) the exiting span so a missed inner
        # __exit__ cannot corrupt attribution for the rest of the run.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        elapsed = time.perf_counter() - span._start_seconds
        event = SpanEvent(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            depth=span.depth,
            sequence=self._sequence,
            elapsed_seconds=elapsed,
            io=self._snapshot_io() - span._start_io,
            attributes=dict(span._attributes),
        )
        self._sequence += 1
        for sink in self._sinks:
            sink.emit(event)

    def replay(self, events: Sequence[SpanEvent], **attributes: object) -> None:
        """Re-emit completed events recorded by another tracer.

        The parallel part scheduler runs each part's recursion in a
        worker process with its own tracer; the parent replays the
        worker's event list here so the run's sinks see a single stream.
        Span ids are remapped into this tracer's id space (parent/child
        links inside the replayed batch are preserved), events whose
        parent is not in the batch — and top-level worker spans — are
        re-parented under the currently open span, and ``attributes``
        (e.g. ``worker=3``) are merged into every event.  Events are
        replayed in their original sequence order; each gets a fresh
        sequence number here, so a sink's stream stays strictly ordered.
        """
        if not events:
            return
        base_parent = self._stack[-1].span_id if self._stack else None
        base_depth = len(self._stack)
        id_map: Dict[int, int] = {}
        for event in sorted(events, key=lambda e: e.sequence):
            span_id = self._next_id
            self._next_id += 1
            id_map[event.span_id] = span_id
            parent_id = base_parent
            if event.parent_id is not None and event.parent_id in id_map:
                parent_id = id_map[event.parent_id]
            merged = dict(event.attributes)
            merged.update(attributes)
            replayed = SpanEvent(
                name=event.name,
                span_id=span_id,
                parent_id=parent_id,
                depth=base_depth + event.depth,
                sequence=self._sequence,
                elapsed_seconds=event.elapsed_seconds,
                io=event.io,
                attributes=merged,
            )
            self._sequence += 1
            for sink in self._sinks:
                sink.emit(replayed)

    # ------------------------------------------------------------------
    # metrics + progress
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named counter metric."""
        self.metrics.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge metric to its latest value."""
        self.metrics.gauge(name, value)

    def progress(self, **fields: object) -> None:
        """Report a heartbeat (pass count, frontier size, ...) to the
        registered callback; a no-op without one."""
        if self._progress is not None:
            self._progress(dict(fields))


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Safe (and cheap) to call on every hot path — it never snapshots I/O
    counters, never allocates events, and ignores sink attachment, so a
    run traced by it is bit-identical to an untraced run.
    """

    enabled = False

    _NULL_SPAN = _NullSpan()

    def bind(self, stats: Optional[IOStats]) -> None:
        return None

    def attach(self, sink: TraceSink) -> None:
        return None

    def span(self, name: str, **attributes: object) -> Span:
        return self._NULL_SPAN

    def replay(self, events: Sequence[SpanEvent], **attributes: object) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def progress(self, **fields: object) -> None:
        return None


#: Shared disabled tracer for default arguments; stateless, so one
#: instance serves every caller.
NULL_TRACER = NullTracer()
