"""The structured event record produced by completed spans.

One :class:`SpanEvent` is one completed phase: its name, its position in
the span tree (``span_id`` / ``parent_id`` / ``depth``), its completion
order (``sequence``), the wall-clock it took, the
:class:`~repro.storage.io_stats.IOSnapshot` delta it charged (children
included), and free-form JSON-compatible attributes.  The JSONL sink
writes exactly :meth:`SpanEvent.to_dict` per line; the documented event
schema lives in docs/OBSERVABILITY.md.

:func:`legacy_trace_entries` is the compatibility bridge to the
pre-``repro.obs`` ``DFSResult.trace`` list-of-dicts shape (the ad-hoc
``record()`` mechanism this package replaced): span names are mapped
back to the legacy event names and only the phases the old tracer knew
about are surfaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..storage.io_stats import IOSnapshot

#: Zero-I/O delta used when a tracer has no bound counter.
ZERO_IO = IOSnapshot(reads=0, writes=0)


def _as_int(value: object, key: str) -> int:
    """Strictly-typed JSON number coercion for :meth:`SpanEvent.from_dict`."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"span event field {key!r} must be a number")
    return int(value)


def _as_float(value: object, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"span event field {key!r} must be a number")
    return float(value)


@dataclass(frozen=True)
class SpanEvent:
    """One completed span: a named phase with its measured costs.

    Attributes:
        name: phase name (``restructure``, ``divide``, ``solve``, ...).
        span_id: unique id of the span within its tracer (1-based).
        parent_id: ``span_id`` of the enclosing span, or ``None`` at the
            top level.
        depth: nesting depth (0 for a top-level span).
        sequence: completion order (0-based); parents complete *after*
            their children, so sorting by ``sequence`` is exit order.
        elapsed_seconds: wall-clock time between enter and exit.
        io: I/O charged between enter and exit (children included).
        attributes: free-form span attributes (JSON-compatible values).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    sequence: int
    elapsed_seconds: float
    io: IOSnapshot
    attributes: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (the JSONL event schema, one per line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "sequence": self.sequence,
            "elapsed_seconds": self.elapsed_seconds,
            "reads": self.io.reads,
            "writes": self.io.writes,
            "retries": self.io.retries,
            "faults": self.io.faults,
            "checksum_failures": self.io.checksum_failures,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SpanEvent":
        """Rebuild an event from :meth:`to_dict` output (JSONL ingest)."""
        parent = data.get("parent_id")
        attributes = data.get("attributes") or {}
        if not isinstance(attributes, Mapping):
            raise ValueError("span event 'attributes' must be a mapping")
        return cls(
            name=str(data["name"]),
            span_id=_as_int(data.get("span_id"), "span_id"),
            parent_id=None if parent is None else _as_int(parent, "parent_id"),
            depth=_as_int(data.get("depth"), "depth"),
            sequence=_as_int(data.get("sequence"), "sequence"),
            elapsed_seconds=_as_float(
                data.get("elapsed_seconds"), "elapsed_seconds"
            ),
            io=IOSnapshot(
                reads=_as_int(data.get("reads", 0), "reads"),
                writes=_as_int(data.get("writes", 0), "writes"),
                retries=_as_int(data.get("retries", 0), "retries"),
                faults=_as_int(data.get("faults", 0), "faults"),
                checksum_failures=_as_int(
                    data.get("checksum_failures", 0), "checksum_failures"
                ),
            ),
            attributes=dict(attributes),
        )


# ----------------------------------------------------------------------
# legacy DFSResult.trace compatibility
# ----------------------------------------------------------------------

#: Span name -> the event name the pre-obs ``record()`` tracer used, for
#: the phases it knew about.  Only *successful* ``divide`` spans (those
#: annotated with a ``parts`` attribute) become legacy ``division``
#: entries, matching the old behaviour of recording only valid divisions.
LEGACY_EVENT_NAMES: Mapping[str, str] = {
    "restructure": "restructure",
    "divide": "division",
    "solve": "inmemory",
}


def legacy_trace_entries(
    events: Sequence[SpanEvent],
) -> List[Dict[str, object]]:
    """Render span events in the legacy ``DFSResult.trace`` dict shape."""
    entries: List[Dict[str, object]] = []
    for event in sorted(events, key=lambda item: item.sequence):
        legacy_name = LEGACY_EVENT_NAMES.get(event.name)
        if legacy_name is None:
            continue
        if event.name == "divide" and "parts" not in event.attributes:
            continue  # failed attempt: the old tracer never recorded it
        entry: Dict[str, object] = {"event": legacy_name}
        entry.update(event.attributes)
        entries.append(entry)
    return entries
