"""Cheap counter / gauge metrics carried by a tracer.

Counters accumulate (``device.retries``, ``sort.runs``); gauges hold the
latest observation (``frontier_size``).  Both are plain dict updates —
cheap enough for retry loops — and are rendered alongside the span
profile (:func:`repro.obs.profile.render_profile`).
"""

from __future__ import annotations

from typing import Dict


class Metrics:
    """A tracer's counter and gauge store."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge."""
        self.gauges[name] = value

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges)

    def __repr__(self) -> str:
        return f"Metrics(counters={self.counters!r}, gauges={self.gauges!r})"
