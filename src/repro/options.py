"""Typed run options for :func:`repro.semi_external_dfs`.

:class:`RunOptions` replaces the loose ``**kwargs`` surface: every knob
an algorithm accepts is a declared, documented field, so a typo is a
construction-time ``TypeError`` instead of a silently ignored kwarg, and
an option the chosen algorithm does not support is a ``ValueError``
naming the ones it does.  Legacy keyword calls still work through the
shim in :mod:`repro.api` (with a once-per-name ``DeprecationWarning``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, AbstractSet, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from .core.tree import SpanningTree
    from .obs import Tracer


@dataclass(frozen=True)
class RunOptions:
    """Every tunable of a semi-external DFS run, in one frozen value.

    Attributes:
        max_passes: cap on restructure passes before
            :class:`~repro.errors.ConvergenceError` (default ``2n + 16``).
        deadline_seconds: abort with :class:`~repro.errors.ConvergenceError`
            once this much wall-clock has elapsed (DNF semantics).
        use_external_stack: spill the DFS stack to disk when it outgrows
            the memory budget (batch baseline only).
        order: explicit initial visit order (batch baseline only).
        checkpoint_every: checkpoint the tree every N passes (batch
            baseline only).
        initial_tree: resume from a previously checkpointed tree (batch
            baseline only).
        tracer: a :class:`repro.obs.Tracer` to receive span events,
            metrics, and progress heartbeats for this run.
        workers: process-pool width for the top-level division's parts
            (divide & conquer only; see :mod:`repro.parallel`).  The
            default ``1`` keeps the sequential part loop and is
            bit-identical to earlier releases.
        block_codec: edge-block payload codec for files written during
            the run — ``"fixed32"`` (raw int32 pairs) or
            ``"delta-varint"`` (zig-zag delta + LEB128 varint columns).
            ``None`` defers to the device's setting (itself defaulting
            to ``$REPRO_BLOCK_CODEC``, then ``fixed32``).  The codec
            changes block counts and bytes on disk only — the DFS tree
            and order are bit-identical across codecs.
        worker_boundary: how pooled part trees cross the process line
            (divide & conquer only) — ``"shm"`` for framed shared-memory
            columns with a per-part pickle fallback, ``"pickle"`` to
            force the legacy fully-pickled payloads.  ``None`` defers to
            the algorithm's default (``"shm"``).  Results, DFS order,
            and I/O charges are identical across boundaries.

    Fields left at their defaults are never forwarded, so a default
    value an algorithm does not understand (e.g. ``use_external_stack``
    for ``divide-td``) is not an error — only an *explicit* unsupported
    setting is.
    """

    max_passes: Optional[int] = None
    deadline_seconds: Optional[float] = None
    use_external_stack: bool = True
    order: Optional[Sequence[int]] = None
    checkpoint_every: Optional[int] = None
    initial_tree: Optional["SpanningTree"] = None
    tracer: Optional["Tracer"] = None
    workers: int = 1
    block_codec: Optional[str] = None
    worker_boundary: Optional[str] = None

    def replace(self, **changes: object) -> "RunOptions":
        """A copy with the given fields changed (frozen-safe update)."""
        return dataclasses.replace(self, **changes)

    def to_kwargs(
        self,
        supported: AbstractSet[str],
        algorithm: str,
    ) -> Dict[str, object]:
        """Render the non-default fields as kwargs for ``algorithm``.

        Raises:
            ValueError: if a field was explicitly set (differs from its
                default) but is not in ``supported`` — the message names
                the options the algorithm does understand.
        """
        kwargs: Dict[str, object] = {}
        for name, value, default in self._items():
            if isinstance(default, (bool, int)):
                # value comparison: small ints (workers=1) are not
                # guaranteed to be interned, so identity is unreliable
                unchanged = value == default
            else:
                unchanged = value is default
            if unchanged:
                continue
            if name not in supported:
                known = ", ".join(sorted(supported))
                raise ValueError(
                    f"option {name!r} is not supported by algorithm "
                    f"{algorithm!r}; supported options: {known}"
                )
            kwargs[name] = value
        return kwargs

    def _items(self) -> Tuple[Tuple[str, object, object], ...]:
        """(name, value, default) for every declared option field."""
        return tuple(
            (f.name, getattr(self, f.name), f.default)
            for f in dataclasses.fields(self)
        )


#: Every option name :class:`RunOptions` declares, for error messages
#: and the legacy-kwargs shim in :mod:`repro.api`.
OPTION_NAMES: "frozenset[str]" = frozenset(
    f.name for f in dataclasses.fields(RunOptions)
)
