"""Backend registry and selection for the columnar kernel layer.

A *kernel* bundles the per-edge hot operations the restructure and
division passes perform millions of times — unpacking a disk block into
columns, packing columns back to bytes, classifying a block of edges
against the in-memory spanning tree, collecting a block's cross (S-)
edges, and routing a block's edges to their owning parts.  Two backends
exist:

* ``python`` — always available; stdlib-``array`` columns, scalar
  classification (the seed implementation's semantics, verbatim);
* ``numpy`` — optional; flat int32 columns via ``frombuffer``/``tobytes``
  and whole-block mask arithmetic for classification.

Selection is ``auto`` by default (numpy when importable), overridable per
:class:`~repro.storage.block_device.BlockDevice` or globally with the
``REPRO_KERNEL`` environment variable (``auto`` / ``python`` / ``numpy``).
Both backends are bit-for-bit equivalent: identical bytes on disk,
identical classification decisions, identical I/O accounting.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Protocol, Tuple

from ..errors import ReproError

if TYPE_CHECKING:
    from ..core.tree import SpanningTree

#: Environment variable consulted when no explicit backend is requested.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Recognized backend names (``auto`` resolves to one of the other two).
KERNEL_NAMES = ("auto", "python", "numpy")

#: One classified slice of a block: ``(stop, counted, has_forward_cross,
#: cross_edges)`` where ``stop`` is the exclusive end index reached before
#: the batch capacity was exhausted, ``counted`` is how many non-tree,
#: non-self-loop edges the slice loaded, and ``cross_edges`` are the
#: forward-/backward-cross pairs (python ints, in scan order).
ClassifiedSlice = Tuple[int, int, bool, List[Tuple[int, int]]]


class Kernel(Protocol):
    """Structural interface every backend satisfies.

    Column and index types are backend-specific (stdlib ``array`` vs.
    numpy ``ndarray``; dict index vs. dense arrays), so they surface as
    ``Any`` here — the cross-backend contract is the *shape* of the
    operations and the :data:`ClassifiedSlice` result, which the
    differential tests pin bit-for-bit.
    """

    name: str
    vectorized: bool

    def unpack_edge_columns(self, data: bytes) -> Tuple[Any, Any]:
        """Split packed edge bytes into ``(u, v)`` int32 columns."""

    def pack_edge_columns(self, u_col: Any, v_col: Any) -> bytes:
        """Interleave two int32 columns back into on-disk edge bytes."""

    def pack_int_column(self, values: Any) -> bytes:
        """Pack one int sequence into little-endian int32 bytes.

        The single-column half of the edge codec, used by the framed
        shared-memory segments at the worker boundary.  Raises
        ``ValueError`` for values outside int32 range.
        """

    def int_column_from_buffer(self, buffer: Any, offset: int, count: int) -> Any:
        """Read ``count`` little-endian int32 values starting ``offset``
        *elements* (not bytes) into ``buffer``.

        Returns the backend's native column; the numpy backend returns a
        zero-copy view over ``buffer``, so callers must copy or consume
        the result before releasing the underlying memory.
        """

    def make_index(self, tree: "SpanningTree") -> Optional[Any]:
        """Build a classifier index, or ``None`` to decline the tree."""

    def classify_slice(
        self,
        index: Any,
        u_col: Any,
        v_col: Any,
        start: int,
        capacity: int,
    ) -> ClassifiedSlice:
        """Classify ``(u_col, v_col)[start:]`` until ``capacity`` edges load."""

    def make_columns(self, u_values: Any, v_values: Any) -> Tuple[Any, Any]:
        """Build backend-native ``(u, v)`` columns from plain int sequences."""

    def collect_cross_edges(
        self, index: Any, u_col: Any, v_col: Any
    ) -> List[Tuple[int, int]]:
        """Emit a block's forward-/backward-cross edges, as python-int
        pairs in scan order.

        The columnar S-edge primitive of the division step: tree edges,
        forward (ancestor→descendant) edges, backward (descendant→ancestor)
        edges and self-loops all vanish inside the interval tests; only
        edges that cross subtrees survive.  ``index`` is whatever
        :meth:`make_index` produced for the spanning tree.
        """

    def make_owner_index(self, owner: Any) -> Optional[Any]:
        """Build a node→part routing index from an ``{node: part}`` mapping,
        or ``None`` to decline it (caller falls back to the python kernel).
        """

    def make_level_column(self, levels: Any) -> Any:
        """Freeze a per-node level sequence (``-1`` = unreached) into the
        backend's native column for :meth:`relax_levels`.

        The BFS relaxation pass reads levels through this snapshot so a
        pass's proposals depend only on the levels *entering* the pass —
        the property that makes the result independent of block
        boundaries, codecs, and backends.
        """

    def relax_levels(
        self, level_col: Any, u_col: Any, v_col: Any
    ) -> List[Tuple[int, int, int]]:
        """One BFS relaxation step over a block of edges.

        For every edge ``(u, v)`` with ``u`` reached, the candidate level
        of ``v`` is ``level[u] + 1``; an edge *improves* ``v`` when ``v``
        is unreached or the candidate beats ``v``'s frozen level.  Returns
        one ``(v, level, parent)`` triple of python ints per improved
        destination, sorted by ``v`` ascending, where ``level`` is the
        block's minimal candidate for ``v`` and ``parent`` is the tail of
        the *first edge in scan order* achieving it — the deterministic
        tie-break both backends must reproduce bit-for-bit.
        """

    def route_edges(
        self, owner_index: Any, u_col: Any, v_col: Any
    ) -> List[Tuple[int, Any, Any]]:
        """Group a block's part-internal edges by owning part.

        Returns ``(part_key, u_column, v_column)`` triples sorted
        ascending by part key; edges whose endpoints live in different
        parts (or outside every part) are dropped.  Within each part,
        scan order is preserved, so routed part files are byte-identical
        across backends.
        """


_kernels: Dict[str, Kernel] = {}


def _python_kernel() -> Kernel:
    if "python" not in _kernels:
        from .python_kernel import PythonKernel

        _kernels["python"] = PythonKernel()
    return _kernels["python"]


def _numpy_kernel() -> Kernel:
    if "numpy" not in _kernels:
        from .numpy_kernel import NumpyKernel  # raises ImportError w/o numpy

        _kernels["numpy"] = NumpyKernel()
    return _kernels["numpy"]


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed in this environment."""
    try:
        _numpy_kernel()
    except ImportError:
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that resolve successfully, python first."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def resolve_kernel(name: Optional[str] = None) -> Kernel:
    """Resolve a backend name (or ``None``) to a kernel instance.

    ``None`` falls back to ``$REPRO_KERNEL``, then ``auto``.  ``auto``
    prefers numpy when importable and silently degrades to python
    otherwise; asking for ``numpy`` explicitly when it is missing raises.

    Raises:
        ReproError: unknown name, or an explicit backend is unavailable.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR) or "auto"
    name = name.strip().lower()
    if name not in KERNEL_NAMES:
        known = ", ".join(KERNEL_NAMES)
        raise ReproError(f"unknown kernel backend {name!r}; known: {known}")
    if name == "python":
        return _python_kernel()
    if name == "numpy":
        try:
            return _numpy_kernel()
        except ImportError:
            raise ReproError(
                "kernel backend 'numpy' requested (argument or REPRO_KERNEL) "
                "but numpy is not importable; install the 'numpy' extra or "
                "use REPRO_KERNEL=python"
            ) from None
    # auto
    try:
        return _numpy_kernel()
    except ImportError:
        return _python_kernel()
