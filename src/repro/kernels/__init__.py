"""Columnar kernel layer: pluggable hot-path backends.

The restructure loop — scan blocks, classify every edge against the
spanning tree — dominates the whole system's CPU profile.  This package
isolates its per-edge operations behind a small backend interface so the
same algorithms run on a pure-Python path (always) or a vectorized NumPy
path (auto-detected), with identical on-disk bytes, identical batch
boundaries, and identical I/O accounting.  See ``docs/ARCHITECTURE.md``
("Kernel layer") for the contract.

Module-level ``pack_edge_columns`` / ``unpack_edge_columns`` are
convenience wrappers over the default-resolved backend; performance-
sensitive callers hold a kernel instance (``BlockDevice.kernel``) instead.
"""

from typing import Any, Tuple

from .base import (
    KERNEL_ENV_VAR,
    KERNEL_NAMES,
    Kernel,
    available_backends,
    numpy_available,
    resolve_kernel,
)


def unpack_edge_columns(data: bytes) -> Tuple[Any, Any]:
    """Split packed edge bytes into ``(u, v)`` columns (default backend)."""
    return resolve_kernel().unpack_edge_columns(data)


def pack_edge_columns(u_col: Any, v_col: Any) -> bytes:
    """Interleave ``(u, v)`` columns into edge bytes (default backend)."""
    return resolve_kernel().pack_edge_columns(u_col, v_col)


__all__ = [
    "KERNEL_ENV_VAR",
    "KERNEL_NAMES",
    "Kernel",
    "available_backends",
    "numpy_available",
    "pack_edge_columns",
    "resolve_kernel",
    "unpack_edge_columns",
]
