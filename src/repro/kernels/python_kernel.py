"""The always-available pure-Python kernel backend.

Columns are stdlib :mod:`array` arrays of 4-byte signed ints, so
``unpack_edge_columns`` / ``pack_edge_columns`` move whole blocks with
``frombytes`` / ``tobytes`` plus two extended-slice copies instead of one
``struct`` call per edge.  Classification mirrors the scalar loop in
:mod:`repro.algorithms.restructure` exactly, which makes this backend the
semantics oracle the numpy backend is tested against.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union, cast

from ..core.classify import IntervalIndex
from ..core.tree import SpanningTree
from .base import ClassifiedSlice

EDGE_BYTES = 8  # two little-endian signed 32-bit ints

#: The first array typecode with a 4-byte item (``'i'`` everywhere CPython
#: runs today; the probe keeps the codec honest on exotic ABIs).
_TYPECODE = next(tc for tc in ("i", "l", "h") if array(tc).itemsize == 4)

#: Native byte order vs. the on-disk little-endian format.
_NEEDS_SWAP = sys.byteorder == "big"


class _DictIndexClassifier:
    """Scalar classifier over the dict-based :class:`IntervalIndex`."""

    __slots__ = ("pre", "size", "parent")

    def __init__(self, tree: SpanningTree) -> None:
        index = IntervalIndex(tree)
        self.pre: Dict[int, int] = index.pre
        self.size: Dict[int, int] = index.size
        self.parent: Dict[int, Optional[int]] = tree.parent


class PythonKernel:
    """Columnar codecs + scalar classification; no third-party deps."""

    name = "python"
    vectorized = False

    # -- codecs --------------------------------------------------------
    def unpack_edge_columns(
        self, data: bytes
    ) -> Tuple["array[int]", "array[int]"]:
        """Split packed edge bytes into ``(u, v)`` int32 columns."""
        if len(data) % EDGE_BYTES:
            raise ValueError(
                f"byte length {len(data)} is not a multiple of the edge "
                f"size {EDGE_BYTES}"
            )
        flat = array(_TYPECODE)
        flat.frombytes(data)
        if _NEEDS_SWAP:
            flat.byteswap()
        return flat[0::2], flat[1::2]

    def pack_edge_columns(
        self,
        u_col: Union["array[int]", Sequence[int]],
        v_col: Union["array[int]", Sequence[int]],
    ) -> bytes:
        """Interleave two int32 columns back into on-disk edge bytes.

        Raises:
            ValueError: mismatched lengths or out-of-int32-range values.
        """
        if len(u_col) != len(v_col):
            raise ValueError(
                f"column length mismatch: {len(u_col)} vs {len(v_col)}"
            )
        try:
            us = (
                cast("array[int]", u_col)
                if _is_i32_array(u_col)
                else array(_TYPECODE, u_col)
            )
            vs = (
                cast("array[int]", v_col)
                if _is_i32_array(v_col)
                else array(_TYPECODE, v_col)
            )
        except OverflowError:
            raise ValueError("edge endpoint out of int32 range") from None
        flat = array(_TYPECODE, bytes(len(us) * EDGE_BYTES))
        flat[0::2] = us
        flat[1::2] = vs
        if _NEEDS_SWAP:
            flat.byteswap()
        return flat.tobytes()

    def pack_int_column(self, values: Sequence[int]) -> bytes:
        """Pack one int sequence into little-endian int32 bytes.

        Raises:
            ValueError: out-of-int32-range values.
        """
        try:
            column = (
                cast("array[int]", values)
                if _is_i32_array(values)
                else array(_TYPECODE, values)
            )
        except OverflowError:
            raise ValueError("column value out of int32 range") from None
        if _NEEDS_SWAP:
            column = array(_TYPECODE, column.tobytes())  # don't swap caller's
            column.byteswap()
        return column.tobytes()

    def int_column_from_buffer(
        self, buffer: Union[bytes, bytearray, memoryview], offset: int, count: int
    ) -> "array[int]":
        """Copy ``count`` int32 values at element ``offset`` out of ``buffer``."""
        view = memoryview(buffer)[offset * 4 : (offset + count) * 4]
        column = array(_TYPECODE)
        column.frombytes(view)
        if _NEEDS_SWAP:
            column.byteswap()
        return column

    # -- classification ------------------------------------------------
    def make_index(self, tree: SpanningTree) -> Optional[_DictIndexClassifier]:
        """Build a classifier for :meth:`classify_slice` (never dense)."""
        return _DictIndexClassifier(tree)

    def classify_slice(
        self,
        index: _DictIndexClassifier,
        u_col: Sequence[int],
        v_col: Sequence[int],
        start: int,
        capacity: int,
    ) -> ClassifiedSlice:
        """Classify ``(u_col, v_col)[start:]`` until ``capacity`` edges load.

        Returns ``(stop, counted, has_forward_cross, cross_edges)`` with
        the exact semantics of the restructure scalar loop: self-loops and
        tree edges are free; every other edge charges the batch; only
        cross edges are reported back.
        """
        pre = index.pre
        size = index.size
        parent = index.parent
        counted = 0
        has_forward_cross = False
        cross: List[Tuple[int, int]] = []
        stop = len(u_col)
        for position in range(start, len(u_col)):
            u = u_col[position]
            v = v_col[position]
            if u == v or parent.get(v) == u:
                continue
            pre_u = pre[u]
            pre_v = pre[v]
            counted += 1
            if pre_u < pre_v:
                if pre_v >= pre_u + size[u]:
                    cross.append((u, v))  # forward-cross
                    has_forward_cross = True
            elif pre_u >= pre_v + size[v]:
                cross.append((u, v))  # backward-cross
            if counted >= capacity:
                stop = position + 1
                break
        return stop, counted, has_forward_cross, cross

    # -- division primitives -------------------------------------------
    def make_columns(
        self, u_values: Sequence[int], v_values: Sequence[int]
    ) -> Tuple["array[int]", "array[int]"]:
        """Build stdlib-``array`` int32 columns from plain int sequences."""
        try:
            return array(_TYPECODE, u_values), array(_TYPECODE, v_values)
        except OverflowError:
            raise ValueError("edge endpoint out of int32 range") from None

    def collect_cross_edges(
        self,
        index: _DictIndexClassifier,
        u_col: Sequence[int],
        v_col: Sequence[int],
    ) -> List[Tuple[int, int]]:
        """Emit the block's cross edges via the interval tests alone.

        Tree, forward and backward edges and self-loops fail both cross
        tests (a tree edge's head sits inside the tail's subtree), so no
        parent lookup is needed — unlike :meth:`classify_slice`, which
        must *count* non-tree edges for batching.
        """
        pre = index.pre
        size = index.size
        cross: List[Tuple[int, int]] = []
        for u, v in zip(u_col, v_col):
            if u == v:
                continue
            pre_u = pre[u]
            pre_v = pre[v]
            if pre_u < pre_v:
                if pre_v >= pre_u + size[u]:
                    cross.append((u, v))  # forward-cross
            elif pre_u >= pre_v + size[v]:
                cross.append((u, v))  # backward-cross
        return cross

    # -- BFS relaxation ------------------------------------------------
    def make_level_column(self, levels: Sequence[int]) -> "array[int]":
        """Freeze the level sequence into an int32 column (-1 = unreached)."""
        try:
            return array(_TYPECODE, levels)
        except OverflowError:
            raise ValueError("level out of int32 range") from None

    def relax_levels(
        self,
        level_col: "array[int]",
        u_col: Sequence[int],
        v_col: Sequence[int],
    ) -> List[Tuple[int, int, int]]:
        """Scalar BFS relaxation; the semantics oracle for the numpy twin.

        The strictly-less replacement rule keeps the *first* scan-order
        tail among equal minimal candidates, because a later edge with the
        same candidate never displaces the stored one.
        """
        best: Dict[int, Tuple[int, int]] = {}
        for u, v in zip(u_col, v_col):
            level_u = level_col[u]
            if level_u < 0:
                continue
            candidate = level_u + 1
            level_v = level_col[v]
            if 0 <= level_v <= candidate:
                continue
            previous = best.get(v)
            if previous is None or candidate < previous[0]:
                best[v] = (candidate, u)
        return [
            (v, candidate, parent)
            for v, (candidate, parent) in sorted(best.items())
        ]

    def make_owner_index(self, owner: Mapping[int, int]) -> Dict[int, int]:
        """Routing index is the ``{node: part}`` dict itself (never declines)."""
        return dict(owner)

    def route_edges(
        self,
        owner_index: Dict[int, int],
        u_col: Sequence[int],
        v_col: Sequence[int],
    ) -> List[Tuple[int, "array[int]", "array[int]"]]:
        """Group part-internal edges into per-part columns, keys ascending."""
        get = owner_index.get
        buckets: Dict[int, Tuple["array[int]", "array[int]"]] = {}
        for u, v in zip(u_col, v_col):
            part = get(u)
            if part is None or part != get(v):
                continue
            pair = buckets.get(part)
            if pair is None:
                pair = (array(_TYPECODE), array(_TYPECODE))
                buckets[part] = pair
            pair[0].append(u)
            pair[1].append(v)
        return [
            (part, columns[0], columns[1])
            for part, columns in sorted(buckets.items())
        ]


def _is_i32_array(column: object) -> bool:
    return isinstance(column, array) and column.typecode == _TYPECODE
