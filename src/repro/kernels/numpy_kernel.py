"""The optional NumPy kernel backend: columnar codecs + vectorized classify.

Blocks move as flat little-endian int32 arrays (``frombuffer`` in,
``tobytes`` out) and classification happens with whole-block mask
arithmetic against a *dense* interval index — ``pre`` / ``size`` /
``parent`` as arrays indexed by node id — so only the rare cross edges
drop back into Python objects.  Importing this module requires numpy; the
registry in :mod:`repro.kernels.base` treats the ImportError as "backend
unavailable".
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

import numpy as np
import numpy.typing as npt

from ..core.classify import IntervalIndex
from ..core.tree import SpanningTree
from .base import ClassifiedSlice

EDGE_BYTES = 8  # two little-endian signed 32-bit ints

_EDGE_DTYPE = np.dtype("<i4")
_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

#: A dense index is only worth it while node ids stay reasonably compact;
#: beyond this expansion factor the dict-based scalar path wins on memory.
_DENSITY_LIMIT = 4


class DenseIntervalIndex:
    """Array-backed ``pre`` / ``size`` / ``parent`` keyed by node id.

    Holes (ids absent from the tree) carry ``-1`` in ``pre``/``size`` and
    ``-1`` in ``parent``; well-formed inputs never read them, exactly as
    the dict index would raise ``KeyError`` on a foreign node.
    """

    __slots__ = ("pre", "size", "parent")

    def __init__(
        self,
        pre: "npt.NDArray[np.int64]",
        size: "npt.NDArray[np.int64]",
        parent: "npt.NDArray[np.int64]",
    ) -> None:
        self.pre: "npt.NDArray[np.int64]" = pre
        self.size: "npt.NDArray[np.int64]" = size
        self.parent: "npt.NDArray[np.int64]" = parent


def _dense_column(
    keyed: Mapping[int, Optional[int]], length: int, missing: int
) -> "npt.NDArray[np.int64]":
    column = np.full(length, missing, dtype=np.int64)
    if keyed:
        keys = np.fromiter(keyed.keys(), dtype=np.int64, count=len(keyed))
        values = np.fromiter(
            (missing if v is None else v for v in keyed.values()),
            dtype=np.int64,
            count=len(keyed),
        )
        column[keys] = values
    return column


class NumpyKernel:
    """Vectorized columnar backend (requires numpy)."""

    name = "numpy"
    vectorized = True

    # -- codecs --------------------------------------------------------
    def unpack_edge_columns(
        self, data: bytes
    ) -> Tuple["npt.NDArray[np.int32]", "npt.NDArray[np.int32]"]:
        """Split packed edge bytes into ``(u, v)`` int32 column views."""
        if len(data) % EDGE_BYTES:
            raise ValueError(
                f"byte length {len(data)} is not a multiple of the edge "
                f"size {EDGE_BYTES}"
            )
        flat = np.frombuffer(data, dtype=_EDGE_DTYPE)
        return flat[0::2], flat[1::2]

    def pack_edge_columns(
        self, u_col: "npt.ArrayLike", v_col: "npt.ArrayLike"
    ) -> bytes:
        """Interleave two int32 columns back into on-disk edge bytes.

        Raises:
            ValueError: mismatched lengths or out-of-int32-range values.
        """
        us = self._as_int32(u_col)
        vs = self._as_int32(v_col)
        if len(us) != len(vs):
            raise ValueError(
                f"column length mismatch: {len(us)} vs {len(vs)}"
            )
        flat = np.empty(2 * len(us), dtype=_EDGE_DTYPE)
        flat[0::2] = us
        flat[1::2] = vs
        return flat.tobytes()

    def pack_int_column(self, values: "npt.ArrayLike") -> bytes:
        """Pack one int sequence into little-endian int32 bytes.

        Raises:
            ValueError: out-of-int32-range values.
        """
        try:
            return self._as_int32(values).tobytes()
        except ValueError as error:
            if "edge endpoint" in str(error):
                raise ValueError("column value out of int32 range") from None
            raise

    def int_column_from_buffer(
        self, buffer: "npt.ArrayLike", offset: int, count: int
    ) -> "npt.NDArray[np.int32]":
        """Zero-copy int32 view of ``count`` values at element ``offset``.

        The view aliases ``buffer`` — consume or copy it before the
        underlying memory (e.g. a shared-memory segment) is released.
        """
        return np.frombuffer(
            buffer, dtype=_EDGE_DTYPE, count=count, offset=offset * 4
        )

    @staticmethod
    def _as_int32(column: "npt.ArrayLike") -> "npt.NDArray[np.int32]":
        arr = np.asarray(column)
        if arr.ndim != 1:
            raise ValueError("edge columns must be one-dimensional")
        if arr.dtype == _EDGE_DTYPE:
            return arr  # int32 by construction, nothing to check
        try:
            wide = arr.astype(np.int64, casting="safe") if arr.size else arr
        except (TypeError, ValueError):
            raise ValueError("edge columns must hold integers") from None
        if arr.size and (
            int(wide.min()) < _INT32_MIN or int(wide.max()) > _INT32_MAX
        ):
            raise ValueError("edge endpoint out of int32 range")
        return wide.astype(_EDGE_DTYPE) if arr.size else arr.astype(_EDGE_DTYPE)

    # -- classification ------------------------------------------------
    def make_index(self, tree: SpanningTree) -> Optional[DenseIntervalIndex]:
        """Dense index over ``tree``, or ``None`` when ids are too sparse.

        ``None`` tells the caller to stay on the dict-based scalar path
        (divide & conquer parts can hold sparse id subsets); the restructure
        loop falls back transparently and semantics are unchanged.
        """
        if not tree.parent:
            return None
        max_id = max(tree.parent)
        if max_id + 1 > max(1024, _DENSITY_LIMIT * len(tree.parent)):
            return None
        index = IntervalIndex(tree)
        length = max_id + 1
        return DenseIntervalIndex(
            pre=_dense_column(index.pre, length, -1),
            size=_dense_column(index.size, length, -1),
            parent=_dense_column(tree.parent, length, -1),
        )

    def classify_slice(
        self,
        index: DenseIntervalIndex,
        u_col: "npt.NDArray[np.int32]",
        v_col: "npt.NDArray[np.int32]",
        start: int,
        capacity: int,
    ) -> ClassifiedSlice:
        """Vectorized twin of ``PythonKernel.classify_slice``.

        Whole-slice mask arithmetic; when the batch capacity lands inside
        the slice, a cumulative count pinpoints the exact edge the scalar
        loop would have flushed after, so batch boundaries are identical.
        """
        u = u_col[start:] if start else u_col
        v = v_col[start:] if start else v_col
        pre_u = index.pre[u]
        pre_v = index.pre[v]
        counted_mask = (u != v) & (index.parent[v] != u)
        ahead = pre_u < pre_v
        forward_cross = counted_mask & ahead & (pre_v >= pre_u + index.size[u])
        backward_cross = (
            counted_mask & ~ahead & (pre_u >= pre_v + index.size[v])
        )
        total = int(np.count_nonzero(counted_mask))
        if total > capacity:
            cumulative = np.cumsum(counted_mask)
            cut = int(np.searchsorted(cumulative, capacity, side="left")) + 1
            counted = capacity
            stop = start + cut
            forward_cross = forward_cross[:cut]
            backward_cross = backward_cross[:cut]
            u = u[:cut]
            v = v[:cut]
        else:
            counted = total
            stop = len(u_col)
        has_forward_cross = bool(forward_cross.any())
        cross_mask = forward_cross | backward_cross
        cross: List[Tuple[int, int]] = []
        if cross_mask.any():
            positions = np.nonzero(cross_mask)[0]
            cross = list(zip(u[positions].tolist(), v[positions].tolist()))
        return stop, counted, has_forward_cross, cross

    # -- division primitives -------------------------------------------
    def make_columns(
        self, u_values: "npt.ArrayLike", v_values: "npt.ArrayLike"
    ) -> Tuple["npt.NDArray[np.int32]", "npt.NDArray[np.int32]"]:
        """Build int32 ndarray columns from plain int sequences."""
        return self._as_int32(u_values), self._as_int32(v_values)

    def collect_cross_edges(
        self,
        index: DenseIntervalIndex,
        u_col: "npt.NDArray[np.int32]",
        v_col: "npt.NDArray[np.int32]",
    ) -> List[Tuple[int, int]]:
        """Vectorized twin of ``PythonKernel.collect_cross_edges``.

        Pure interval arithmetic: tree/forward/backward edges and
        self-loops fail both cross masks, so no parent column is read.
        """
        pre_u = index.pre[u_col]
        pre_v = index.pre[v_col]
        ahead = pre_u < pre_v
        cross_mask = np.where(
            ahead,
            pre_v >= pre_u + index.size[u_col],
            pre_u >= pre_v + index.size[v_col],
        )
        if not cross_mask.any():
            return []
        positions = np.nonzero(cross_mask)[0]
        return list(
            zip(u_col[positions].tolist(), v_col[positions].tolist())
        )

    # -- BFS relaxation ------------------------------------------------
    def make_level_column(
        self, levels: "npt.ArrayLike"
    ) -> "npt.NDArray[np.int64]":
        """Freeze the level sequence into an int64 column (-1 = unreached).

        int64 so ``level + 1`` can never wrap, and so the column doubles
        as a fancy index into itself without casts.
        """
        return np.asarray(levels, dtype=np.int64)

    def relax_levels(
        self,
        level_col: "npt.NDArray[np.int64]",
        u_col: "npt.NDArray[np.int32]",
        v_col: "npt.NDArray[np.int32]",
    ) -> List[Tuple[int, int, int]]:
        """Vectorized twin of ``PythonKernel.relax_levels``.

        The lexsort orders each destination's improving edges by
        (candidate level, scan position), so the first row of every
        ``v``-group is exactly the scalar loop's strictly-less winner:
        the minimal candidate, achieved by the earliest edge in scan
        order.
        """
        if len(u_col) == 0:
            return []
        level_u = level_col[u_col]
        level_v = level_col[v_col]
        candidate = level_u + 1
        improves = (level_u >= 0) & ((level_v < 0) | (candidate < level_v))
        if not improves.any():
            return []
        positions = np.nonzero(improves)[0]
        vs = v_col[positions]
        candidates = candidate[positions]
        order = np.lexsort((positions, candidates, vs))
        vs_sorted = vs[order]
        first_of_group = np.empty(len(order), dtype=bool)
        first_of_group[0] = True
        first_of_group[1:] = vs_sorted[1:] != vs_sorted[:-1]
        winners = order[first_of_group]
        return list(
            zip(
                vs[winners].tolist(),
                candidates[winners].tolist(),
                u_col[positions][winners].tolist(),
            )
        )

    def make_owner_index(
        self, owner: Mapping[int, int]
    ) -> Optional["npt.NDArray[np.int64]"]:
        """Dense ``node → part`` array, or ``None`` when ids are too sparse.

        Mirrors :meth:`make_index`'s density rule; ``None`` sends the
        caller to the python kernel's dict-based routing.
        """
        if not owner:
            return None
        max_id = max(owner)
        if max_id + 1 > max(1024, _DENSITY_LIMIT * len(owner)):
            return None
        return _dense_column(owner, max_id + 1, -1)

    def route_edges(
        self,
        owner_index: "npt.NDArray[np.int64]",
        u_col: "npt.NDArray[np.int32]",
        v_col: "npt.NDArray[np.int32]",
    ) -> List[Tuple[int, "npt.NDArray[np.int32]", "npt.NDArray[np.int32]"]]:
        """Group part-internal edges into per-part columns, keys ascending.

        Nodes outside the index (id beyond the array, or a ``-1`` hole)
        own no part, exactly as the dict's ``.get`` returning ``None``.
        """
        limit = len(owner_index)
        in_range_u = (u_col >= 0) & (u_col < limit)
        in_range_v = (v_col >= 0) & (v_col < limit)
        own_u = np.where(
            in_range_u, owner_index[np.clip(u_col, 0, limit - 1)], -1
        )
        own_v = np.where(
            in_range_v, owner_index[np.clip(v_col, 0, limit - 1)], -1
        )
        internal = (own_u >= 0) & (own_u == own_v)
        if not internal.any():
            return []
        parts = own_u[internal]
        us = u_col[internal]
        vs = v_col[internal]
        routed: List[
            Tuple[int, "npt.NDArray[np.int32]", "npt.NDArray[np.int32]"]
        ] = []
        for part in np.unique(parts).tolist():  # unique() sorts ascending
            members = parts == part
            routed.append((int(part), us[members], vs[members]))
        return routed
