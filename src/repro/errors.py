"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses separate the three
failure domains of a semi-external graph system: the storage substrate, the
memory model, and the algorithms themselves.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class StorageError(ReproError):
    """An on-disk structure is missing, closed, or corrupt."""


class ClosedFileError(StorageError):
    """An operation was attempted on a closed device or edge file."""


class MemoryBudgetExceeded(ReproError):
    """A charge against :class:`repro.storage.MemoryBudget` went over `M`."""


class InvalidGraphError(ReproError):
    """A graph input violates a documented precondition (bad node id, ...)."""


class ConvergenceError(ReproError):
    """A restructuring heuristic exceeded its pass limit.

    The Sibeyn et al. procedures are heuristics whose worst case is ``n``
    passes over the edge file; the library caps passes (see
    ``max_passes``) and raises this error rather than loop unboundedly.
    """


class InvalidDivisionError(ReproError):
    """A division violates one of the four validity properties (Section 5)."""


class NotADAGError(ReproError):
    """Topological sort was requested for a graph that contains a cycle."""
