"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses separate the three
failure domains of a semi-external graph system: the storage substrate, the
memory model, and the algorithms themselves.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class StorageError(ReproError):
    """An on-disk structure is missing, closed, or corrupt."""


class ClosedFileError(StorageError):
    """An operation was attempted on a closed device or edge file."""


class TransientIOError(StorageError):
    """A single block transfer failed in a retryable way.

    Raised by the fault-injection layer (and the place a real deployment
    would surface ``EIO``/timeout errors).  :class:`~repro.storage.BlockDevice`
    catches it internally and retries with backoff; callers only ever see
    :class:`RetriesExhausted` once the retry budget is spent.
    """


class CorruptBlockError(StorageError):
    """A block's checksum did not match its payload, or its frame was cut
    short.

    Detected by the per-block CRC the serialization layer writes (see
    ``docs/ARCHITECTURE.md``, *Fault model*).  A corrupt block is retried —
    in-flight (torn) corruption heals on re-read — but corruption that
    persists on disk raises this error to the caller instead of silently
    classifying garbage edges.
    """


class RetriesExhausted(StorageError):
    """Bounded retry-with-backoff gave up on a block transfer.

    Attributes:
        last_error: the final underlying error (a
            :class:`TransientIOError` or :class:`CorruptBlockError`).
        attempts: how many attempts were made (1 + retries).
    """

    def __init__(self, message: str, last_error: "Exception | None" = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


class MemoryBudgetExceeded(ReproError):
    """A charge against :class:`repro.storage.MemoryBudget` went over `M`."""


class InvalidGraphError(ReproError):
    """A graph input violates a documented precondition (bad node id, ...)."""


class ConvergenceError(ReproError):
    """A restructuring heuristic exceeded its pass limit.

    The Sibeyn et al. procedures are heuristics whose worst case is ``n``
    passes over the edge file; the library caps passes (see
    ``max_passes``) and raises this error rather than loop unboundedly.
    """


class InvalidDivisionError(ReproError):
    """A division violates one of the four validity properties (Section 5)."""


class NotADAGError(ReproError):
    """Topological sort was requested for a graph that contains a cycle."""


class ArtifactError(StorageError):
    """Base class for sealed-artifact store failures (:mod:`repro.serve`)."""


class ArtifactNotFound(ArtifactError):
    """No artifact (or no such version) exists under the requested name."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact's manifest or payload failed checksum/schema validation."""


class QueryError(ReproError):
    """A serve-layer query is malformed or cannot be answered.

    Attributes:
        code: stable machine-readable error code (kebab-case), mapped to
            an HTTP status by :mod:`repro.serve.app`.
    """

    def __init__(self, message: str, code: str = "bad-query") -> None:
        super().__init__(message)
        self.code = code


class DeadlineExceeded(ReproError):
    """A serve-layer request ran past its per-request deadline."""
