#!/usr/bin/env python3
"""Scenario: community structure of a follower network on disk.

The twitter-2010 dataset is the paper's hardest instance: one SCC covers
80.4% of its users, which defeats the root-children division.  This
example runs the same analysis on the twitter stand-in:

1. semi-external Kosaraju (two DFS passes) extracts the SCCs and finds
   the planted giant component;
2. weakly connected components come from a single union-find scan;
3. the example contrasts Divide-Star and Divide-TD on this SCC-heavy
   graph — the comparison behind the paper's Fig. 9.

Run:  python examples/social_reachability.py
"""

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.apps import strongly_connected_components, weakly_connected_components
from repro.graph import twitter2010_like


def main() -> None:
    spec = twitter2010_like(scale=0.25)
    with BlockDevice() as device:
        graph = DiskGraph.from_edges(
            device, spec.node_count, spec.edges(), validate=False
        )
        memory = 3 * spec.node_count + graph.edge_count // 8
        print(f"follower graph '{spec.name}': {graph.node_count} users, "
              f"{graph.edge_count} follow edges")

        weak = weakly_connected_components(graph)
        print(f"\nweak components: {len(weak)} "
              f"(largest {len(weak[0])} users)")

        sccs = strongly_connected_components(graph, memory)
        giant = len(sccs[0])
        print(f"strong components: {len(sccs)}; giant SCC covers "
              f"{giant}/{graph.node_count} users "
              f"({giant / graph.node_count:.1%} — the paper reports 80.4% "
              "for twitter-2010)")

        print("\nDivide-Star vs Divide-TD on the SCC-heavy graph:")
        for algorithm in ["divide-star", "divide-td"]:
            result = semi_external_dfs(graph, memory, algorithm=algorithm)
            print(f"  {algorithm:12s} time={result.elapsed_seconds:6.2f}s "
                  f"I/Os={result.io.total:6d} passes={result.passes:3d} "
                  f"divisions={result.divisions}")


if __name__ == "__main__":
    main()
