#!/usr/bin/env python3
"""Scenario: resilience audit of an infrastructure network on disk.

Uses two of the library's DFS applications together with run tracing:

1. articulation points and bridges find the single points of failure of
   a hub-structured network (semi-external lowpoint computation);
2. a span `Tracer` exposes how Divide-TD actually carves the graph —
   which recursion level divided, into how many parts, of what sizes —
   and where the block I/O went, phase by phase.

Run:  python examples/network_resilience.py
"""

import random

from repro import BlockDevice, DiskGraph, Tracer
from repro.algorithms import divide_td_dfs
from repro.apps import connectivity_report, weakly_connected_components
from repro.obs import render_profile


def backbone_network_edges(region_count: int = 24, region_size: int = 120,
                           seed: int = 5):
    """Regions with internal rings, joined by a sparse backbone.

    Each region's gateway (its first node) joins a backbone ring; a few
    regions hang off a single backbone link — those links are the bridges
    a resilience audit must find.
    """
    rng = random.Random(seed)
    node_count = region_count * region_size
    for region in range(region_count):
        base = region * region_size
        for i in range(region_size):  # internal ring: no cuts inside
            yield (base + i, base + (i + 1) % region_size)
            yield (base + (i + 1) % region_size, base + i)
            for _ in range(2):  # redundant chords inside the region
                other = rng.randrange(region_size)
                if other != i:
                    yield (base + i, base + other)
    for region in range(region_count - 1):  # backbone chain
        a, b = region * region_size, (region + 1) * region_size
        yield (a, b)
        yield (b, a)
        if region % 3 == 0 and region + 2 < region_count:
            c = (region + 2) * region_size  # redundancy for some pairs
            yield (a, c)
            yield (c, a)
    # stub regions: spurs that hang off one gateway by a single link
    for region in range(1, region_count, 5):
        hub = region * region_size
        spur = hub + region_size // 2
        yield (hub, spur)


def main() -> None:
    region_count, region_size = 24, 120
    node_count = region_count * region_size
    with BlockDevice(block_elements=256) as device:
        graph = DiskGraph.from_edges(
            device, node_count, backbone_network_edges(region_count, region_size),
            validate=False,
        )
        memory = 3 * node_count + graph.edge_count // 10
        print(f"network: {node_count} nodes, {graph.edge_count} links")

        components = weakly_connected_components(graph)
        print(f"connected components: {len(components)}")

        report = connectivity_report(graph, memory)
        gateways = {node for node in report.articulation_points
                    if node % region_size == 0}
        print(f"articulation points: {len(report.articulation_points)} "
              f"({len(gateways)} of them are region gateways)")
        print(f"bridges (single points of failure): {len(report.bridges)}")
        for parent, child in sorted(report.bridges)[:5]:
            print(f"  bridge between region {parent // region_size} "
                  f"and region {child // region_size}")

        # How does Divide-TD see this topology?
        tracer = Tracer()
        result = divide_td_dfs(graph, memory, tracer=tracer)
        print(f"\nDivide-TD: {result.passes} passes, {result.divisions} "
              f"divisions, {result.io.total} block I/Os")
        for event in result.events:
            attrs = event.attributes
            if event.name == "divide" and "parts" in attrs:
                sizes = attrs["part_sizes"]
                preview = ", ".join(map(str, sizes[:6]))
                extra = " ..." if len(sizes) > 6 else ""
                print(f"  depth {attrs['depth']}: divided {attrs['nodes']} "
                      f"nodes into {attrs['parts']} parts "
                      f"(sizes {preview}{extra})")
        print()
        print(render_profile(result.events))


if __name__ == "__main__":
    main()
