#!/usr/bin/env python3
"""Scenario: scheduling a build pipeline whose dependency graph is on disk.

Topological sort is the first application the paper's introduction
motivates.  This example models a large generated build system — tens of
thousands of targets with dependency edges — too big (by assumption) to
hold in memory, computes a build order with one semi-external DFS, and
then demonstrates cycle diagnosis after a bad edge is introduced.

Run:  python examples/toposort_pipeline.py
"""

import random

from repro import BlockDevice, DiskGraph
from repro.apps import find_cycle, topological_order
from repro.errors import NotADAGError


def build_dependency_edges(target_count: int, seed: int = 3):
    """A layered build graph: each target depends on a few earlier ones."""
    rng = random.Random(seed)
    for target in range(1, target_count):
        for _ in range(rng.randint(1, 4)):
            dependency = rng.randrange(max(0, target - 2000), target)
            # edge dependency -> target: dependency must build first
            yield (dependency, target)


def main() -> None:
    target_count = 30_000
    with BlockDevice() as device:
        graph = DiskGraph.from_edges(
            device, target_count, build_dependency_edges(target_count),
            validate=False,
        )
        memory = 3 * target_count + graph.edge_count // 4
        print(f"build graph: {target_count} targets, "
              f"{graph.edge_count} dependency edges on disk")

        order = topological_order(graph, memory, algorithm="divide-td")
        position = {target: i for i, target in enumerate(order)}
        violations = sum(
            1 for u, v in graph.scan() if position[u] >= position[v]
        )
        print(f"build order computed; first 8 targets: {order[:8]}")
        print(f"dependency violations: {violations} (must be 0)")

        # Now someone adds a dependency from a late target back to an
        # early one — the classic circular-dependency incident.
        broken = DiskGraph.from_edges(
            device,
            target_count,
            list(graph.scan()) + [(target_count - 1, 5)],
            validate=False,
        )
        try:
            topological_order(broken, memory)
            print("ERROR: cycle not detected!")
        except NotADAGError as exc:
            print(f"\ncycle correctly rejected: {exc}")
        witness = find_cycle(broken, memory)
        print(f"offending dependency cycle has {len(witness)} targets, "
              f"e.g. {witness[:6]} ...")


if __name__ == "__main__":
    main()
