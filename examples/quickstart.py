#!/usr/bin/env python3
"""Quickstart: DFS a graph that lives on disk, under a memory budget.

Builds a 20k-node power-law graph, stores its edges on a simulated block
device, and computes a DFS-Tree with each of the four semi-external
algorithms — comparing their I/O cost and verifying every result against
the defining DFS-Tree property (no forward-cross edges on a full scan).

Run:  python examples/quickstart.py
"""

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.core import verify_dfs_tree
from repro.graph import power_law_graph_edges


def main() -> None:
    node_count = 1_200
    degree = 5

    # A small block size keeps the block-I/O numbers readable at this
    # example's scale (the library default is 4096 edges per block).
    with BlockDevice(block_elements=512) as device:
        print(f"materializing a {node_count}-node, degree-{degree} power-law "
              f"graph on {device.directory} ...")
        graph = DiskGraph.from_edges(
            device,
            node_count,
            power_law_graph_edges(node_count, degree, seed=7),
            validate=False,
        )
        print(f"graph: n={graph.node_count}, m={graph.edge_count}, "
              f"|G|={graph.size} elements, "
              f"{graph.edge_file.block_count} blocks on disk")

        # The semi-external budget: the spanning tree (3n) plus a batch
        # worth 20% of the edges.
        memory = 3 * node_count + graph.edge_count // 5
        print(f"memory budget M = {memory} elements "
              f"({memory / graph.size:.0%} of |G|)\n")

        print(f"{'algorithm':14s} {'time':>7s} {'I/Os':>7s} {'passes':>6s} "
              f"{'divisions':>9s}  valid")
        for algorithm in ["edge-by-edge", "edge-by-batch", "divide-star",
                          "divide-td"]:
            result = semi_external_dfs(graph, memory, algorithm=algorithm)
            report = verify_dfs_tree(graph, result.tree)
            print(f"{algorithm:14s} {result.elapsed_seconds:6.2f}s "
                  f"{result.io.total:7d} {result.passes:6d} "
                  f"{result.divisions:9d}  {report.ok}")

        # The DFS total order is the result's preorder:
        result = semi_external_dfs(graph, memory, algorithm="divide-td",
                                   start=0)
        print(f"\nDFS order starting at node 0: "
              f"{result.order[:10]} ... ({len(result.order)} nodes)")


if __name__ == "__main__":
    main()
