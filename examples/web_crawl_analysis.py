#!/usr/bin/env python3
"""Scenario: auditing a web crawl that only exists as an edge file.

Web graphs are the paper's headline workload (arabic-2005 and
webspam-uk2007).  This example audits a host-structured crawl stand-in:

1. one semi-external DFS (Divide-TD) gives the crawl's DFS order and
   shows how the host-local structure lets the divider carve the graph;
2. the DFS edge taxonomy (forward / backward / cross) summarizes the
   link structure;
3. bipartiteness testing checks whether the page graph is two-colorable
   (link-farm-style bipartite cores would pass).

Run:  python examples/web_crawl_analysis.py
"""

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.apps import check_bipartite
from repro.core import verify_dfs_tree
from repro.graph import arabic2005_like


def main() -> None:
    spec = arabic2005_like(scale=0.5)
    with BlockDevice() as device:
        graph = DiskGraph.from_edges(
            device, spec.node_count, spec.edges(), validate=False
        )
        memory = 3 * spec.node_count + graph.edge_count // 10
        print(f"crawl stand-in '{spec.name}': {graph.node_count} pages, "
              f"{graph.edge_count} links, M = {memory} elements")

        result = semi_external_dfs(graph, memory, algorithm="divide-td")
        print(f"\nDFS computed in {result.elapsed_seconds:.2f}s, "
              f"{result.io.total} block I/Os, {result.passes} passes, "
              f"{result.divisions} divisions "
              f"(recursion depth {result.max_depth})")

        report = verify_dfs_tree(graph, result.tree)
        print("link taxonomy w.r.t. the DFS tree:")
        for kind, count in sorted(report.counts.items(), key=lambda kv: -kv[1]):
            if count:
                print(f"  {kind.value:15s} {count:8d}")
        print(f"forward-cross links: {report.forward_cross_count} "
              "(zero certifies a valid DFS-Tree)")

        # Host locality: how many tree edges stay within a 100-page host?
        # Public page ids follow crawl discovery order, so hosts are
        # recovered through the dataset's documented id permutation.
        from repro.graph.datasets import crawl_page_permutation

        permutation = crawl_page_permutation(spec.node_count, seed=11)
        structural = {public: orig for orig, public in enumerate(permutation)}
        intra = total = 0
        for parent, child in result.tree.tree_edges():
            if result.tree.is_virtual(parent):
                continue
            total += 1
            if structural[parent] // 100 == structural[child] // 100:
                intra += 1
        print(f"\ntree edges within one host: {intra}/{total} "
              f"({intra / total:.0%}) — the locality Divide-TD exploits")

        bipartite = check_bipartite(graph, memory)
        print(f"page graph bipartite: {bipartite.bipartite}"
              + ("" if bipartite.bipartite
                 else f" (odd cycle witness edge: {bipartite.odd_edge})"))


if __name__ == "__main__":
    main()
