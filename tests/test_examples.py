"""Smoke tests: the two fast example scripts must run end to end.

The slower examples (web crawl, social reachability, resilience) are
exercised by CI's example job; here we only keep the quick ones so the
unit suite stays fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "divide-td" in out
    assert "True" in out  # validity column
    assert "DFS order starting at node 0" in out


@pytest.mark.slow
def test_toposort_pipeline_runs():
    out = run_example("toposort_pipeline.py")
    assert "dependency violations: 0" in out
    assert "cycle correctly rejected" in out
