"""Tests for semi-external articulation points and bridges."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps.connectivity import articulation_points, bridges, connectivity_report
from repro.graph import Digraph, directed_cycle, grid_graph, random_graph


def oracle(graph: Digraph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.node_count))
    nx_graph.add_edges_from((u, v) for u, v in graph.edges() if u != v)
    points = set(nx.articulation_points(nx_graph))
    cut_edges = {frozenset(edge) for edge in nx.bridges(nx_graph)}
    return points, cut_edges


def normalize_bridges(found):
    return {frozenset(edge) for edge in found}


class TestKnownShapes:
    def test_path_all_internal_nodes_cut(self, device):
        graph = Digraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        disk = DiskGraph.from_digraph(device, graph)
        report = connectivity_report(disk, memory=3 * 5 + 40)
        assert report.articulation_points == {1, 2, 3}
        assert normalize_bridges(report.bridges) == {
            frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3}),
            frozenset({3, 4}),
        }

    def test_cycle_has_no_cuts(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(8))
        report = connectivity_report(disk, memory=3 * 8 + 40)
        assert report.articulation_points == set()
        assert report.bridges == set()
        assert report.is_biconnected(8)

    def test_barbell_middle_is_cut(self, device):
        # two triangles joined through node 2-3 bridge
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        graph = Digraph.from_edges(6, edges)
        disk = DiskGraph.from_digraph(device, graph)
        report = connectivity_report(disk, memory=3 * 6 + 50)
        assert report.articulation_points == {2, 3}
        assert normalize_bridges(report.bridges) == {frozenset({2, 3})}

    def test_grid_is_biconnected_enough(self, device):
        graph = grid_graph(4, 4)
        disk = DiskGraph.from_digraph(device, graph)
        points, cut_edges = oracle(graph)
        report = connectivity_report(disk, memory=3 * 16 + 80)
        assert report.articulation_points == points
        assert normalize_bridges(report.bridges) == cut_edges

    def test_antiparallel_pair_is_one_undirected_edge(self, device):
        """(u,v) and (v,u) collapse: the edge is still a bridge."""
        graph = Digraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        report = connectivity_report(disk, memory=3 * 3 + 30)
        assert normalize_bridges(report.bridges) == {
            frozenset({0, 1}), frozenset({1, 2}),
        }

    def test_self_loops_ignored(self, device):
        graph = Digraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        report = connectivity_report(disk, memory=3 * 3 + 30)
        assert report.articulation_points == {1}

    def test_wrappers(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        assert articulation_points(disk, memory=3 * 3 + 30) == {1}
        assert normalize_bridges(bridges(disk, memory=3 * 3 + 30)) == {
            frozenset({0, 1}), frozenset({1, 2}),
        }


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, device_factory, seed):
        graph = random_graph(60, 1.2, seed=seed)  # sparse -> many cuts
        disk = DiskGraph.from_digraph(device_factory(32), graph)
        points, cut_edges = oracle(graph)
        report = connectivity_report(disk, memory=3 * 60 + 120)
        assert report.articulation_points == points
        assert normalize_bridges(report.bridges) == cut_edges

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=25), st.integers(0, 99))
    def test_property_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 1.5, seed=seed)
        points, cut_edges = oracle(graph)
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            report = connectivity_report(disk, memory=3 * node_count + 60)
        assert report.articulation_points == points
        assert normalize_bridges(report.bridges) == cut_edges


class TestBiconnectedComponents:
    def nx_oracle(self, graph):
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(graph.node_count))
        nx_graph.add_edges_from((u, v) for u, v in graph.edges() if u != v)
        components = []
        for component in nx.biconnected_component_edges(nx_graph):
            components.append(
                frozenset(tuple(sorted(edge)) for edge in component)
            )
        return sorted(components, key=len, reverse=True)

    def mine(self, device, graph, memory):
        from repro.apps.connectivity import biconnected_components

        disk = DiskGraph.from_digraph(device, graph)
        found = biconnected_components(disk, memory)
        return sorted((frozenset(c) for c in found), key=len, reverse=True)

    def test_two_triangles_and_bridge(self, device):
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        graph = Digraph.from_edges(6, edges)
        components = self.mine(device, graph, memory=3 * 6 + 50)
        assert sorted(components, key=sorted) == sorted(
            self.nx_oracle(graph), key=sorted
        )
        assert len(components) == 3  # triangle, triangle, bridge

    def test_cycle_is_one_component(self, device):
        graph = directed_cycle(7)
        components = self.mine(device, graph, memory=3 * 7 + 40)
        assert len(components) == 1
        assert len(components[0]) == 7

    @pytest.mark.parametrize("seed", range(6))
    def test_random_matches_networkx(self, device_factory, seed):
        graph = random_graph(50, 1.3, seed=seed)
        mine = self.mine(device_factory(32), graph, memory=3 * 50 + 120)
        assert sorted(mine, key=sorted) == sorted(
            self.nx_oracle(graph), key=sorted
        )

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=22), st.integers(0, 99))
    def test_property_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 1.6, seed=seed)
        with BlockDevice(block_elements=16) as device:
            mine = self.mine(device, graph, memory=3 * node_count + 60)
        assert sorted(mine, key=sorted) == sorted(
            self.nx_oracle(graph), key=sorted
        )
