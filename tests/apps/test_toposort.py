"""Tests for semi-external topological sort."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps import topological_order
from repro.errors import NotADAGError
from repro.graph import Digraph, directed_cycle, random_dag


class TestTopologicalOrder:
    def test_valid_linearization(self, device):
        dag = random_dag(120, 500, seed=1)
        disk = DiskGraph.from_digraph(device, dag)
        order = topological_order(disk, memory=3 * 120 + 150)
        position = {node: i for i, node in enumerate(order)}
        assert sorted(order) == list(range(120))
        for u, v in dag.edges():
            assert position[u] < position[v]

    def test_cycle_raises(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(30))
        with pytest.raises(NotADAGError):
            topological_order(disk, memory=3 * 30 + 50)

    def test_self_loop_raises(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 1)])
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(NotADAGError):
            topological_order(disk, memory=3 * 3 + 50)

    def test_edgeless_graph(self, device):
        disk = DiskGraph.from_digraph(device, Digraph(10))
        order = topological_order(disk, memory=3 * 10 + 20)
        assert sorted(order) == list(range(10))

    @pytest.mark.parametrize(
        "algorithm", ["edge-by-edge", "edge-by-batch", "divide-star", "divide-td"]
    )
    def test_every_algorithm_usable(self, device, algorithm):
        dag = random_dag(60, 200, seed=2)
        disk = DiskGraph.from_digraph(device, dag)
        order = topological_order(disk, memory=3 * 60 + 100, algorithm=algorithm)
        position = {node: i for i, node in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=99),
    )
    def test_property_agrees_with_networkx_validity(self, node_count, seed):
        dag = random_dag(node_count, 3 * node_count, seed=seed)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(node_count))
        nx_graph.add_edges_from(dag.edges())
        assert nx.is_directed_acyclic_graph(nx_graph)
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, dag)
            order = topological_order(disk, memory=3 * node_count + 60)
        position = {node: i for i, node in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]
