"""Tests for semi-external cycle detection."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps import find_cycle, has_cycle
from repro.graph import Digraph, directed_cycle, random_dag, random_graph


class TestFindCycle:
    def test_simple_cycle_found(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(10))
        cycle = find_cycle(disk, memory=3 * 10 + 30)
        assert cycle is not None
        assert len(cycle) == 10

    def test_cycle_edges_are_real(self, device):
        graph = random_graph(100, 4, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        cycle = find_cycle(disk, memory=3 * 100 + 120)
        assert cycle is not None
        edges = set(graph.edges())
        for i, node in enumerate(cycle):
            successor = cycle[(i + 1) % len(cycle)]
            assert (node, successor) in edges

    def test_dag_returns_none(self, device):
        disk = DiskGraph.from_digraph(device, random_dag(80, 300, seed=2))
        assert find_cycle(disk, memory=3 * 80 + 100) is None

    def test_self_loop_is_a_cycle(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (2, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        assert find_cycle(disk, memory=3 * 3 + 30) == [2]

    def test_has_cycle_wrapper(self, device):
        assert has_cycle(
            DiskGraph.from_digraph(device, directed_cycle(5)), memory=3 * 5 + 20
        )
        assert not has_cycle(
            DiskGraph.from_digraph(device, random_dag(20, 50, seed=3)),
            memory=3 * 20 + 40,
        )

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=25), st.integers(0, 99))
    def test_property_detects_exactly_cyclic_graphs(self, node_count, seed):
        import networkx as nx

        graph = random_graph(node_count, 2, seed=seed)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(node_count))
        nx_graph.add_edges_from(graph.edges())
        expected = not nx.is_directed_acyclic_graph(nx_graph)
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            assert has_cycle(disk, memory=3 * node_count + 50) == expected
