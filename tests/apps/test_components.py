"""Tests for weakly/strongly connected components on disk graphs."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps import (
    UnionFind,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph import (
    Digraph,
    directed_cycle,
    disconnected_clusters,
    random_graph,
    twitter2010_like,
)


class TestUnionFind:
    def test_union_and_find(self):
        dsu = UnionFind(5)
        assert dsu.union(0, 1)
        assert dsu.union(1, 2)
        assert not dsu.union(0, 2)  # already merged
        assert dsu.find(0) == dsu.find(2)
        assert dsu.find(3) != dsu.find(0)

    def test_union_by_size_keeps_large_root(self):
        dsu = UnionFind(6)
        dsu.union(0, 1)
        dsu.union(0, 2)
        root_large = dsu.find(0)
        dsu.union(3, 4)
        dsu.union(0, 3)
        assert dsu.find(3) == root_large


class TestWeaklyConnected:
    def test_disconnected_clusters(self, device):
        graph = disconnected_clusters([30, 20, 10], intra_degree=3, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        components = weakly_connected_components(disk)
        sizes = sorted(len(c) for c in components)
        # intra_degree 3 makes each cluster (very likely) weakly connected
        assert sum(sizes) == 60
        assert len(components) >= 3

    def test_ordering_largest_first(self, device):
        graph = disconnected_clusters([5, 40], intra_degree=3, seed=2)
        disk = DiskGraph.from_digraph(device, graph)
        components = weakly_connected_components(disk)
        assert len(components[0]) >= len(components[-1])

    def test_matches_networkx(self, device):
        graph = random_graph(100, 1, seed=3)  # sparse -> several components
        disk = DiskGraph.from_digraph(device, graph)
        mine = sorted(sorted(c) for c in weakly_connected_components(disk))
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(100))
        nx_graph.add_edges_from(graph.edges())
        theirs = sorted(sorted(c) for c in nx.connected_components(nx_graph))
        assert mine == theirs


class TestStronglyConnected:
    def oracle(self, graph):
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(graph.node_count))
        nx_graph.add_edges_from(graph.edges())
        return sorted(sorted(c) for c in nx.strongly_connected_components(nx_graph))

    def test_cycle_is_one_scc(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(25))
        components = strongly_connected_components(disk, memory=3 * 25 + 60)
        assert len(components) == 1
        assert sorted(components[0]) == list(range(25))

    def test_matches_networkx_on_random(self, device):
        graph = random_graph(150, 3, seed=4)
        disk = DiskGraph.from_digraph(device, graph)
        mine = sorted(
            sorted(c)
            for c in strongly_connected_components(disk, memory=3 * 150 + 200)
        )
        assert mine == self.oracle(graph)

    def test_twitter_standin_giant_scc(self, device):
        spec = twitter2010_like(scale=0.03)
        graph = Digraph.from_edges(spec.node_count, spec.edges())
        disk = DiskGraph.from_digraph(device, graph)
        components = strongly_connected_components(
            disk, memory=3 * spec.node_count + spec.node_count
        )
        assert len(components[0]) / spec.node_count == pytest.approx(0.804, abs=0.05)

    @pytest.mark.parametrize("first_pass", ["edge-by-batch", "divide-td"])
    def test_first_pass_algorithm_interchangeable(self, device, first_pass):
        graph = random_graph(80, 3, seed=5)
        disk = DiskGraph.from_digraph(device, graph)
        mine = sorted(
            sorted(c)
            for c in strongly_connected_components(
                disk, memory=3 * 80 + 150, first_pass_algorithm=first_pass
            )
        )
        assert mine == self.oracle(graph)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=30), st.integers(0, 99))
    def test_property_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 2, seed=seed)
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            mine = sorted(
                sorted(c)
                for c in strongly_connected_components(
                    disk, memory=3 * node_count + 60
                )
            )
        assert mine == self.oracle(graph)
