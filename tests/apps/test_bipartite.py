"""Tests for semi-external bipartiteness testing."""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps import check_bipartite
from repro.graph import Digraph, directed_cycle, grid_graph, random_graph


class TestBipartite:
    def test_grid_is_bipartite_with_valid_coloring(self, device):
        graph = grid_graph(6, 5)
        disk = DiskGraph.from_digraph(device, graph)
        report = check_bipartite(disk, memory=3 * 30 + 80)
        assert report.bipartite
        assert report.odd_edge is None
        for u, v in graph.edges():
            assert report.coloring[u] != report.coloring[v]

    def test_even_cycle_bipartite(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(10))
        assert check_bipartite(disk, memory=3 * 10 + 40).bipartite

    def test_odd_cycle_not_bipartite(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(9))
        report = check_bipartite(disk, memory=3 * 9 + 40)
        assert not report.bipartite
        assert report.coloring is None
        assert report.odd_edge is not None

    def test_triangle_witness_edge_is_real(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        disk = DiskGraph.from_digraph(device, graph)
        report = check_bipartite(disk, memory=3 * 3 + 30)
        assert not report.bipartite
        u, v = report.odd_edge
        symmetric = set(graph.edges()) | {(b, a) for a, b in graph.edges()}
        assert (u, v) in symmetric

    def test_edgeless_graph_bipartite(self, device):
        disk = DiskGraph.from_digraph(device, Digraph(5))
        report = check_bipartite(disk, memory=3 * 5 + 20)
        assert report.bipartite

    def test_temporary_symmetric_file_cleaned(self, device):
        import os

        graph = grid_graph(4, 4)
        disk = DiskGraph.from_digraph(device, graph)
        before = set(os.listdir(device.directory))
        check_bipartite(disk, memory=3 * 16 + 60)
        assert set(os.listdir(device.directory)) == before

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=25), st.integers(0, 99))
    def test_property_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 1.5, seed=seed)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(node_count))
        nx_graph.add_edges_from(graph.edges())
        expected = nx.is_bipartite(nx_graph)
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            report = check_bipartite(disk, memory=3 * node_count + 60)
        assert report.bipartite == expected
