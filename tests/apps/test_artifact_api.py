"""The artifact-first apps API: same answers, no recomputation.

``toposort``/``cycles``/``reachability`` accept a sealed
:class:`~repro.serve.TreeArtifact` where they used to require
``(graph, memory)``; the legacy signatures still work but warn once per
function that they recompute from the raw graph.
"""

from __future__ import annotations

import warnings

import pytest

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.apps import (
    find_cycle,
    has_cycle,
    reachable_set,
    reaches,
    topological_order,
)
from repro.errors import QueryError
from repro.graph import random_graph
from repro.graph.digraph import Digraph
from repro.serve import seal_result


def seal(device, graph, sources=()):
    disk = DiskGraph.from_digraph(device, graph)
    memory = 3 * graph.node_count + 64
    result = semi_external_dfs(disk, memory)
    return disk, memory, seal_result(
        disk, result, memory=memory, sources=sources
    )


class TestArtifactOverloads:
    def test_toposort_matches_graph_signature(self, device):
        graph = Digraph.from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
        disk, memory, artifact = seal(device, graph)
        assert topological_order(artifact) == topological_order(disk, memory)

    def test_cycles_match_graph_signature(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (1, 2), (2, 1), (3, 3)])
        disk, memory, artifact = seal(device, graph)
        assert has_cycle(artifact) == has_cycle(disk, memory)
        assert find_cycle(artifact) == find_cycle(disk, memory)

    def test_reachability_matches_graph_signature(self, device):
        graph = random_graph(25, 2, seed=3)
        disk, memory, artifact = seal(device, graph, sources=(0,))
        assert reachable_set(artifact, 0) == reachable_set(disk, 0)
        for v in range(25):
            assert reaches(artifact, 0, v) == reaches(disk, 0, v)

    def test_artifact_answers_do_no_io(self, device):
        graph = random_graph(30, 2, seed=4)
        disk, memory, artifact = seal(device, graph, sources=(0,))
        baseline = device.stats.snapshot()
        topological_order_or_cycle(artifact)
        reachable_set(artifact, 0)
        delta = device.stats.snapshot() - baseline
        assert (delta.reads, delta.writes) == (0, 0)

    def test_undecidable_reachability_is_typed(self, device):
        """An unpinned pair on a cyclic artifact can be undecidable —
        never silently wrong."""
        graph = Digraph.from_edges(
            6, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        )
        disk, memory, artifact = seal(device, graph)  # no pinned sources
        # 3 sits in the SCC {2, 3}; nothing pins it, 0 is not in its
        # subtree, and a cyclic graph has no topo certificate
        with pytest.raises(QueryError) as exc:
            reaches(artifact, 3, 0)
        assert exc.value.code == "undecidable"


def topological_order_or_cycle(artifact):
    try:
        return topological_order(artifact)
    except Exception:
        return find_cycle(artifact)


class TestLegacySignature:
    def test_graph_signature_warns_once_per_function(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        import repro.apps._shims as shims

        shims._WARNED_GRAPH_API.discard("topological_order")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            topological_order(disk, 3 * 3 + 64)
            topological_order(disk, 3 * 3 + 64)
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "topological_order" in str(w.message)
        ]
        assert len(deprecations) == 1

    def test_graph_signature_without_memory_is_type_error(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(TypeError):
            topological_order(disk)
        with pytest.raises(TypeError):
            has_cycle(disk)
        with pytest.raises(TypeError):
            find_cycle(disk)
