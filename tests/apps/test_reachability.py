"""Tests for semi-external single-source reachability."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps import reachability_counts, reachable_set, reaches
from repro.graph import Digraph, directed_cycle, random_graph


class TestReachableSet:
    def test_simple_chain(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        assert reachable_set(disk, 0) == {0, 1, 2}
        assert reachable_set(disk, 2) == {2}
        assert reachable_set(disk, 3) == {3}

    def test_cycle_reaches_everything(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(10))
        assert reachable_set(disk, 4) == set(range(10))

    def test_direction_respected(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (2, 1)])
        disk = DiskGraph.from_digraph(device, graph)
        assert reachable_set(disk, 0) == {0, 1}
        assert not reaches(disk, 1, 0)
        assert reaches(disk, 2, 1)

    def test_adversarial_edge_order_still_converges(self, device):
        """Edges stored target-first force one extra pass per hop."""
        hops = 30
        edges = [(u, u + 1) for u in reversed(range(hops))]
        disk = DiskGraph.from_edges(device, hops + 1, edges)
        assert reachable_set(disk, 0) == set(range(hops + 1))

    def test_max_passes_cap(self, device):
        hops = 30
        edges = [(u, u + 1) for u in reversed(range(hops))]
        disk = DiskGraph.from_edges(device, hops + 1, edges)
        partial = reachable_set(disk, 0, max_passes=2)
        assert {0, 1, 2} <= partial
        assert len(partial) < hops + 1

    def test_invalid_source_rejected(self, device):
        disk = DiskGraph.from_digraph(device, Digraph(3))
        with pytest.raises(ValueError):
            reachable_set(disk, 3)
        with pytest.raises(ValueError):
            reaches(disk, 0, -1)

    def test_counts_helper(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        assert reachability_counts(disk, [0, 1, 3]) == [3, 2, 1]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=25), st.integers(0, 99))
    def test_property_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 2, seed=seed)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(node_count))
        nx_graph.add_edges_from(graph.edges())
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            mine = reachable_set(disk, 0)
        theirs = {0} | nx.descendants(nx_graph, 0)
        assert mine == theirs
