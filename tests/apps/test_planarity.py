"""Tests for semi-external planarity testing (LR algorithm + Euler filter)."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.apps.planarity import check_planarity, lr_planarity
from repro.graph import Digraph, directed_cycle, grid_graph, random_graph


def nx_planar(node_count, edges):
    graph = nx.Graph()
    graph.add_nodes_from(range(node_count))
    graph.add_edges_from((u, v) for u, v in edges if u != v)
    return nx.check_planarity(graph)[0]


K5 = [(i, j) for i in range(5) for j in range(i + 1, 5)]
K33 = [(i, j + 3) for i in range(3) for j in range(3)]


class TestLRKnownGraphs:
    def test_k5_not_planar(self):
        assert not lr_planarity(5, K5)

    def test_k33_not_planar(self):
        assert not lr_planarity(6, K33)

    def test_k4_planar(self):
        k4 = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        assert lr_planarity(4, k4)

    def test_grid_planar(self):
        graph = grid_graph(8, 8)
        assert lr_planarity(64, list(graph.edges()))

    def test_cycle_planar(self):
        graph = directed_cycle(30)
        assert lr_planarity(30, list(graph.edges()))

    def test_wheel_planar_and_k5_minor_not(self):
        wheel = nx.wheel_graph(10)
        assert lr_planarity(10, list(wheel.edges()))

    def test_petersen_not_planar(self):
        petersen = nx.petersen_graph()
        assert not lr_planarity(10, list(petersen.edges()))

    def test_empty_and_tiny(self):
        assert lr_planarity(0, [])
        assert lr_planarity(1, [])
        assert lr_planarity(2, [(0, 1)])

    def test_self_loops_and_duplicates_ignored(self):
        assert lr_planarity(3, [(0, 0), (0, 1), (0, 1), (1, 0), (1, 2)])

    def test_k5_plus_isolated_nodes(self):
        assert not lr_planarity(20, K5)

    def test_disjoint_k5s(self):
        shifted = [(u + 5, v + 5) for u, v in K5]
        assert not lr_planarity(10, K5 + shifted)
        # planar component + K5 is still non-planar
        assert not lr_planarity(10, K5 + [(5, 6), (6, 7)])


class TestLRAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_boundary_density_random(self, seed):
        import random as _random

        rng = _random.Random(seed)
        node_count = rng.randint(5, 50)
        target = rng.randint(node_count, max(node_count, 3 * node_count - 6))
        edges = set()
        while len(edges) < target:
            u, v = rng.randrange(node_count), rng.randrange(node_count)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        edges = list(edges)
        assert lr_planarity(node_count, edges) == nx_planar(node_count, edges)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_property_matches_networkx(self, data):
        node_count = data.draw(st.integers(min_value=1, max_value=14))
        node = st.integers(min_value=0, max_value=node_count - 1)
        edges = data.draw(
            st.lists(st.tuples(node, node), max_size=3 * node_count)
        )
        assert lr_planarity(node_count, edges) == nx_planar(node_count, edges)


class TestSemiExternalCheck:
    def test_euler_filter_rejects_without_loading(self, device):
        # a dense multigraph: m_simple > 3n - 6
        node_count = 10
        edges = [(u, v) for u in range(10) for v in range(10) if u != v]
        disk = DiskGraph.from_edges(device, node_count, edges)
        report = check_planarity(disk)
        assert not report.planar
        assert not report.loaded
        assert "Euler" in report.reason
        assert report.simple_edge_count == 45

    def test_sparse_planar_graph(self, device):
        graph = grid_graph(6, 6)
        disk = DiskGraph.from_digraph(device, graph)
        report = check_planarity(disk)
        assert report.planar
        assert report.loaded

    def test_sparse_nonplanar_graph(self, device):
        disk = DiskGraph.from_edges(device, 6, K33)
        report = check_planarity(disk)
        assert not report.planar
        assert report.loaded  # 9 <= 3*6-6: the scan alone cannot decide

    def test_temporary_files_cleaned(self, device):
        import os

        disk = DiskGraph.from_digraph(device, grid_graph(4, 4))
        before = set(os.listdir(device.directory))
        check_planarity(disk)
        assert set(os.listdir(device.directory)) == before

    def test_duplicates_collapse_before_euler_bound(self, device):
        # 100 copies of one edge: simple count is 1 -> planar
        disk = DiskGraph.from_edges(device, 2, [(0, 1)] * 100)
        report = check_planarity(disk)
        assert report.planar
        assert report.simple_edge_count == 1
