"""Tests for Eulerian path/circuit computation."""

import random

import pytest

from repro import DiskGraph
from repro.apps import check_eulerian, eulerian_path
from repro.graph import Digraph, directed_cycle


def eulerian_graph_from_circuit(node_count: int, length: int, seed: int) -> Digraph:
    """Build a graph that IS an Eulerian circuit (a closed random walk)."""
    rng = random.Random(seed)
    walk = [0]
    for _ in range(length - 1):
        walk.append(rng.randrange(node_count))
    walk.append(0)
    graph = Digraph(node_count)
    for u, v in zip(walk, walk[1:]):
        graph.add_edge(u, v)
    return graph


def assert_valid_euler_path(path, graph: Digraph, closed: bool):
    consumed = {}
    for edge in graph.edges():
        consumed[edge] = consumed.get(edge, 0) + 1
    assert len(path) == graph.edge_count + 1
    for u, v in zip(path, path[1:]):
        assert consumed.get((u, v), 0) > 0, f"edge ({u},{v}) not in graph"
        consumed[(u, v)] -= 1
    assert all(count == 0 for count in consumed.values())
    if closed:
        assert path[0] == path[-1]


class TestCheckEulerian:
    def test_cycle_has_circuit(self, device):
        disk = DiskGraph.from_digraph(device, directed_cycle(6))
        report = check_eulerian(disk)
        assert report.has_circuit and report.has_path

    def test_path_graph_has_path_not_circuit(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        report = check_eulerian(DiskGraph.from_digraph(device, graph))
        assert not report.has_circuit
        assert report.has_path
        assert report.start == 0

    def test_imbalanced_graph_rejected(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        report = check_eulerian(DiskGraph.from_digraph(device, graph))
        assert not report.has_path
        assert "imbalance" in report.reason

    def test_disconnected_edges_rejected(self, device):
        graph = Digraph.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        report = check_eulerian(DiskGraph.from_digraph(device, graph))
        assert not report.has_circuit
        assert "components" in report.reason

    def test_isolated_nodes_are_fine(self, device):
        graph = Digraph.from_edges(5, [(0, 1), (1, 0)])
        report = check_eulerian(DiskGraph.from_digraph(device, graph))
        assert report.has_circuit

    def test_edgeless_graph(self, device):
        report = check_eulerian(DiskGraph.from_digraph(device, Digraph(3)))
        assert report.has_circuit and report.has_path


class TestEulerianPath:
    def test_circuit_construction(self, device):
        graph = eulerian_graph_from_circuit(12, 60, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        path = eulerian_path(disk)
        assert path is not None
        assert_valid_euler_path(path, graph, closed=True)

    def test_open_path_construction(self, device):
        graph = Digraph.from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)])
        disk = DiskGraph.from_digraph(device, graph)
        path = eulerian_path(disk)
        assert path is not None
        assert path[0] == 0 and path[-1] == 4
        assert_valid_euler_path(path, graph, closed=False)

    def test_infeasible_returns_none(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (0, 2)])
        assert eulerian_path(DiskGraph.from_digraph(device, graph)) is None

    def test_edgeless_returns_empty(self, device):
        assert eulerian_path(DiskGraph.from_digraph(device, Digraph(2))) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits(self, device, seed):
        graph = eulerian_graph_from_circuit(8, 40, seed=seed)
        path = eulerian_path(DiskGraph.from_digraph(device, graph))
        assert path is not None
        assert_valid_euler_path(path, graph, closed=True)
