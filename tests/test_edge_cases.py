"""Edge-case tests: degenerate graphs through every public entry point."""

import pytest

from repro import BlockDevice, Digraph, DiskGraph, semi_external_dfs
from repro.apps import (
    check_bipartite,
    check_eulerian,
    find_cycle,
    strongly_connected_components,
    topological_order,
    weakly_connected_components,
)
from repro.core import verify_dfs_tree

ALL_ALGORITHMS = ["edge-by-edge", "edge-by-batch", "divide-star", "divide-td"]


@pytest.fixture
def empty_graph(device):
    return DiskGraph.from_digraph(device, Digraph(0))


@pytest.fixture
def single_node(device):
    return DiskGraph.from_digraph(device, Digraph(1))


@pytest.fixture
def self_loops_only(device):
    return DiskGraph.from_digraph(device, Digraph.from_edges(3, [(0, 0), (1, 1)]))


class TestEmptyGraph:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_dfs(self, empty_graph, algorithm):
        result = semi_external_dfs(empty_graph, memory=1, algorithm=algorithm)
        assert result.order == []
        assert verify_dfs_tree(empty_graph, result.tree).ok

    def test_apps(self, empty_graph):
        assert topological_order(empty_graph, memory=1) == []
        assert weakly_connected_components(empty_graph) == []
        assert strongly_connected_components(empty_graph, memory=1) == []
        assert check_bipartite(empty_graph, memory=1).bipartite
        assert find_cycle(empty_graph, memory=1) is None


class TestSingleNode:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_dfs(self, single_node, algorithm):
        result = semi_external_dfs(single_node, memory=4, algorithm=algorithm)
        assert result.order == [0]

    def test_apps(self, single_node):
        assert topological_order(single_node, memory=4) == [0]
        assert strongly_connected_components(single_node, memory=4) == [[0]]
        assert check_eulerian(single_node).has_circuit


class TestSelfLoopsOnly:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_dfs_ignores_self_loops(self, self_loops_only, algorithm):
        result = semi_external_dfs(self_loops_only, memory=3 * 3 + 16,
                                   algorithm=algorithm)
        assert sorted(result.order) == [0, 1, 2]
        assert verify_dfs_tree(self_loops_only, result.tree).ok

    def test_self_loop_is_a_cycle(self, self_loops_only):
        assert find_cycle(self_loops_only, memory=3 * 3 + 16) == [0]


class TestParallelEdges:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_heavy_duplication(self, device, algorithm):
        edges = [(0, 1)] * 50 + [(1, 2)] * 50 + [(2, 0)] * 50
        graph = Digraph.from_edges(3, edges)
        disk = DiskGraph.from_digraph(device, graph)
        result = semi_external_dfs(disk, memory=3 * 3 + 20, algorithm=algorithm)
        assert sorted(result.order) == [0, 1, 2]
        assert verify_dfs_tree(disk, result.tree).ok


class TestStarGraphs:
    """A hub with n-1 spokes: the root sibling group is maximal."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_out_star(self, device, algorithm):
        edges = [(0, v) for v in range(1, 80)]
        disk = DiskGraph.from_digraph(device, Digraph.from_edges(80, edges))
        result = semi_external_dfs(disk, memory=3 * 80 + 40, algorithm=algorithm)
        assert result.order[0] == 0
        assert verify_dfs_tree(disk, result.tree).ok

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_in_star(self, device, algorithm):
        edges = [(v, 0) for v in range(1, 80)]
        disk = DiskGraph.from_digraph(device, Digraph.from_edges(80, edges))
        result = semi_external_dfs(disk, memory=3 * 80 + 40, algorithm=algorithm)
        assert verify_dfs_tree(disk, result.tree).ok


class TestMemoryBoundary:
    def test_exactly_3n_works_for_edge_by_edge(self, device):
        graph = Digraph.from_edges(10, [(0, 1), (5, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        result = semi_external_dfs(disk, memory=30, algorithm="edge-by-edge")
        assert sorted(result.order) == list(range(10))

    def test_batch_needs_one_extra_element(self, device):
        from repro.errors import MemoryBudgetExceeded

        graph = Digraph.from_edges(10, [(0, 1)])
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(MemoryBudgetExceeded):
            semi_external_dfs(disk, memory=30, algorithm="edge-by-batch")
        result = semi_external_dfs(disk, memory=31, algorithm="edge-by-batch")
        assert sorted(result.order) == list(range(10))
