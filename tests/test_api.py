"""Tests for the top-level facade."""

import pytest

import repro
from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.graph import random_graph

from .conftest import assert_valid_dfs_result


class TestFacade:
    def test_algorithm_registry_names(self):
        assert set(repro.ALGORITHMS) == {
            "edge-by-edge",
            "edge-by-batch",
            "semi-dfs",
            "divide-star",
            "divide-td",
            "bfs",
            "semi-bfs",
        }

    def test_semi_dfs_aliases_edge_by_batch(self):
        assert repro.ALGORITHMS["semi-dfs"] is repro.ALGORITHMS["edge-by-batch"]

    def test_semi_bfs_aliases_bfs(self):
        assert repro.ALGORITHMS["semi-bfs"] is repro.ALGORITHMS["bfs"]

    @pytest.mark.parametrize("name", sorted(repro.ALGORITHMS))
    def test_every_registered_algorithm_runs(self, device, name):
        graph = random_graph(60, 3, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        result = semi_external_dfs(disk, memory=3 * 60 + 100, algorithm=name)
        if name in ("bfs", "semi-bfs"):
            # BFS trees legitimately contain forward-cross edges; the
            # DFS validity oracle does not apply.  Check the neutral
            # contract: a permutation order and a level for node 0.
            assert sorted(result.order) == list(range(60))
            assert result.levels[0] == 0
        else:
            assert_valid_dfs_result(result, disk, graph)

    def test_unknown_algorithm_rejected(self, device):
        graph = random_graph(10, 2, seed=2)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ValueError, match="unknown algorithm"):
            semi_external_dfs(disk, memory=100, algorithm="ifs")

    def test_options_forwarded(self, device):
        graph = random_graph(40, 3, seed=3)
        disk = DiskGraph.from_digraph(device, graph)
        result = semi_external_dfs(
            disk, memory=3 * 40 + 80, algorithm="edge-by-batch",
            use_external_stack=False,
        )
        assert result.io.writes == 0

    def test_result_metadata(self, device):
        graph = random_graph(50, 3, seed=4)
        disk = DiskGraph.from_digraph(device, graph)
        result = semi_external_dfs(disk, memory=3 * 50 + 90, algorithm="divide-td")
        assert result.algorithm == "divide-td"
        assert result.elapsed_seconds > 0
        assert result.io.total > 0
        position = result.position_of()
        assert position[result.order[0]] == 0
        assert result.virtual_root == result.tree.root

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_shape(self, device):
        """The README/docstring quickstart must actually work."""
        graph = DiskGraph.from_digraph(device, random_graph(1000, 5, seed=1))
        result = semi_external_dfs(graph, memory=4000, algorithm="divide-td")
        assert len(result.order) == 1000
