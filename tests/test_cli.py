"""Tests for the command-line interface (driving main() directly)."""

import pytest

from repro.cli import main
from repro.graph import random_dag, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = str(tmp_path / "graph.txt")
    main([
        "generate", "--kind", "power-law", "--nodes", "400", "--degree", "4",
        "--seed", "3", "--output", path,
    ])
    return path


class TestGenerate:
    def test_generate_power_law(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        assert main(["generate", "--kind", "power-law", "--nodes", "100",
                     "--output", path]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        with open(path) as handle:
            lines = [l for l in handle if not l.startswith("#")]
        assert len(lines) > 50

    def test_generate_dataset_standin(self, tmp_path):
        path = str(tmp_path / "tw.txt")
        assert main(["generate", "--kind", "twitter-2010", "--scale", "0.01",
                     "--output", path]) == 0

    def test_generate_unknown_kind(self, tmp_path, capsys):
        assert main(["generate", "--kind", "nope",
                     "--output", str(tmp_path / "x.txt")]) == 2
        assert "unknown kind" in capsys.readouterr().err


class TestDFS:
    def test_dfs_with_verify(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--verify",
                     "--memory-ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "divide-td" in out

    def test_dfs_every_algorithm(self, graph_file):
        for algorithm in ["edge-by-batch", "divide-star", "divide-td"]:
            assert main(["dfs", "--input", graph_file, "--algorithm",
                         algorithm, "--memory-ratio", "0.3"]) == 0

    def test_dfs_order_output(self, graph_file, tmp_path):
        order_path = str(tmp_path / "order.txt")
        assert main(["dfs", "--input", graph_file, "--output", order_path,
                     "--memory-ratio", "0.3"]) == 0
        with open(order_path) as handle:
            order = [int(line) for line in handle]
        assert sorted(order) == list(range(400))

    def test_dfs_explicit_memory(self, graph_file):
        assert main(["dfs", "--input", graph_file, "--memory", "3000"]) == 0

    def test_dfs_insufficient_memory_reports_error(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--memory", "100"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_dfs_workers_flag(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--verify",
                     "--algorithm", "divide-star", "--workers", "2",
                     "--memory-ratio", "0.3"]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_dfs_workers_rejected_by_baseline(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--algorithm",
                     "edge-by-batch", "--workers", "2",
                     "--memory-ratio", "0.3"]) == 1
        assert "workers" in capsys.readouterr().err

    def test_dfs_start_node(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--start", "17",
                     "--memory-ratio", "0.3"]) == 0
        assert "DFS order: 17" in capsys.readouterr().out

    def test_dfs_trace_out_writes_valid_jsonl(self, graph_file, tmp_path,
                                              capsys):
        import json

        from repro.obs import SpanEvent

        trace_path = tmp_path / "events.jsonl"
        assert main(["dfs", "--input", graph_file, "--memory-ratio", "0.3",
                     "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        with open(trace_path) as handle:
            events = [SpanEvent.from_dict(json.loads(line)) for line in handle]
        assert events, "trace file is empty"
        assert {"restructure"} <= {event.name for event in events}
        assert f"trace: {len(events)} span events" in out

    def test_dfs_profile_prints_phase_table(self, graph_file, capsys):
        assert main(["dfs", "--input", graph_file, "--memory-ratio", "0.3",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (per span path" in out
        assert "restructure" in out


class TestBFS:
    def test_bfs_summary_line(self, graph_file, capsys):
        assert main(["bfs", "--input", graph_file,
                     "--memory-ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "bfs:" in out
        assert "passes=" in out
        assert "depth=" in out
        assert "reached=" in out
        assert "levels:" in out

    def test_bfs_levels_output_file(self, graph_file, tmp_path, capsys):
        levels_path = str(tmp_path / "levels.txt")
        assert main(["bfs", "--input", graph_file, "--output", levels_path,
                     "--memory-ratio", "0.3"]) == 0
        assert "BFS levels written" in capsys.readouterr().out
        with open(levels_path) as handle:
            rows = [line.split() for line in handle]
        assert len(rows) == 400
        assert rows[0] == ["0", "0", "-1"]  # start: level 0, parent γ → -1
        for node, (shown_node, level, parent) in enumerate(rows):
            assert int(shown_node) == node
            assert int(level) >= -1 and int(parent) >= -1

    def test_bfs_start_node(self, graph_file, capsys):
        assert main(["bfs", "--input", graph_file, "--start", "17",
                     "--memory-ratio", "0.3"]) == 0
        assert "depth=" in capsys.readouterr().out

    def test_bfs_insufficient_memory_reports_error(self, graph_file, capsys):
        assert main(["bfs", "--input", graph_file, "--memory", "100"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bfs_profile_prints_relax_phase(self, graph_file, capsys):
        assert main(["bfs", "--input", graph_file, "--memory-ratio", "0.3",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (per span path" in out
        assert "relax" in out


class TestApps:
    def test_toposort(self, tmp_path, capsys):
        path = str(tmp_path / "dag.txt")
        write_edge_list(path, random_dag(200, 600, seed=1).edges())
        out_path = str(tmp_path / "order.txt")
        assert main(["toposort", "--input", path, "--output", out_path]) == 0
        with open(out_path) as handle:
            order = [int(line) for line in handle]
        assert sorted(order) == list(range(200))

    def test_toposort_cycle_fails(self, graph_file, capsys):
        assert main(["toposort", "--input", graph_file]) == 1
        assert "cycle" in capsys.readouterr().err

    def test_scc(self, graph_file, capsys):
        assert main(["scc", "--input", graph_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "strongly connected components" in out


class TestBench:
    def test_unknown_experiment(self, capsys):
        assert main(["bench", "--experiment", "exp99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_exp_table_rendered(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.004")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "5")
        assert main(["bench", "--experiment", "exp3:power-law"]) == 0
        out = capsys.readouterr().out
        assert "Processing Time" in out
        assert "# of I/Os" in out
        assert "SEMI-DFS" in out and "Divide-TD" in out


class TestCompare:
    def test_compare_table(self, graph_file, capsys):
        assert main(["compare", "--input", graph_file, "--memory-ratio", "0.3",
                     "--timeout", "60"]) == 0
        out = capsys.readouterr().out
        assert "edge-by-batch" in out
        assert "divide-star" in out
        assert "divide-td" in out
        assert "bfs" in out
        assert "passes" in out

    def test_compare_includes_edge_by_edge_on_request(self, graph_file, capsys):
        assert main(["compare", "--input", graph_file, "--memory-ratio", "0.3",
                     "--timeout", "60", "--include-edge-by-edge"]) == 0
        assert "edge-by-edge" in capsys.readouterr().out

    def test_compare_reports_dnf(self, graph_file, capsys):
        assert main(["compare", "--input", graph_file, "--memory-ratio", "0.05",
                     "--timeout", "0.001"]) == 0
        assert "DNF" in capsys.readouterr().out


class TestPlanarity:
    def test_planar_graph(self, tmp_path, capsys):
        from repro.graph import grid_graph

        path = str(tmp_path / "grid.txt")
        write_edge_list(path, grid_graph(5, 5).edges())
        assert main(["planarity", "--input", path]) == 0
        assert "planar" in capsys.readouterr().out

    def test_nonplanar_graph(self, tmp_path, capsys):
        path = str(tmp_path / "k5.txt")
        write_edge_list(path, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert main(["planarity", "--input", path]) == 3
        assert "NOT planar" in capsys.readouterr().out

    def test_dense_graph_decided_by_euler(self, tmp_path, capsys):
        edges = [(u, v) for u in range(12) for v in range(12) if u != v]
        path = str(tmp_path / "dense.txt")
        write_edge_list(path, edges)
        assert main(["planarity", "--input", path]) == 3
        assert "Euler bound" in capsys.readouterr().out
