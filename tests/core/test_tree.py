"""Unit + model-based tests for the ordered spanning tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpanningTree, VirtualNodeAllocator
from repro.errors import InvalidGraphError


def build_sample() -> SpanningTree:
    """      0
           / | \\
          1  2  3
         / \\     \\
        4   5     6
    """
    tree = SpanningTree()
    for node in range(7):
        tree.add_node(node)
    tree.root = 0
    for child, parent in [(1, 0), (2, 0), (3, 0), (4, 1), (5, 1), (6, 3)]:
        tree.attach(child, parent)
    return tree


class TestConstruction:
    def test_initial_star_layout(self):
        tree = SpanningTree.initial_star([0, 1, 2], virtual_root=3)
        assert tree.root == 3
        assert tree.is_virtual(3)
        assert tree.child_list(3) == [0, 1, 2]
        assert list(tree.preorder()) == [3, 0, 1, 2]

    def test_initial_star_custom_order(self):
        tree = SpanningTree.initial_star([0, 1, 2], 3, order=[2, 0, 1])
        assert tree.child_list(3) == [2, 0, 1]

    def test_initial_star_rejects_bad_order(self):
        with pytest.raises(InvalidGraphError):
            SpanningTree.initial_star([0, 1], 2, order=[0, 0])

    def test_duplicate_node_rejected(self):
        tree = SpanningTree()
        tree.add_node(1)
        with pytest.raises(InvalidGraphError):
            tree.add_node(1)

    def test_attach_unknown_nodes_rejected(self):
        tree = SpanningTree()
        tree.add_node(0)
        with pytest.raises(InvalidGraphError):
            tree.attach(1, 0)
        with pytest.raises(InvalidGraphError):
            tree.attach(0, 9)

    def test_double_attach_rejected(self):
        tree = build_sample()
        with pytest.raises(InvalidGraphError):
            tree.attach(4, 2)

    def test_allocator_hands_out_fresh_ids(self):
        allocator = VirtualNodeAllocator(100)
        assert allocator.allocate() == 100
        assert allocator.allocate() == 101
        assert allocator.next_id == 102


class TestTraversal:
    def test_preorder(self):
        assert list(build_sample().preorder()) == [0, 1, 4, 5, 2, 3, 6]

    def test_postorder(self):
        assert list(build_sample().postorder()) == [4, 5, 1, 2, 6, 3, 0]

    def test_subtree(self):
        assert list(build_sample().subtree(1)) == [1, 4, 5]
        assert list(build_sample().subtree(6)) == [6]

    def test_subtree_does_not_leak_to_siblings(self):
        tree = build_sample()
        assert 2 not in set(tree.subtree(1))
        assert 3 not in set(tree.subtree(1))

    def test_tree_edges(self):
        assert sorted(build_sample().tree_edges()) == [
            (0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (3, 6),
        ]

    def test_depth_of(self):
        tree = build_sample()
        assert tree.depth_of(0) == 0
        assert tree.depth_of(4) == 2

    def test_empty_tree_traversals(self):
        tree = SpanningTree()
        assert list(tree.preorder()) == []
        assert list(tree.postorder()) == []


class TestMutation:
    def test_attach_first(self):
        tree = build_sample()
        tree.add_node(7)
        tree.attach(7, 0, first=True)
        assert tree.child_list(0) == [7, 1, 2, 3]
        assert tree.sibling_key[7] < tree.sibling_key[1]

    def test_detach_middle_sibling(self):
        tree = build_sample()
        tree.detach(2)
        assert tree.child_list(0) == [1, 3]
        assert tree.parent[2] is None

    def test_detach_keeps_subtree(self):
        tree = build_sample()
        tree.detach(1)
        assert list(tree.subtree(1)) == [1, 4, 5]

    def test_reattach_moves_subtree(self):
        tree = build_sample()
        tree.reattach(1, 3)
        assert tree.child_list(3) == [6, 1]
        assert list(tree.preorder()) == [0, 2, 3, 6, 1, 4, 5]

    def test_detach_root_like_node_rejected(self):
        tree = build_sample()
        with pytest.raises(InvalidGraphError):
            tree.detach(0)  # the root is not attached

    def test_sibling_keys_monotone_after_mixed_inserts(self):
        tree = SpanningTree()
        for node in range(6):
            tree.add_node(node)
        tree.root = 0
        tree.attach(1, 0)
        tree.attach(2, 0, first=True)
        tree.attach(3, 0)
        tree.attach(4, 0, first=True)
        order = tree.child_list(0)
        assert order == [4, 2, 1, 3]
        keys = [tree.sibling_key[c] for c in order]
        assert keys == sorted(keys)


class TestSurgery:
    def test_reorder_children(self):
        tree = build_sample()
        tree.reorder_children(0, [3, 1, 2])
        assert tree.child_list(0) == [3, 1, 2]
        assert list(tree.preorder()) == [0, 3, 6, 1, 4, 5, 2]

    def test_reorder_rejects_non_permutation(self):
        tree = build_sample()
        with pytest.raises(InvalidGraphError):
            tree.reorder_children(0, [1, 2])
        with pytest.raises(InvalidGraphError):
            tree.reorder_children(0, [1, 2, 2])

    def test_splice_out_promotes_children_in_place(self):
        tree = build_sample()
        tree.virtual.add(1)
        tree.splice_out(1)
        assert tree.child_list(0) == [4, 5, 2, 3]
        assert 1 not in tree
        assert list(tree.preorder()) == [0, 4, 5, 2, 3, 6]

    def test_splice_out_leaf(self):
        tree = build_sample()
        tree.splice_out(2)
        assert tree.child_list(0) == [1, 3]

    def test_splice_out_root_rejected(self):
        tree = build_sample()
        with pytest.raises(InvalidGraphError):
            tree.splice_out(0)

    def test_splice_preserves_real_preorder(self):
        tree = build_sample()
        tree.virtual.add(3)
        before = [n for n in tree.preorder() if n != 3]
        tree.splice_out(3)
        assert list(tree.preorder()) == before


class TestCopy:
    def test_copy_is_deep(self):
        tree = build_sample()
        clone = tree.copy()
        clone.reattach(1, 3)
        assert tree.child_list(0) == [1, 2, 3]
        assert clone.child_list(0) == [2, 3]

    def test_copy_preserves_virtual_flags(self):
        tree = SpanningTree.initial_star([0, 1], 2)
        clone = tree.copy()
        assert clone.is_virtual(2)
        assert clone.root == 2


# ----------------------------------------------------------------------
# model-based testing: compare against a naive list-of-children model
# ----------------------------------------------------------------------
class NaiveTree:
    """Reference implementation with plain ordered child lists."""

    def __init__(self):
        self.children = {0: []}
        self.parent = {0: None}

    def add(self, node, parent, first):
        self.children[node] = []
        self.parent[node] = parent
        if first:
            self.children[parent].insert(0, node)
        else:
            self.children[parent].append(node)

    def reattach(self, node, parent, first):
        self.children[self.parent[node]].remove(node)
        self.parent[node] = parent
        if first:
            self.children[parent].insert(0, node)
        else:
            self.children[parent].append(node)

    def preorder(self):
        out, stack = [], [0]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children[node]))
        return out


@st.composite
def tree_scripts(draw):
    """A script of adds followed by reattaches on a growing tree."""
    size = draw(st.integers(min_value=2, max_value=25))
    adds = []
    for node in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        first = draw(st.booleans())
        adds.append((node, parent, first))
    move_count = draw(st.integers(min_value=0, max_value=10))
    moves = [
        (
            draw(st.integers(min_value=1, max_value=size - 1)),
            draw(st.integers(min_value=0, max_value=size - 1)),
            draw(st.booleans()),
        )
        for _ in range(move_count)
    ]
    return adds, moves


@settings(max_examples=60)
@given(tree_scripts())
def test_spanning_tree_matches_naive_model(script):
    adds, moves = script
    tree = SpanningTree()
    tree.add_node(0)
    tree.root = 0
    model = NaiveTree()
    for node, parent, first in adds:
        tree.add_node(node)
        tree.attach(node, parent, first=first)
        model.add(node, parent, first)
    for node, parent, first in moves:
        # skip illegal moves (target inside the moving subtree, or self)
        if node == parent or parent in set(tree.subtree(node)):
            continue
        tree.reattach(node, parent, first=first)
        model.reattach(node, parent, first)
    assert list(tree.preorder()) == model.preorder()
    for node in model.parent:
        assert tree.parent[node] == model.parent[node]
        assert tree.child_list(node) == model.children[node]
        keys = [tree.sibling_key[c] for c in tree.child_list(node)]
        assert keys == sorted(keys), "sibling keys must stay monotone"


class TestFromStructure:
    def test_equivalent_to_incremental_build(self):
        import random as _random

        rng = _random.Random(17)
        incremental = SpanningTree()
        incremental.add_node(0)
        incremental.root = 0
        parent = {0: None}
        children = {}
        virtual = {0}
        incremental.virtual.add(0)
        for node in range(1, 40):
            p = rng.randrange(node)
            incremental.add_node(node, virtual=(node % 7 == 0))
            incremental.attach(node, p)
            parent[node] = p
            children.setdefault(p, []).append(node)
            if node % 7 == 0:
                virtual.add(node)
        bulk = SpanningTree.from_structure(0, parent, children, virtual)
        assert list(bulk.preorder()) == list(incremental.preorder())
        assert list(bulk.postorder()) == list(incremental.postorder())
        for node in range(40):
            assert bulk.parent[node] == incremental.parent[node]
            assert bulk.child_list(node) == incremental.child_list(node)
            assert bulk.is_virtual(node) == incremental.is_virtual(node)

    def test_bulk_tree_supports_mutation(self):
        bulk = SpanningTree.from_structure(
            0, {0: None, 1: 0, 2: 0, 3: 1}, {0: [1, 2], 1: [3]}, set()
        )
        bulk.reattach(3, 2)
        assert bulk.child_list(2) == [3]
        bulk.add_node(4)
        bulk.attach(4, 0, first=True)
        assert bulk.child_list(0) == [4, 1, 2]
        keys = [bulk.sibling_key[c] for c in bulk.child_list(0)]
        assert keys == sorted(keys)

    def test_empty_children_entries_tolerated(self):
        bulk = SpanningTree.from_structure(
            0, {0: None, 1: 0}, {0: [1], 1: []}, set()
        )
        assert list(bulk.preorder()) == [0, 1]
