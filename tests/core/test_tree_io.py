"""Tests for spanning-tree checkpointing."""

import random

import pytest

from repro.core import SpanningTree, load_tree, save_tree
from repro.errors import StorageError


def random_tree_with_virtuals(node_count: int, seed: int) -> SpanningTree:
    rng = random.Random(seed)
    tree = SpanningTree()
    tree.add_node(node_count, virtual=True)  # γ
    tree.root = node_count
    for node in range(node_count):
        tree.add_node(node)
        parent = node_count if node == 0 else rng.randrange(node)
        tree.attach(node, parent, first=rng.random() < 0.3)
    return tree


class TestRoundtrip:
    def test_structure_preserved(self, device):
        tree = random_tree_with_virtuals(60, seed=1)
        path = save_tree(device, tree)
        loaded = load_tree(device, path)
        assert loaded.root == tree.root
        assert list(loaded.preorder()) == list(tree.preorder())
        for node in tree.preorder():
            assert loaded.parent[node] == tree.parent[node]
            assert loaded.child_list(node) == tree.child_list(node)

    def test_virtual_flags_preserved(self, device):
        tree = random_tree_with_virtuals(10, seed=2)
        tree.add_node(99, virtual=True)
        tree.attach(99, 0)
        loaded = load_tree(device, save_tree(device, tree))
        assert loaded.is_virtual(10)
        assert loaded.is_virtual(99)
        assert not loaded.is_virtual(5)

    def test_detached_nodes_not_saved(self, device):
        tree = random_tree_with_virtuals(5, seed=3)
        tree.add_node(77)  # never attached
        loaded = load_tree(device, save_tree(device, tree))
        assert 77 not in loaded

    def test_single_node_tree(self, device):
        tree = SpanningTree()
        tree.add_node(0)
        tree.root = 0
        loaded = load_tree(device, save_tree(device, tree))
        assert list(loaded.preorder()) == [0]

    def test_sibling_order_preserved_after_reorder(self, device):
        tree = SpanningTree()
        for node in range(4):
            tree.add_node(node)
        tree.root = 0
        for child in (1, 2, 3):
            tree.attach(child, 0)
        tree.reorder_children(0, [3, 1, 2])
        loaded = load_tree(device, save_tree(device, tree))
        assert loaded.child_list(0) == [3, 1, 2]


class TestIOAccounting:
    def test_save_and_load_charge_block_io(self, device_factory):
        device = device_factory(block_elements=16)
        tree = random_tree_with_virtuals(50, seed=4)
        before = device.stats.snapshot()
        path = save_tree(device, tree)
        wrote = (device.stats.snapshot() - before).writes
        # 3 header + 3*51 ints = 156 values -> ceil(156/16) = 10 blocks
        assert wrote == 10
        before = device.stats.snapshot()
        load_tree(device, path)
        assert (device.stats.snapshot() - before).reads == 10


class TestErrors:
    def test_rootless_tree_rejected(self, device):
        with pytest.raises(StorageError):
            save_tree(device, SpanningTree())

    def test_bad_magic_rejected(self, device):
        # A well-framed block (the checksum layer is satisfied) whose
        # payload is not a checkpoint: the format check must still reject.
        from repro.storage.serialization import frame_block, pack_ints

        path = device.allocate_path(suffix=".tree")
        with open(path, "wb") as handle:
            handle.write(frame_block(pack_ints([0, 0, 0])))
        with pytest.raises(StorageError, match="not a tree checkpoint"):
            load_tree(device, path)

    def test_truncated_file_rejected(self, device):
        tree = random_tree_with_virtuals(20, seed=5)
        path = save_tree(device, tree)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2 // 4 * 4])
        with pytest.raises(StorageError, match="truncated"):
            load_tree(device, path)
