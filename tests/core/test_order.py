"""The dynamic (climbing) order queries must agree with the interval index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IntervalIndex,
    SpanningTree,
    classify_edge_dynamic,
    compare_preorder,
    find_lca,
    is_ancestor,
)
from repro.errors import InvalidGraphError


def random_ordered_tree(node_count: int, seed: int) -> SpanningTree:
    rng = random.Random(seed)
    tree = SpanningTree()
    tree.add_node(0)
    tree.root = 0
    for node in range(1, node_count):
        tree.add_node(node)
        tree.attach(node, rng.randrange(node), first=rng.random() < 0.3)
    return tree


class TestAgainstIntervalOracle:
    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=999))
    def test_classification_agrees(self, node_count, seed):
        tree = random_ordered_tree(node_count, seed)
        index = IntervalIndex(tree)
        rng = random.Random(seed + 1)
        for _ in range(min(60, node_count * 3)):
            u = rng.randrange(node_count)
            v = rng.randrange(node_count)
            if u == v:
                continue
            dynamic = classify_edge_dynamic(tree, u, v)
            static = index.classify(u, v)
            assert dynamic is static, (u, v, dynamic, static)

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=999))
    def test_compare_preorder_agrees(self, node_count, seed):
        tree = random_ordered_tree(node_count, seed)
        index = IntervalIndex(tree)
        rng = random.Random(seed + 2)
        for _ in range(min(60, node_count * 3)):
            u = rng.randrange(node_count)
            v = rng.randrange(node_count)
            expected = (index.preorder_position(u) > index.preorder_position(v)) - (
                index.preorder_position(u) < index.preorder_position(v)
            )
            assert compare_preorder(tree, u, v) == expected

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=999))
    def test_is_ancestor_agrees(self, node_count, seed):
        tree = random_ordered_tree(node_count, seed)
        index = IntervalIndex(tree)
        rng = random.Random(seed + 3)
        for _ in range(min(60, node_count * 3)):
            u = rng.randrange(node_count)
            v = rng.randrange(node_count)
            assert is_ancestor(tree, u, v) == index.is_ancestor(u, v)


class TestLCA:
    def test_lca_identifies_path_children(self):
        tree = SpanningTree()
        for node in range(7):
            tree.add_node(node)
        tree.root = 0
        for child, parent in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 3)]:
            tree.attach(child, parent)
        lca, child_u, child_v = find_lca(tree, 6, 4)
        assert lca == 1
        assert child_u == 3  # toward 6
        assert child_v == 4  # toward 4 (v itself)

    def test_lca_when_one_is_ancestor(self):
        tree = random_ordered_tree(10, seed=5)
        lca, child_u, child_v = find_lca(tree, 0, 7)
        assert lca == 0
        assert child_u is None  # u == lca

    def test_lca_of_node_with_itself(self):
        tree = random_ordered_tree(10, seed=6)
        lca, child_u, child_v = find_lca(tree, 4, 4)
        assert lca == 4
        assert child_u is None and child_v is None

    def test_detached_node_rejected(self):
        tree = random_ordered_tree(5, seed=7)
        tree.add_node(99)
        with pytest.raises(InvalidGraphError):
            find_lca(tree, 99, 0)

    def test_after_mutation(self):
        """Dynamic queries must reflect live mutations immediately."""
        tree = random_ordered_tree(20, seed=8)
        index_before = IntervalIndex(tree)
        # find some cross pair and re-parent
        moved = None
        for u in range(20):
            for v in range(20):
                if u != v and not index_before.is_ancestor(u, v) and not index_before.is_ancestor(v, u):
                    moved = (u, v)
                    break
            if moved:
                break
        assert moved is not None
        u, v = moved
        tree.reattach(v, u)
        assert is_ancestor(tree, u, v)
        assert compare_preorder(tree, u, v) == -1
        index_after = IntervalIndex(tree)
        assert index_after.is_ancestor(u, v)
