"""Tests for the interval-index edge classifier (Section 2 taxonomy)."""

from repro.core import EdgeType, IntervalIndex, SpanningTree


def fig2_tree() -> SpanningTree:
    """The paper's Fig. 2(a) spanning tree (letters mapped to ints).

    A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9; visit order
    A, B, C, E, D, F, G, H, I, J:   A -> B -> C, A -> E -> D,
    E -> F -> {G, H}, H -> I, F -> J ... (shape chosen to match the
    example's classifications).
    """
    tree = SpanningTree()
    for node in range(10):
        tree.add_node(node)
    tree.root = 0
    # A's children: B then E;  B->C;  E->D, E->F;  F->G, F->H;  H->I, H->J
    for child, parent in [(1, 0), (4, 0), (2, 1), (3, 4), (5, 4), (6, 5), (7, 5), (8, 7), (9, 7)]:
        tree.attach(child, parent)
    return tree


class TestPaperExample:
    def test_preorder_matches_figure(self):
        tree = fig2_tree()
        assert list(tree.preorder()) == [0, 1, 2, 4, 3, 5, 6, 7, 8, 9]

    def test_cd_is_forward_cross(self):
        """(C, D) is the forward-cross edge in Example 2.2 / 3.1."""
        index = IntervalIndex(fig2_tree())
        assert index.classify(2, 3) is EdgeType.FORWARD_CROSS

    def test_ad_is_forward(self):
        """(A, D): A is an ancestor of D."""
        index = IntervalIndex(fig2_tree())
        assert index.classify(0, 3) is EdgeType.FORWARD

    def test_jh_is_backward(self):
        """(J, H): J is a descendant of H."""
        index = IntervalIndex(fig2_tree())
        assert index.classify(9, 7) is EdgeType.BACKWARD

    def test_gd_is_backward_cross(self):
        """(G, D): no ancestor relation, G visited after D."""
        index = IntervalIndex(fig2_tree())
        assert index.classify(6, 3) is EdgeType.BACKWARD_CROSS

    def test_if_is_backward(self):
        """(I, F): I is a descendant of F."""
        index = IntervalIndex(fig2_tree())
        assert index.classify(8, 5) is EdgeType.BACKWARD


class TestMechanics:
    def test_tree_edges_recognized(self):
        tree = fig2_tree()
        index = IntervalIndex(tree)
        for parent, child in tree.tree_edges():
            assert index.classify(parent, child) is EdgeType.TREE

    def test_ancestorship(self):
        index = IntervalIndex(fig2_tree())
        assert index.is_ancestor(0, 9)
        assert index.is_ancestor(5, 8)
        assert not index.is_ancestor(1, 4)
        assert index.is_ancestor(3, 3)  # self-ancestor

    def test_preorder_positions(self):
        tree = fig2_tree()
        index = IntervalIndex(tree)
        order = list(tree.preorder())
        for position, node in enumerate(order):
            assert index.preorder_position(node) == position

    def test_classification_is_exhaustive(self):
        """Every ordered pair of distinct nodes classifies to something."""
        tree = fig2_tree()
        index = IntervalIndex(tree)
        for u in range(10):
            for v in range(10):
                if u != v:
                    assert index.classify(u, v) in EdgeType

    def test_symmetric_relationship(self):
        """(u,v) forward-cross  <=>  (v,u) backward-cross."""
        index = IntervalIndex(fig2_tree())
        for u in range(10):
            for v in range(10):
                if u == v:
                    continue
                kind = index.classify(u, v)
                reverse = index.classify(v, u)
                if kind is EdgeType.FORWARD_CROSS:
                    assert reverse is EdgeType.BACKWARD_CROSS

    def test_covers(self):
        tree = fig2_tree()
        tree.add_node(99)  # detached
        index = IntervalIndex(tree)
        assert index.covers(0)
        assert not index.covers(99)
