"""Tests for the spanning-tree and DFS-Tree validators."""

from repro import DiskGraph
from repro.core import (
    EdgeType,
    SpanningTree,
    check_spanning_tree,
    real_preorder,
    verify_dfs_tree,
    verify_dfs_tree_inmemory,
)
from repro.graph import Digraph


def chain_tree(length: int) -> SpanningTree:
    tree = SpanningTree()
    tree.add_node(length, virtual=True)  # γ
    tree.root = length
    previous = length
    for node in range(length):
        tree.add_node(node)
        tree.attach(node, previous)
        previous = node
    return tree


class TestSpanningTreeCheck:
    def test_valid_tree(self):
        result = check_spanning_tree(chain_tree(5), range(5))
        assert result.ok

    def test_missing_nodes_detected(self):
        tree = chain_tree(3)
        result = check_spanning_tree(tree, range(5))
        assert not result.ok
        assert any("unreachable" in p for p in result.problems)

    def test_detached_required_node_detected(self):
        tree = chain_tree(5)
        tree.detach(4)
        result = check_spanning_tree(tree, range(5))
        assert not result.ok

    def test_rootless_tree_detected(self):
        tree = SpanningTree()
        tree.add_node(0)
        result = check_spanning_tree(tree, [0])
        assert not result.ok
        assert "no root" in result.problems[0]

    def test_foreign_real_node_detected(self):
        tree = chain_tree(5)
        result = check_spanning_tree(tree, range(4))  # node 4 not expected
        assert not result.ok
        assert any("outside the node set" in p for p in result.problems)

    def test_virtual_nodes_are_allowed_anywhere(self):
        tree = chain_tree(3)
        tree.add_node(50, virtual=True)
        tree.attach(50, 2)
        assert check_spanning_tree(tree, range(3)).ok


class TestDFSTreeVerifier:
    def test_clean_tree_passes(self):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        tree = chain_tree(3)
        report = verify_dfs_tree_inmemory(graph, tree)
        assert report.ok
        assert report.counts[EdgeType.TREE] == 2
        assert report.counts[EdgeType.BACKWARD] == 1

    def test_forward_cross_detected_and_counted(self):
        # tree: γ -> 0 -> {1, 2}; edge (1, 2) is forward-cross
        tree = SpanningTree()
        tree.add_node(3, virtual=True)
        tree.root = 3
        for node in range(3):
            tree.add_node(node)
        tree.attach(0, 3)
        tree.attach(1, 0)
        tree.attach(2, 0)
        graph = Digraph.from_edges(3, [(0, 1), (0, 2), (1, 2), (1, 2)])
        report = verify_dfs_tree_inmemory(graph, tree)
        assert not report.ok
        assert report.forward_cross_count == 2
        assert report.first_offender == (1, 2)

    def test_stop_early(self):
        tree = SpanningTree()
        tree.add_node(3, virtual=True)
        tree.root = 3
        for node in range(3):
            tree.add_node(node)
            tree.attach(node, 3)
        graph = Digraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        report = verify_dfs_tree_inmemory(graph, tree, stop_early=True)
        assert not report.ok
        assert report.forward_cross_count == 1  # stopped at the first

    def test_self_loops_counted_backward(self):
        graph = Digraph.from_edges(2, [(0, 0), (0, 1)])
        tree = chain_tree(2)
        report = verify_dfs_tree_inmemory(graph, tree)
        assert report.ok
        assert report.counts[EdgeType.BACKWARD] == 1

    def test_disk_variant_charges_io(self, device):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2)])
        disk = DiskGraph.from_digraph(device, graph)
        before = device.stats.snapshot()
        report = verify_dfs_tree(disk, chain_tree(3))
        assert report.ok
        assert (device.stats.snapshot() - before).reads >= 1

    def test_report_is_truthy_when_ok(self):
        graph = Digraph.from_edges(2, [(0, 1)])
        assert verify_dfs_tree_inmemory(graph, chain_tree(2))


class TestRealPreorder:
    def test_excludes_virtual_nodes(self):
        tree = chain_tree(4)
        assert real_preorder(tree) == [0, 1, 2, 3]

    def test_empty_tree(self):
        assert real_preorder(SpanningTree()) == []


class TestSelfLoopClassification:
    """Regression: self-loops are BACKWARD *by definition*, index-free.

    The interval index does not define a node's relation to itself, so
    ``_classify_stream`` short-circuits ``(u, u)`` edges before consulting
    it (see ``DFSTreeReport.counts``); the ``self_loops`` field reports
    how many BACKWARD edges were such short-circuits.
    """

    def test_self_loops_reported_separately(self):
        graph = Digraph.from_edges(3, [(0, 0), (1, 1), (0, 1), (2, 0)])
        tree = chain_tree(3)
        report = verify_dfs_tree_inmemory(graph, tree)
        assert report.ok
        assert report.self_loops == 2
        # BACKWARD covers the loops plus the genuine back edge (2, 0).
        assert report.counts[EdgeType.BACKWARD] == 3

    def test_self_loop_heavy_graph(self):
        # Every node carries loops; a degenerate but legal digraph.
        loops = [(node, node) for node in range(10) for _ in range(5)]
        graph = Digraph.from_edges(10, loops + [(i, i + 1) for i in range(9)])
        tree = chain_tree(10)
        report = verify_dfs_tree_inmemory(graph, tree)
        assert report.ok
        assert report.self_loops == 50
        assert report.counts[EdgeType.BACKWARD] == 50
        assert report.counts[EdgeType.TREE] == 9

    def test_self_loops_never_forward_cross(self):
        # Even on a tree that makes every non-loop edge forward-cross,
        # the loops stay BACKWARD and cannot flip the verdict on their own.
        graph = Digraph.from_edges(4, [(n, n) for n in range(4)])
        tree = SpanningTree()
        tree.add_node(4, virtual=True)
        tree.root = 4
        for node in range(4):  # all siblings under γ
            tree.add_node(node)
            tree.attach(node, 4)
        report = verify_dfs_tree_inmemory(graph, tree)
        assert report.ok
        assert report.self_loops == 4
        assert report.forward_cross_count == 0

    def test_self_loops_on_disk_scan(self, device):
        graph = Digraph.from_edges(2, [(0, 0), (0, 1), (1, 1)])
        disk = DiskGraph.from_digraph(device, graph)
        report = verify_dfs_tree(disk, chain_tree(2))
        assert report.ok
        assert report.self_loops == 2
