"""Tests for the in-memory algorithms (DFS, Tarjan SCC, topological sort)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SpanningTree,
    dfs_preferring_tree,
    tarjan_scc,
    topological_sort,
    verify_dfs_tree_inmemory,
)
from repro.errors import InvalidGraphError, NotADAGError
from repro.graph import Digraph, random_graph

from ..conftest import reference_dfs_preorder


def star_and_adjacency(graph: Digraph):
    tree = SpanningTree.initial_star(range(graph.node_count), graph.node_count)
    extra = {u: list(graph.out_neighbors(u)) for u in range(graph.node_count)}
    return tree, extra


class TestDFSPreferringTree:
    def test_matches_reference_dfs_from_star(self):
        """From the initial star, the DFS equals a plain priority DFS."""
        graph = random_graph(60, 3, seed=1)
        tree, extra = star_and_adjacency(graph)
        result = dfs_preferring_tree(tree, extra)
        preorder = [n for n in result.preorder() if n != graph.node_count]
        assert preorder == reference_dfs_preorder(graph)

    def test_result_has_no_forward_cross_edges(self):
        graph = random_graph(80, 4, seed=2)
        tree, extra = star_and_adjacency(graph)
        result = dfs_preferring_tree(tree, extra)
        assert verify_dfs_tree_inmemory(graph, result).ok

    def test_no_extra_edges_reproduces_tree(self):
        """With an empty batch, the DFS must reproduce the tree exactly."""
        graph = random_graph(40, 3, seed=3)
        tree, extra = star_and_adjacency(graph)
        first = dfs_preferring_tree(tree, extra)
        second = dfs_preferring_tree(first, {})
        assert list(second.preorder()) == list(first.preorder())
        assert second.parent == first.parent

    def test_virtual_flags_preserved(self):
        graph = random_graph(20, 2, seed=4)
        tree, extra = star_and_adjacency(graph)
        result = dfs_preferring_tree(tree, extra)
        assert result.is_virtual(graph.node_count)
        assert result.root == graph.node_count

    def test_rootless_tree_rejected(self):
        tree = SpanningTree()
        tree.add_node(0)
        with pytest.raises(InvalidGraphError):
            dfs_preferring_tree(tree, {})

    def test_external_stack_variant_gives_same_tree(self, device):
        graph = random_graph(100, 4, seed=5)
        tree, extra = star_and_adjacency(graph)
        plain = dfs_preferring_tree(tree, extra)
        spilled = dfs_preferring_tree(tree, extra, stack_device=device)
        assert list(spilled.preorder()) == list(plain.preorder())
        assert device.stats.total >= 0  # stack I/O charged to the device

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=99))
    def test_property_valid_dfs_tree(self, node_count, seed):
        graph = random_graph(node_count, 3, seed=seed)
        tree, extra = star_and_adjacency(graph)
        result = dfs_preferring_tree(tree, extra)
        assert verify_dfs_tree_inmemory(graph, result).ok
        preorder = [n for n in result.preorder() if n != graph.node_count]
        assert sorted(preorder) == list(range(node_count))


class TestTarjanSCC:
    def test_simple_components(self):
        adjacency = {0: [1], 1: [2], 2: [0, 3], 3: [4], 4: [3], 5: []}
        components = tarjan_scc(range(6), adjacency)
        assert sorted(sorted(c) for c in components) == [[0, 1, 2], [3, 4], [5]]

    def test_reverse_topological_emission(self):
        """Tarjan emits SCCs in reverse topological order of the condensation."""
        adjacency = {0: [1], 1: [2], 2: []}
        components = tarjan_scc([0, 1, 2], adjacency)
        assert components == [[2], [1], [0]]

    def test_self_loop_is_singleton(self):
        components = tarjan_scc([0], {0: [0]})
        assert components == [[0]]

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=99))
    def test_matches_networkx(self, node_count, seed):
        graph = random_graph(node_count, 2, seed=seed)
        adjacency = {u: graph.out_neighbors(u) for u in range(node_count)}
        mine = sorted(sorted(c) for c in tarjan_scc(range(node_count), adjacency))
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(node_count))
        nx_graph.add_edges_from(graph.edges())
        theirs = sorted(sorted(c) for c in nx.strongly_connected_components(nx_graph))
        assert mine == theirs


class TestTopologicalSort:
    def test_respects_edges(self):
        order = topological_sort(range(4), {0: [1, 2], 1: [3], 2: [3]})
        position = {node: i for i, node in enumerate(order)}
        assert position[0] < position[1] < position[3]
        assert position[0] < position[2] < position[3]

    def test_deterministic_smallest_first(self):
        order = topological_sort(range(4), {})
        assert order == [0, 1, 2, 3]

    def test_cycle_raises(self):
        with pytest.raises(NotADAGError):
            topological_sort([0, 1], {0: [1], 1: [0]})

    def test_self_loop_raises(self):
        with pytest.raises(NotADAGError):
            topological_sort([0], {0: [0]})

    def test_unknown_target_rejected(self):
        with pytest.raises(InvalidGraphError):
            topological_sort([0], {0: [7]})

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=99))
    def test_property_valid_linearization(self, node_count, seed):
        rng = random.Random(seed)
        adjacency = {
            u: sorted({rng.randrange(u + 1, node_count) for _ in range(2)})
            for u in range(node_count - 1)
        }
        adjacency[node_count - 1] = []
        order = topological_sort(range(node_count), adjacency)
        position = {node: i for i, node in enumerate(order)}
        for u, targets in adjacency.items():
            for v in targets:
                assert position[u] < position[v]
