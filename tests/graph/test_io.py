"""Tests for text edge-list I/O."""

import pytest

from repro.errors import InvalidGraphError
from repro.graph import (
    digraph_from_edge_list,
    load_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        edges = [(0, 1), (3, 2), (1, 1)]
        assert write_edge_list(path, edges) == 3
        assert list(read_edge_list(path)) == edges

    def test_header_written_as_comments(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        write_edge_list(path, [(0, 1)], header="generated\ntest graph")
        with open(path) as handle:
            lines = handle.readlines()
        assert lines[0].startswith("# generated")
        assert lines[1].startswith("# test graph")
        assert list(read_edge_list(path)) == [(0, 1)]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        path_file = tmp_path / "graph.txt"
        path_file.write_text("# comment\n\n0 1\n  \n2 3\n")
        assert list(read_edge_list(path)) == [(0, 1), (2, 3)]

    def test_extra_columns_tolerated(self, tmp_path):
        """SNAP files sometimes carry weights; only the first two count."""
        path_file = tmp_path / "graph.txt"
        path_file.write_text("0 1 0.5\n")
        assert list(read_edge_list(str(path_file))) == [(0, 1)]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path_file = tmp_path / "graph.txt"
        path_file.write_text("0 1\nbroken\n")
        with pytest.raises(InvalidGraphError, match=":2"):
            list(read_edge_list(str(path_file)))

    def test_non_integer_raises(self, tmp_path):
        path_file = tmp_path / "graph.txt"
        path_file.write_text("a b\n")
        with pytest.raises(InvalidGraphError):
            list(read_edge_list(str(path_file)))


class TestLoading:
    def test_load_edge_list_onto_device(self, tmp_path, device):
        path = str(tmp_path / "graph.txt")
        write_edge_list(path, [(0, 2), (2, 1)])
        graph = load_edge_list(path, device, node_count=3)
        assert graph.node_count == 3
        assert list(graph.scan()) == [(0, 2), (2, 1)]

    def test_node_count_inferred(self, tmp_path, device):
        path = str(tmp_path / "graph.txt")
        write_edge_list(path, [(0, 7)])
        graph = load_edge_list(path, device)
        assert graph.node_count == 8

    def test_digraph_from_edge_list(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        write_edge_list(path, [(0, 1), (1, 2)])
        graph = digraph_from_edge_list(path)
        assert graph.node_count == 3
        assert list(graph.edges()) == [(0, 1), (1, 2)]

    def test_empty_file(self, tmp_path, device):
        path_file = tmp_path / "graph.txt"
        path_file.write_text("")
        graph = load_edge_list(str(path_file), device)
        assert graph.node_count == 0
        assert list(graph.scan()) == []
