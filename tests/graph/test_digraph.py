"""Unit tests for the in-memory digraph."""

import pytest

from repro.errors import InvalidGraphError
from repro.graph import Digraph


class TestConstruction:
    def test_empty_graph(self):
        graph = Digraph(0)
        assert graph.node_count == 0
        assert list(graph.edges()) == []

    def test_from_edges(self):
        graph = Digraph.from_edges(3, [(0, 1), (1, 2), (0, 1)])
        assert graph.edge_count == 3
        assert graph.out_neighbors(0) == [1, 1]  # parallel edges kept

    def test_negative_node_count_rejected(self):
        with pytest.raises(InvalidGraphError):
            Digraph(-1)

    def test_out_of_range_edge_rejected(self):
        graph = Digraph(2)
        with pytest.raises(InvalidGraphError):
            graph.add_edge(0, 2)
        with pytest.raises(InvalidGraphError):
            graph.add_edge(-1, 0)


class TestQueries:
    def setup_method(self):
        self.graph = Digraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])

    def test_degrees(self):
        assert self.graph.out_degree(0) == 2
        assert self.graph.in_degrees() == [1, 1, 2, 1]
        assert self.graph.degrees() == [3, 2, 3, 2]

    def test_edges_iteration_order(self):
        assert list(self.graph.edges()) == [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)]

    def test_size_measure(self):
        assert self.graph.size == 4 + 5

    def test_reversed(self):
        reversed_graph = self.graph.reversed()
        assert sorted(reversed_graph.edges()) == sorted(
            (v, u) for u, v in self.graph.edges()
        )

    def test_induced_subgraph(self):
        subgraph, originals = self.graph.induced_subgraph([0, 2, 3])
        assert originals == [0, 2, 3]
        # edges among {0, 2, 3}: (0,2), (2,3), (3,0) -> relabelled
        assert sorted(subgraph.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_induced_subgraph_deduplicates_nodes(self):
        subgraph, originals = self.graph.induced_subgraph([1, 1, 2])
        assert originals == [1, 2]
        assert list(subgraph.edges()) == [(0, 1)]
