"""Tests for the synthetic graph generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tarjan_scc
from repro.graph import (
    directed_cycle,
    disconnected_clusters,
    grid_graph,
    power_law_graph,
    random_dag,
    random_graph,
    random_tree,
)


class TestRandomGraph:
    def test_edge_count_matches_degree(self):
        graph = random_graph(100, 4, seed=1)
        assert graph.edge_count == 400

    def test_deterministic_per_seed(self):
        first = list(random_graph(50, 3, seed=9).edges())
        second = list(random_graph(50, 3, seed=9).edges())
        assert first == second

    def test_different_seeds_differ(self):
        assert list(random_graph(50, 3, seed=1).edges()) != list(
            random_graph(50, 3, seed=2).edges()
        )

    def test_no_self_loops(self):
        graph = random_graph(60, 5, seed=3)
        assert all(u != v for u, v in graph.edges())

    def test_no_duplicates_by_default(self):
        edges = list(random_graph(40, 4, seed=4).edges())
        assert len(edges) == len(set(edges))

    def test_tiny_graph(self):
        assert random_graph(1, 5, seed=0).edge_count == 0


class TestPowerLawGraph:
    def test_edge_count_close_to_degree(self):
        graph = power_law_graph(500, 5, seed=1)
        # each node beyond the seed emits `degree` edges
        assert graph.edge_count >= 5 * (500 - 5)
        assert graph.edge_count <= 5 * 500

    def test_deterministic_per_seed(self):
        first = list(power_law_graph(80, 4, seed=7).edges())
        second = list(power_law_graph(80, 4, seed=7).edges())
        assert first == second

    def test_degree_skew_grows_with_attractiveness(self):
        """Larger |A|/D -> a larger share of total degree on the top nodes.

        Paper Exp-5: A controls the fraction of high-degree nodes.  With
        small A, attachment is strongly preferential, concentrating degree;
        the *uniform* component grows with A, so concentration falls.
        """
        def top_share(attractiveness):
            graph = power_law_graph(
                2000, 5, attractiveness=attractiveness, seed=3, reverse_fraction=0.0
            )
            degrees = sorted(graph.in_degrees(), reverse=True)
            return sum(degrees[:20]) / graph.edge_count

        assert top_share(0.25 * 5) > top_share(4 * 5)

    def test_cycles_present_with_reversals(self):
        graph = power_law_graph(300, 5, seed=2, reverse_fraction=0.3)
        adjacency = {u: graph.out_neighbors(u) for u in range(300)}
        components = tarjan_scc(range(300), adjacency)
        assert any(len(c) > 1 for c in components)

    def test_acyclic_without_reversals(self):
        graph = power_law_graph(300, 5, seed=2, reverse_fraction=0.0)
        adjacency = {u: graph.out_neighbors(u) for u in range(300)}
        components = tarjan_scc(range(300), adjacency)
        assert all(len(c) == 1 for c in components)


class TestStructuredGenerators:
    def test_random_tree_is_arborescence(self):
        tree = random_tree(200, seed=1)
        assert tree.edge_count == 199
        in_degrees = tree.in_degrees()
        assert in_degrees[0] == 0
        assert all(d == 1 for d in in_degrees[1:])

    def test_random_dag_is_acyclic(self):
        dag = random_dag(100, 400, seed=2)
        assert all(u < v for u, v in dag.edges())
        assert dag.edge_count == 400

    def test_random_dag_caps_at_max_edges(self):
        dag = random_dag(5, 1000, seed=0)
        assert dag.edge_count == 10  # 5*4/2

    def test_directed_cycle(self):
        cycle = directed_cycle(5)
        assert sorted(cycle.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]

    def test_grid_graph_shape(self):
        grid = grid_graph(3, 2)
        assert grid.node_count == 6
        # 2 rows * 2 right-edges + 3 cols * 1 down-edge
        assert grid.edge_count == 2 * 2 + 3 * 1

    def test_disconnected_clusters_have_no_cross_edges(self):
        graph = disconnected_clusters([10, 20, 5], seed=3)
        boundaries = [(0, 10), (10, 30), (30, 35)]
        for u, v in graph.edges():
            assert any(lo <= u < hi and lo <= v < hi for lo, hi in boundaries)

    @settings(max_examples=15)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=20))
    def test_random_tree_property(self, node_count, seed):
        tree = random_tree(node_count, seed=seed)
        assert all(u < v for u, v in tree.edges())  # parents precede children
        assert tree.edge_count == node_count - 1
