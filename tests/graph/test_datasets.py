"""Tests for the dataset stand-ins (structural fidelity to the originals)."""

from repro.core import tarjan_scc
from repro.graph import (
    Digraph,
    all_datasets,
    arabic2005_like,
    twitter2010_like,
    webspam_uk2007_like,
    wikilink_like,
)

SCALE = 0.04  # keep tests fast; generators are scale-free in structure


def materialize(spec):
    return Digraph.from_edges(spec.node_count, spec.edges())


class TestSpecs:
    def test_all_datasets_returns_four_in_paper_order(self):
        specs = all_datasets(scale=SCALE)
        assert list(specs) == [
            "webspam-uk2007",
            "twitter-2010",
            "wikilink",
            "arabic-2005",
        ]

    def test_edge_stream_is_replayable(self):
        spec = wikilink_like(scale=SCALE)
        first = list(spec.edges())
        second = list(spec.edges())
        assert first == second
        assert len(first) > 0

    def test_scale_changes_node_count(self):
        small = wikilink_like(scale=0.05)
        large = wikilink_like(scale=0.1)
        assert large.node_count == 2 * small.node_count

    def test_minimum_size_floor(self):
        spec = wikilink_like(scale=0.0001)
        assert spec.node_count >= 64


class TestStructuralFidelity:
    def test_average_degrees_near_paper_values(self):
        for spec, target in [
            (wikilink_like(SCALE), 23.0),
            (arabic2005_like(SCALE), 28.0),
            (twitter2010_like(SCALE), 35.0),
            (webspam_uk2007_like(SCALE), 35.0),
        ]:
            graph = materialize(spec)
            average = graph.edge_count / graph.node_count
            assert abs(average - target) / target < 0.15, (spec.name, average)

    def test_twitter_has_giant_scc_near_80_percent(self):
        spec = twitter2010_like(scale=SCALE)
        graph = materialize(spec)
        adjacency = {u: graph.out_neighbors(u) for u in range(graph.node_count)}
        components = tarjan_scc(range(graph.node_count), adjacency)
        largest = max(len(c) for c in components)
        fraction = largest / graph.node_count
        assert 0.75 <= fraction <= 0.95, fraction

    def test_web_graphs_are_host_local(self):
        """Most arabic-2005 edges must stay within a 100-page host block.

        Public ids are scrambled (crawl discovery order), so locality is
        checked in structural ids via the documented permutation.
        """
        from repro.graph.datasets import crawl_page_permutation

        spec = arabic2005_like(scale=0.1)
        permutation = crawl_page_permutation(spec.node_count, seed=11)
        structural = {public: orig for orig, public in enumerate(permutation)}
        intra = total = 0
        for u, v in spec.edges():
            total += 1
            if structural[u] // 100 == structural[v] // 100:
                intra += 1
        assert intra / total > 0.7

    def test_webspam_is_largest(self):
        specs = all_datasets(scale=SCALE)
        sizes = {name: spec.node_count * spec.average_degree for name, spec in specs.items()}
        assert max(sizes, key=sizes.get) == "webspam-uk2007"

    def test_all_endpoints_in_range(self):
        for spec in all_datasets(scale=SCALE).values():
            for u, v in spec.edges():
                assert 0 <= u < spec.node_count, spec.name
                assert 0 <= v < spec.node_count, spec.name
