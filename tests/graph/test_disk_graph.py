"""Tests for the on-disk graph handle."""

import math

import pytest

from repro import DiskGraph
from repro.errors import InvalidGraphError
from repro.graph import random_graph


class TestConstruction:
    def test_from_edges_roundtrip(self, device):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = DiskGraph.from_edges(device, 3, edges)
        assert list(graph.scan()) == edges
        assert graph.node_count == 3
        assert graph.edge_count == 3
        assert graph.size == 6

    def test_from_digraph(self, device):
        source = random_graph(50, 3, seed=1)
        graph = DiskGraph.from_digraph(device, source)
        assert list(graph.scan()) == list(source.edges())

    def test_validation_rejects_out_of_range(self, device):
        with pytest.raises(InvalidGraphError):
            DiskGraph.from_edges(device, 2, [(0, 1), (1, 2)])

    def test_validation_can_be_disabled(self, device):
        graph = DiskGraph.from_edges(device, 2, [(0, 5)], validate=False)
        assert list(graph.scan()) == [(0, 5)]

    def test_requires_sealed_file(self, device):
        writable = device.create_edge_file()
        with pytest.raises(InvalidGraphError):
            DiskGraph(device, 1, writable)

    def test_negative_node_count_rejected(self, device):
        sealed = device.create_edge_file().seal()
        with pytest.raises(InvalidGraphError):
            DiskGraph(device, -1, sealed)


class TestAccess:
    def test_load_reconstructs_digraph(self, device):
        source = random_graph(40, 4, seed=2)
        graph = DiskGraph.from_digraph(device, source)
        loaded = graph.load()
        assert list(loaded.edges()) == list(source.edges())
        assert loaded.node_count == 40

    def test_scan_charges_io(self, device_factory):
        device = device_factory(block_elements=8, block_codec="fixed32")
        graph = DiskGraph.from_edges(device, 100, [(i, 0) for i in range(1, 50)])
        before = device.stats.snapshot()
        list(graph.scan())
        assert (device.stats.snapshot() - before).reads == math.ceil(49 / 8)

    def test_delete_removes_backing_file(self, device):
        graph = DiskGraph.from_edges(device, 2, [(0, 1)])
        graph.delete()
        with pytest.raises(Exception):
            list(graph.scan())
