"""Tests for DFS-order graph relabelling."""

import pytest

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.errors import InvalidGraphError
from repro.graph import power_law_graph, relabel_graph


class TestRelabel:
    def test_identity_permutation(self, device):
        graph = DiskGraph.from_edges(device, 3, [(0, 1), (2, 0)])
        relabelled = relabel_graph(graph, [0, 1, 2])
        assert list(relabelled.scan()) == [(0, 1), (2, 0)]

    def test_swap_permutation(self, device):
        graph = DiskGraph.from_edges(device, 3, [(0, 1), (2, 0)])
        relabelled = relabel_graph(graph, [2, 1, 0])  # node 2 -> 0, node 0 -> 2
        assert list(relabelled.scan()) == [(2, 1), (0, 2)]

    def test_preserves_structure_up_to_isomorphism(self, device):
        graph_mem = power_law_graph(200, 4, seed=1)
        graph = DiskGraph.from_digraph(device, graph_mem)
        result = semi_external_dfs(graph, memory=3 * 200 + 200)
        relabelled = relabel_graph(graph, result.order)
        assert relabelled.edge_count == graph.edge_count
        # map back and compare edge multisets
        back = {position: node for position, node in enumerate(result.order)}
        original = sorted(graph.scan())
        mapped = sorted((back[u], back[v]) for u, v in relabelled.scan())
        assert mapped == original

    def test_relabelled_graph_still_dfs_able(self, device):
        from repro.core import verify_dfs_tree

        graph_mem = power_law_graph(150, 4, seed=2)
        graph = DiskGraph.from_digraph(device, graph_mem)
        memory = 3 * 150 + 200
        result = semi_external_dfs(graph, memory)
        relabelled = relabel_graph(graph, result.order)
        again = semi_external_dfs(relabelled, memory)
        assert again.order[0] == 0  # node 0 is the old DFS's first node
        assert verify_dfs_tree(relabelled, again.tree).ok

    def test_non_permutation_rejected(self, device):
        graph = DiskGraph.from_edges(device, 3, [(0, 1)])
        with pytest.raises(InvalidGraphError):
            relabel_graph(graph, [0, 1, 1])
        with pytest.raises(InvalidGraphError):
            relabel_graph(graph, [0, 1])
