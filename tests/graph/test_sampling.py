"""Tests for edge sampling (the Exp-1 percentage treatment)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import sample_edges


class TestSampling:
    def test_full_fraction_is_identity(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert list(sample_edges(edges, 1.0, seed=5)) == edges

    def test_deterministic_per_seed(self):
        edges = [(i, i + 1) for i in range(1000)]
        first = list(sample_edges(edges, 0.4, seed=3))
        second = list(sample_edges(edges, 0.4, seed=3))
        assert first == second

    def test_fraction_respected_statistically(self):
        edges = [(i, 0) for i in range(20_000)]
        kept = len(list(sample_edges(edges, 0.3, seed=1)))
        assert abs(kept / 20_000 - 0.3) < 0.02

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            list(sample_edges([(0, 1)], 0.0))
        with pytest.raises(ValueError):
            list(sample_edges([(0, 1)], 1.5))

    @settings(max_examples=20)
    @given(
        st.lists(st.tuples(st.integers(0, 99), st.integers(0, 99)), max_size=80),
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(0, 50),
    )
    def test_sample_is_ordered_subsequence(self, edges, fraction, seed):
        sampled = list(sample_edges(edges, fraction, seed=seed))
        iterator = iter(edges)
        for edge in sampled:  # every sampled edge appears, in order
            assert edge in iterator
