"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro.api
import repro.graph.digraph
import repro.storage.buffer_pool

MODULES_WITH_EXAMPLES = [
    repro.storage.buffer_pool,
    repro.graph.digraph,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} should contain doctests"
    assert results.failed == 0


def test_api_quickstart_doctest():
    results = doctest.testmod(repro.api, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
