"""Unit tests for the logical memory budget."""

import pytest

from repro.errors import MemoryBudgetExceeded
from repro.storage import TREE_NODE_COST, MemoryBudget


class TestCharging:
    def test_basic_charge_release(self):
        budget = MemoryBudget(100)
        budget.charge("tree", 60)
        assert budget.used == 60
        assert budget.available == 40
        budget.release("tree")
        assert budget.available == 100

    def test_charge_accumulates_per_label(self):
        budget = MemoryBudget(100)
        budget.charge("batch", 10)
        budget.charge("batch", 15)
        assert budget.charged("batch") == 25

    def test_overcharge_raises_and_leaves_state_unchanged(self):
        budget = MemoryBudget(50)
        budget.charge("tree", 30)
        with pytest.raises(MemoryBudgetExceeded):
            budget.charge("batch", 21)
        assert budget.used == 30

    def test_exact_fit_allowed(self):
        budget = MemoryBudget(50)
        budget.charge("all", 50)
        assert budget.available == 0

    def test_negative_charge_rejected(self):
        budget = MemoryBudget(10)
        with pytest.raises(ValueError):
            budget.charge("x", -1)

    def test_release_unknown_label_is_noop(self):
        budget = MemoryBudget(10)
        budget.release("missing")
        assert budget.used == 0

    def test_release_all(self):
        budget = MemoryBudget(10)
        budget.charge("a", 3)
        budget.charge("b", 4)
        budget.release_all()
        assert budget.available == 10


class TestSetCharge:
    def test_set_replaces(self):
        budget = MemoryBudget(100)
        budget.charge("batch", 40)
        budget.set_charge("batch", 10)
        assert budget.charged("batch") == 10

    def test_set_to_zero_clears(self):
        budget = MemoryBudget(100)
        budget.charge("batch", 40)
        budget.set_charge("batch", 0)
        assert budget.charged("batch") == 0
        assert budget.used == 0

    def test_set_may_grow_within_budget(self):
        budget = MemoryBudget(100)
        budget.charge("tree", 90)
        budget.charge("batch", 5)
        budget.set_charge("batch", 10)
        assert budget.used == 100

    def test_set_over_budget_raises(self):
        budget = MemoryBudget(100)
        budget.charge("tree", 90)
        with pytest.raises(MemoryBudgetExceeded):
            budget.set_charge("batch", 11)


class TestModelConstants:
    def test_tree_charge_uses_paper_constant(self):
        budget = MemoryBudget(1000)
        assert budget.tree_charge(10) == TREE_NODE_COST * 10
        assert TREE_NODE_COST == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_can_fit(self):
        budget = MemoryBudget(10)
        budget.charge("a", 7)
        assert budget.can_fit(3)
        assert not budget.can_fit(4)
