"""Unit + property tests for on-disk edge files and partition routing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClosedFileError, CorruptBlockError, StorageError
from repro.storage import BlockDevice, PartitionWriter, edge_file_from_edges

node_ids = st.integers(min_value=0, max_value=10_000)
edge_lists = st.lists(st.tuples(node_ids, node_ids), max_size=300)


class TestWriteScan:
    def test_roundtrip_preserves_order_and_duplicates(self, device):
        edges = [(0, 1), (1, 2), (0, 1), (5, 5)]
        edge_file = edge_file_from_edges(device, edges)
        assert edge_file.read_all() == edges
        assert len(edge_file) == 4

    def test_empty_file(self, device):
        edge_file = edge_file_from_edges(device, [])
        assert edge_file.read_all() == []
        assert edge_file.block_count == 0

    def test_scan_requires_seal(self, device):
        edge_file = device.create_edge_file()
        edge_file.append(1, 2)
        with pytest.raises(StorageError):
            list(edge_file.scan())

    def test_append_after_seal_rejected(self, device):
        edge_file = edge_file_from_edges(device, [(1, 2)])
        with pytest.raises(StorageError):
            edge_file.append(3, 4)

    def test_seal_is_idempotent(self, device):
        edge_file = device.create_edge_file()
        edge_file.append(1, 2)
        edge_file.seal()
        edge_file.seal()
        assert edge_file.read_all() == [(1, 2)]

    def test_deleted_file_rejects_everything(self, device):
        edge_file = edge_file_from_edges(device, [(1, 2)])
        edge_file.delete()
        edge_file.delete()  # idempotent
        with pytest.raises(ClosedFileError):
            list(edge_file.scan())
        with pytest.raises(ClosedFileError):
            edge_file.append(0, 0)

    @settings(max_examples=25)
    @given(edge_lists)
    def test_roundtrip_property(self, edges):
        with BlockDevice(block_elements=7) as device:
            edge_file = edge_file_from_edges(device, edges)
            assert edge_file.read_all() == edges


class TestIOAccounting:
    def test_write_cost_is_ceil_m_over_b(self, device_factory):
        device = device_factory(block_elements=10, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(25)])
        expected_blocks = math.ceil(25 / 10)
        assert edge_file.block_count == expected_blocks
        assert device.stats.writes == expected_blocks

    def test_scan_cost_is_ceil_m_over_b(self, device_factory):
        device = device_factory(block_elements=10, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(25)])
        before = device.stats.snapshot()
        list(edge_file.scan())
        delta = device.stats.snapshot() - before
        assert delta.reads == math.ceil(25 / 10)
        assert delta.writes == 0

    def test_every_scan_pays_again(self, device_factory):
        device = device_factory(block_elements=4, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(8)])
        before = device.stats.snapshot()
        list(edge_file.scan())
        list(edge_file.scan())
        assert (device.stats.snapshot() - before).reads == 4

    def test_exact_block_boundary(self, device_factory):
        device = device_factory(block_elements=5, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(10)])
        assert edge_file.block_count == 2

    def test_scan_blocks_yields_block_sized_lists(self, device_factory):
        device = device_factory(block_elements=4, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, 0) for i in range(9)])
        sizes = [len(block) for block in edge_file.scan_blocks()]
        assert sizes == [4, 4, 1]


class TestPartitionWriter:
    def test_routes_edges_to_parts(self, device):
        writer = PartitionWriter(device, ["a", "b"])
        writer.route("a", 1, 2)
        writer.route("b", 3, 4)
        writer.route("a", 5, 6)
        parts = writer.seal()
        assert parts["a"].read_all() == [(1, 2), (5, 6)]
        assert parts["b"].read_all() == [(3, 4)]

    def test_unknown_key_rejected(self, device):
        writer = PartitionWriter(device, [1])
        with pytest.raises(KeyError):
            writer.route(2, 0, 0)
        writer.discard()

    def test_duplicate_keys_rejected(self, device):
        with pytest.raises(ValueError):
            PartitionWriter(device, [1, 1])

    def test_discard_removes_files(self, device):
        writer = PartitionWriter(device, [1, 2])
        writer.route(1, 0, 0)
        writer.discard()
        # routing after discard fails because files are deleted
        with pytest.raises(ClosedFileError):
            writer.route(1, 0, 0)

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 3), node_ids, node_ids), max_size=120))
    def test_partition_is_exact(self, routed):
        with BlockDevice(block_elements=8) as device:
            keys = [0, 1, 2, 3]
            writer = PartitionWriter(device, keys)
            for key, u, v in routed:
                writer.route(key, u, v)
            parts = writer.seal()
            for key in keys:
                expected = [(u, v) for k, u, v in routed if k == key]
                assert parts[key].read_all() == expected


class TestColumnarPaths:
    """scan_columns / extend / extend_columns — the kernel-layer fast paths."""

    def test_scan_columns_matches_scan_blocks(self, device_factory):
        device = device_factory(block_elements=4)
        edges = [(i, i * 3 % 11) for i in range(9)]
        edge_file = edge_file_from_edges(device, edges)
        blocks = list(edge_file.scan_blocks())
        columns = list(edge_file.scan_columns())
        assert len(columns) == len(blocks)
        for block, (us, vs) in zip(blocks, columns):
            assert list(zip(us, vs)) == block

    def test_scan_columns_charges_one_read_per_block(self, device_factory):
        device = device_factory(block_elements=4, block_codec="fixed32")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(9)])
        before = device.stats.snapshot()
        list(edge_file.scan_columns())
        delta = device.stats.snapshot() - before
        assert delta.reads == 3
        assert delta.writes == 0

    def test_scan_columns_requires_seal(self, device):
        edge_file = device.create_edge_file()
        edge_file.append(1, 2)
        with pytest.raises(StorageError):
            list(edge_file.scan_columns())

    def test_extend_accepts_generators(self, device_factory):
        device = device_factory(block_elements=8, block_codec="fixed32")
        edge_file = device.create_edge_file()
        edge_file.extend((i, i + 1) for i in range(21))
        edge_file.seal()
        assert edge_file.read_all() == [(i, i + 1) for i in range(21)]
        assert edge_file.block_count == 3

    def test_extend_chunks_interleave_with_append(self, device_factory):
        device = device_factory(block_elements=5)
        edge_file = device.create_edge_file()
        edge_file.append(100, 200)
        edge_file.extend([(i, i) for i in range(7)])
        edge_file.append(300, 400)
        edge_file.extend([(i, -i) for i in range(4)])
        edge_file.seal()
        expected = (
            [(100, 200)]
            + [(i, i) for i in range(7)]
            + [(300, 400)]
            + [(i, -i) for i in range(4)]
        )
        assert edge_file.read_all() == expected
        assert device.stats.writes == edge_file.block_count

    def test_extend_columns_roundtrip(self, device_factory):
        device = device_factory(block_elements=4, block_codec="fixed32")
        edge_file = device.create_edge_file()
        edge_file.append(9, 9)  # ragged head: partial buffer before columns
        us = list(range(11))
        vs = [i * 2 for i in range(11)]
        edge_file.extend_columns(us, vs)
        edge_file.seal()
        assert edge_file.read_all() == [(9, 9)] + list(zip(us, vs))
        assert device.stats.writes == edge_file.block_count == 3

    def test_extend_columns_mismatched_lengths(self, device):
        edge_file = device.create_edge_file()
        with pytest.raises(ValueError):
            edge_file.extend_columns([1, 2], [3])

    def test_extend_columns_block_aligned(self, device_factory):
        device = device_factory(block_elements=4, block_codec="fixed32")
        edge_file = device.create_edge_file()
        edge_file.extend_columns(list(range(8)), list(range(8)))
        assert edge_file.block_count == 2  # written straight through
        edge_file.seal()
        assert edge_file.read_all() == [(i, i) for i in range(8)]

    @settings(max_examples=25)
    @given(edge_lists)
    def test_extend_columns_equals_extend(self, edges):
        with BlockDevice(block_elements=7) as device:
            by_rows = edge_file_from_edges(device, edges)
            by_columns = device.create_edge_file()
            by_columns.extend_columns(
                [u for u, _ in edges], [v for _, v in edges]
            )
            by_columns.seal()
            assert by_columns.read_all() == edges
            assert by_columns.block_count == by_rows.block_count


class TestColumnarErrorPaths:
    """Error paths of scan_columns / extend_columns (and friends)."""

    def test_extend_columns_on_closed_device(self):
        device = BlockDevice(block_elements=4)
        edge_file = device.create_edge_file()
        edge_file.extend_columns([1, 2], [3, 4])
        device.close()
        with pytest.raises(ClosedFileError, match="closed BlockDevice"):
            edge_file.extend_columns([5], [6])

    def test_scan_columns_on_closed_device(self):
        device = BlockDevice(block_elements=4)
        edge_file = edge_file_from_edges(device, [(1, 2), (3, 4)])
        device.close()
        with pytest.raises(ClosedFileError, match="closed BlockDevice"):
            list(edge_file.scan_columns())
        with pytest.raises(ClosedFileError):
            edge_file.read_all()

    def test_scan_columns_truncated_final_block(self, device_factory):
        device = device_factory(block_elements=4)
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(6)])
        # Tear the last (partial) block's frame mid-payload.
        with open(edge_file.path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 3)
        with pytest.raises(CorruptBlockError, match="truncated"):
            list(edge_file.scan_columns())
        # The same damage is caught by the row-wise twin too.
        with pytest.raises(CorruptBlockError):
            list(edge_file.scan_blocks())

    def test_scan_columns_zero_edge_file(self, device):
        edge_file = edge_file_from_edges(device, [])
        assert list(edge_file.scan_columns()) == []
        assert device.stats.reads == 0  # empty scan charges nothing

    def test_extend_columns_empty_columns_write_nothing(self, device):
        edge_file = device.create_edge_file()
        edge_file.extend_columns([], [])
        edge_file.seal()
        assert edge_file.block_count == 0
        assert edge_file.read_all() == []

    def test_extend_columns_after_seal_rejected(self, device):
        edge_file = edge_file_from_edges(device, [(1, 2)])
        with pytest.raises(StorageError, match="sealed"):
            edge_file.extend_columns([1], [2])

    def test_scan_columns_on_deleted_file(self, device):
        edge_file = edge_file_from_edges(device, [(1, 2)])
        edge_file.delete()
        with pytest.raises(ClosedFileError, match="deleted"):
            list(edge_file.scan_columns())
