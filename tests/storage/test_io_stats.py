"""Unit tests for the I/O counters."""

import pytest

from repro.storage import IOSnapshot, IOStats


class TestIOStats:
    def test_starts_at_zero(self):
        stats = IOStats()
        assert stats.reads == 0
        assert stats.writes == 0
        assert stats.total == 0

    def test_add_reads_and_writes(self):
        stats = IOStats()
        stats.add_reads(3)
        stats.add_writes(2)
        stats.add_reads()  # default 1
        assert stats.reads == 4
        assert stats.writes == 2
        assert stats.total == 6

    def test_negative_counts_rejected(self):
        stats = IOStats()
        with pytest.raises(ValueError):
            stats.add_reads(-1)
        with pytest.raises(ValueError):
            stats.add_writes(-5)

    def test_reset(self):
        stats = IOStats()
        stats.add_reads(7)
        stats.reset()
        assert stats.total == 0

    def test_repr_mentions_counts(self):
        stats = IOStats()
        stats.add_writes(2)
        assert "writes=2" in repr(stats)


class TestIOSnapshot:
    def test_snapshot_is_frozen_copy(self):
        stats = IOStats()
        stats.add_reads(5)
        snap = stats.snapshot()
        stats.add_reads(5)
        assert snap.reads == 5
        assert stats.reads == 10

    def test_snapshot_immutable(self):
        snap = IOStats().snapshot()
        with pytest.raises(Exception):
            snap.reads = 3  # type: ignore[misc]

    def test_delta_arithmetic(self):
        stats = IOStats()
        stats.add_reads(4)
        stats.add_writes(1)
        before = stats.snapshot()
        stats.add_reads(6)
        stats.add_writes(2)
        delta = stats.snapshot() - before
        assert delta == IOSnapshot(reads=6, writes=2)
        assert delta.total == 8

    def test_addition(self):
        total = IOSnapshot(1, 2) + IOSnapshot(10, 20)
        assert total == IOSnapshot(11, 22)
