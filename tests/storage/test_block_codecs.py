"""Block format v2: the delta-varint codec next to legacy fixed32.

Covers the wire-level properties (tag discrimination, anti-alignment pad,
corruption detection), the EdgeFile-level contract (identical logical
content under either codec, deterministic block boundaries regardless of
the write path), the byte-level compression accounting, and codec
interop — fixed32 files read under a delta-varint device and vice versa.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptBlockError, ReproError
from repro.storage import BlockDevice, resolve_block_codec, sort_edge_file
from repro.storage.edge_file import edge_file_from_edges
from repro.storage.serialization import (
    CODEC_DELTA_VARINT,
    CODEC_FIXED32,
    EDGE_BYTES,
    DeltaVarintBlockEncoder,
    classify_edge_block,
    decode_edge_block,
    decode_varint_columns,
    pack_edges,
)

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
edges = st.tuples(int32s, int32s)
edge_lists = st.lists(edges, max_size=120)


def encode_all(edge_list, block_bytes=64):
    """Run a whole edge list through the encoder; returns payload list."""
    encoder = DeltaVarintBlockEncoder(block_bytes)
    payloads = []
    for u, v in edge_list:
        closed = encoder.add(u, v)
        if closed is not None:
            payloads.append(closed)
    tail = encoder.flush()
    if tail is not None:
        payloads.append(tail)
    return payloads


class TestResolve:
    def test_default_is_fixed32(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK_CODEC", raising=False)
        assert resolve_block_codec(None) == CODEC_FIXED32

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_CODEC", "delta-varint")
        assert resolve_block_codec(None) == CODEC_DELTA_VARINT

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_CODEC", "delta-varint")
        assert resolve_block_codec("fixed32") == CODEC_FIXED32

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown block codec"):
            resolve_block_codec("zstd")


class TestWireFormat:
    @settings(max_examples=50)
    @given(edge_lists)
    def test_payload_roundtrip(self, edge_list):
        decoded = [
            edge
            for payload, _count in encode_all(edge_list)
            for edge in decode_edge_block(payload)
        ]
        assert decoded == edge_list

    @settings(max_examples=50)
    @given(edge_lists)
    def test_tagged_payloads_stay_off_the_fixed32_grid(self, edge_list):
        # the discrimination rule: len % 8 == 0 means raw fixed32, so a
        # compressed payload must never land on that grid
        for payload, _count in encode_all(edge_list):
            assert len(payload) % EDGE_BYTES != 0
            codec, _body = classify_edge_block(payload)
            assert codec == CODEC_DELTA_VARINT

    @settings(max_examples=50)
    @given(edge_lists)
    def test_counts_sum_to_input(self, edge_list):
        assert sum(c for _p, c in encode_all(edge_list)) == len(edge_list)

    def test_raw_fixed32_classified_without_tag(self):
        payload = pack_edges([(1, 2), (3, 4)])
        codec, body = classify_edge_block(payload)
        assert codec == CODEC_FIXED32
        assert body == payload
        assert decode_edge_block(payload) == [(1, 2), (3, 4)]

    def test_unknown_tag_rejected(self):
        # 9 bytes (off the grid) with an unassigned tag byte
        with pytest.raises(CorruptBlockError, match="codec tag"):
            classify_edge_block(b"\x7f" + b"\x00" * 8)

    def test_truncated_varint_stream_rejected(self):
        ((payload, _count),) = encode_all([(100000, 200000)])
        _codec, body = classify_edge_block(payload)
        with pytest.raises(CorruptBlockError, match="truncated varint"):
            decode_varint_columns(body[:-2])

    def test_overwide_varint_rejected(self):
        # count varint of ten 0x80 continuation bytes: > 64 bits
        with pytest.raises(CorruptBlockError, match="wider than 64 bits"):
            decode_varint_columns(b"\x80" * 10)

    @settings(max_examples=30)
    @given(edge_lists, st.integers(min_value=16, max_value=256))
    def test_block_boundaries_fit_the_byte_budget(self, edge_list, budget):
        for payload, count in encode_all(edge_list, block_bytes=budget):
            # a single pathological edge may overflow, but never two
            assert count == 1 or len(payload) <= budget + 1  # +1 pad

    def test_single_edge_never_splits(self):
        encoder = DeltaVarintBlockEncoder(2)  # absurdly small budget
        assert encoder.add(2**31 - 1, -(2**31)) is None
        payload, count = encoder.flush()
        assert count == 1
        assert decode_edge_block(payload) == [(2**31 - 1, -(2**31))]


class TestEdgeFileUnderCodecs:
    @settings(max_examples=30)
    @given(edge_lists)
    def test_content_identical_across_codecs(self, edge_list):
        with BlockDevice(block_elements=7, block_codec="fixed32") as fixed, \
                BlockDevice(block_elements=7, block_codec="delta-varint") as compressed:
            assert edge_file_from_edges(fixed, edge_list).read_all() \
                == edge_file_from_edges(compressed, edge_list).read_all() \
                == edge_list

    def test_write_paths_share_block_boundaries(self, device_factory):
        """append / extend / extend_columns produce byte-identical files."""
        device = device_factory(block_elements=16, block_codec="delta-varint")
        edge_list = [(i // 3, (i * 17) % 101) for i in range(200)]

        by_append = device.create_edge_file()
        for u, v in edge_list:
            by_append.append(u, v)
        by_append.seal()

        by_extend = device.create_edge_file()
        by_extend.extend(edge_list)
        by_extend.seal()

        by_columns = device.create_edge_file()
        by_columns.extend_columns(
            [u for u, _ in edge_list], [v for _, v in edge_list]
        )
        by_columns.seal()

        with open(by_append.path, "rb") as handle:
            reference = handle.read()
        for clone in (by_extend, by_columns):
            with open(clone.path, "rb") as handle:
                assert handle.read() == reference
        assert by_append.block_count == by_extend.block_count \
            == by_columns.block_count

    def test_sorted_edges_compress_below_the_fixed32_block_count(
        self, device_factory
    ):
        edge_list = sorted((i % 500, (i * 3) % 500) for i in range(2000))
        fixed = edge_file_from_edges(
            device_factory(block_elements=64, block_codec="fixed32"), edge_list
        )
        compressed = edge_file_from_edges(
            device_factory(block_elements=64, block_codec="delta-varint"),
            edge_list,
        )
        assert compressed.read_all() == fixed.read_all()
        # the ISSUE gate: >= 1.5x fewer blocks per scan on sorted input
        assert compressed.block_count * 3 <= fixed.block_count * 2

    def test_scan_columns_matches_scan_under_compression(self, device_factory):
        device = device_factory(block_elements=8, block_codec="delta-varint")
        edge_list = [(i, i * 2) for i in range(50)]
        edge_file = edge_file_from_edges(device, edge_list)
        rebuilt = [
            (int(u), int(v))
            for u_col, v_col in edge_file.scan_columns()
            for u, v in zip(u_col, v_col)
        ]
        assert rebuilt == edge_list

    def test_corrupt_compressed_block_detected(self, device_factory):
        device = device_factory(block_elements=8, block_codec="delta-varint")
        edge_file = edge_file_from_edges(device, [(i, i + 1) for i in range(40)])
        with open(edge_file.path, "r+b") as handle:
            handle.seek(12)  # inside the first frame's payload
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptBlockError):
            edge_file.read_all()

    def test_truncated_tail_detected(self, device_factory):
        device = device_factory(block_elements=8, block_codec="delta-varint")
        edge_file = edge_file_from_edges(device, [(i, i + 1) for i in range(40)])
        with open(edge_file.path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 1)
        with pytest.raises(CorruptBlockError):
            edge_file.read_all()


class TestCompressionAccounting:
    def test_fixed32_ratio_is_one(self, device_factory):
        device = device_factory(block_elements=8, block_codec="fixed32")
        edge_file_from_edges(device, [(i, i) for i in range(32)])
        snapshot = device.stats.snapshot()
        assert snapshot.edge_bytes_raw == 32 * EDGE_BYTES
        assert snapshot.edge_bytes_stored == 32 * EDGE_BYTES
        assert snapshot.compression_ratio == 1.0

    def test_delta_varint_ratio_exceeds_one(self, device_factory):
        device = device_factory(block_elements=8, block_codec="delta-varint")
        edge_file = edge_file_from_edges(device, [(i, i) for i in range(256)])
        written = device.stats.snapshot()
        assert written.edge_bytes_raw == 256 * EDGE_BYTES
        assert 0 < written.edge_bytes_stored < written.edge_bytes_raw
        assert written.compression_ratio > 1.5
        # a scan charges the same raw/stored bytes again, symmetrically
        edge_file.read_all()
        scanned = device.stats.snapshot() - written
        assert scanned.edge_bytes_raw == written.edge_bytes_raw
        assert scanned.edge_bytes_stored == written.edge_bytes_stored

    def test_empty_device_ratio_is_one(self, device_factory):
        assert device_factory().stats.snapshot().compression_ratio == 1.0


class TestCodecInterop:
    """Reads are self-describing: the device codec only governs writes."""

    def test_fixed32_file_reads_under_delta_varint_device(self, tmp_path):
        edge_list = [(i, i * 5) for i in range(30)]
        with BlockDevice(block_elements=8, block_codec="fixed32",
                         directory=str(tmp_path)) as writer:
            sealed = edge_file_from_edges(writer, edge_list)
            path = sealed.path
            counts = (sealed.edge_count, sealed.block_count)
        with BlockDevice(block_elements=8, block_codec="delta-varint",
                         directory=str(tmp_path)) as reader:
            from repro.storage.edge_file import EdgeFile

            adopted = EdgeFile.open_sealed(reader, path, *counts)
            assert adopted.read_all() == edge_list

    def test_delta_varint_file_reads_under_fixed32_device(self, tmp_path):
        edge_list = [(i, i * 5) for i in range(30)]
        with BlockDevice(block_elements=8, block_codec="delta-varint",
                         directory=str(tmp_path)) as writer:
            sealed = edge_file_from_edges(writer, edge_list)
            path = sealed.path
            counts = (sealed.edge_count, sealed.block_count)
        with BlockDevice(block_elements=8, block_codec="fixed32",
                         directory=str(tmp_path)) as reader:
            from repro.storage.edge_file import EdgeFile

            adopted = EdgeFile.open_sealed(reader, path, *counts)
            assert adopted.read_all() == edge_list


class TestExternalSortUnderCompression:
    def test_sort_is_codec_agnostic(self, device_factory):
        edge_list = [((i * 7919) % 257, (i * 104729) % 263) for i in range(600)]
        fixed_device = device_factory(block_elements=16, block_codec="fixed32")
        fixed_sorted = sort_edge_file(
            fixed_device, edge_file_from_edges(fixed_device, edge_list),
            memory_edges=64,
        ).read_all()

        packed_device = device_factory(
            block_elements=16, block_codec="delta-varint"
        )
        packed_sorted = sort_edge_file(
            packed_device, edge_file_from_edges(packed_device, edge_list),
            memory_edges=64,
        ).read_all()

        assert fixed_sorted == packed_sorted == sorted(edge_list)
        # sorted runs are exactly what delta coding likes: fewer transfers
        assert packed_device.stats.total < fixed_device.stats.total
