"""Unit + property tests for the external merge sort."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BlockDevice, edge_file_from_edges, sort_edge_file

node_ids = st.integers(min_value=0, max_value=500)
edge_lists = st.lists(st.tuples(node_ids, node_ids), max_size=250)


class TestSorting:
    def test_sorts_natural_order(self, device):
        edges = [(3, 1), (0, 9), (3, 0), (1, 1)]
        source = edge_file_from_edges(device, edges)
        output = sort_edge_file(device, source, memory_edges=2)
        assert output.read_all() == sorted(edges)

    def test_source_untouched(self, device):
        edges = [(2, 0), (1, 0)]
        source = edge_file_from_edges(device, edges)
        sort_edge_file(device, source, memory_edges=1)
        assert source.read_all() == edges

    def test_custom_key(self, device):
        edges = [(0, 5), (1, 2), (2, 9)]
        source = edge_file_from_edges(device, edges)
        output = sort_edge_file(device, source, memory_edges=2, key=lambda e: e[1])
        assert [v for _, v in output.read_all()] == [2, 5, 9]

    def test_unique_drops_duplicates(self, device):
        edges = [(1, 1), (0, 0), (1, 1), (0, 0), (2, 2)]
        source = edge_file_from_edges(device, edges)
        output = sort_edge_file(device, source, memory_edges=2, unique=True)
        assert output.read_all() == [(0, 0), (1, 1), (2, 2)]

    def test_empty_input(self, device):
        source = edge_file_from_edges(device, [])
        output = sort_edge_file(device, source, memory_edges=4)
        assert output.read_all() == []

    def test_single_run_shortcut(self, device):
        edges = [(5, 0), (1, 0)]
        source = edge_file_from_edges(device, edges)
        output = sort_edge_file(device, source, memory_edges=100)
        assert output.read_all() == [(1, 0), (5, 0)]

    def test_invalid_memory(self, device):
        source = edge_file_from_edges(device, [(1, 2)])
        with pytest.raises(ValueError):
            sort_edge_file(device, source, memory_edges=0)

    @settings(max_examples=25)
    @given(edge_lists, st.integers(min_value=1, max_value=64))
    def test_sort_property(self, edges, memory_edges):
        with BlockDevice(block_elements=8) as device:
            source = edge_file_from_edges(device, edges)
            output = sort_edge_file(device, source, memory_edges=memory_edges)
            assert output.read_all() == sorted(edges)

    @settings(max_examples=25)
    @given(edge_lists, st.integers(min_value=1, max_value=64))
    def test_unique_property(self, edges, memory_edges):
        with BlockDevice(block_elements=8) as device:
            source = edge_file_from_edges(device, edges)
            output = sort_edge_file(
                device, source, memory_edges=memory_edges, unique=True
            )
            assert output.read_all() == sorted(set(edges))


class TestSortIO:
    def test_io_within_constant_of_sort_bound(self, device_factory):
        """Run formation + one merge level: about 4 * scan(N) transfers."""
        device = device_factory(block_elements=16, block_codec="fixed32")
        edge_count = 1024
        edges = [((i * 7919) % 1000, i % 997) for i in range(edge_count)]
        source = edge_file_from_edges(device, edges)
        before = device.stats.snapshot()
        sort_edge_file(device, source, memory_edges=128)
        delta = device.stats.snapshot() - before
        scan_blocks = math.ceil(edge_count / 16)
        # read source + write runs + read runs + write output = 4 scans
        assert delta.total <= 4 * scan_blocks + 8
        assert delta.total >= 3 * scan_blocks
