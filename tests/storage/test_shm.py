"""Unit tests for the shared-memory column segments (:mod:`repro.storage.shm`)."""

import pytest

from repro.errors import StorageError
from repro.kernels import available_backends, resolve_kernel
from repro.storage.shm import (
    SEGMENT_MAGIC,
    SEGMENT_PREFIX,
    ColumnSegment,
    set_segment_observer,
    words_for_columns,
)


@pytest.fixture(params=[pytest.param(name) for name in available_backends()])
def kernel(request):
    return resolve_kernel(request.param)


@pytest.fixture
def segment():
    seg = ColumnSegment.create(64)
    yield seg
    seg.destroy()


class TestCapacity:
    def test_words_for_columns_counts_header_and_lengths(self):
        # MAGIC + column_count + one length word per column + data
        assert words_for_columns([]) == 2
        assert words_for_columns([3]) == 2 + 1 + 3
        assert words_for_columns([1, 4, 4, 4]) == 2 + 4 + 13

    def test_create_rejects_headerless_capacity(self):
        with pytest.raises(StorageError, match="capacity"):
            ColumnSegment.create(1)

    def test_created_names_carry_the_prefix(self, segment):
        assert segment.name.startswith(SEGMENT_PREFIX)
        assert segment.capacity_words == 64


class TestFraming:
    def test_round_trip(self, segment, kernel):
        columns = [[5], [1, 2, 3], [], [-7, 2**31 - 1]]
        segment.write_columns(columns, kernel)
        assert segment.read_column_lists(kernel) == columns

    def test_exact_fit(self, kernel):
        seg = ColumnSegment.create(words_for_columns([2, 3]))
        try:
            seg.write_columns([[1, 2], [3, 4, 5]], kernel)
            assert seg.read_column_lists(kernel) == [[1, 2], [3, 4, 5]]
        finally:
            seg.destroy()

    def test_overflow_raises_before_writing(self, kernel):
        seg = ColumnSegment.create(4)
        try:
            with pytest.raises(StorageError, match="too small"):
                seg.write_columns([[1, 2, 3, 4, 5]], kernel)
        finally:
            seg.destroy()

    def test_unwritten_segment_refuses_to_read(self, segment, kernel):
        # fresh segments are zero-filled: the magic word cannot match
        with pytest.raises(StorageError, match="framed columns"):
            segment.read_columns(kernel)

    def test_rewrite_replaces_the_frame(self, segment, kernel):
        segment.write_columns([[1, 2, 3]], kernel)
        segment.write_columns([[9], [8]], kernel)
        assert segment.read_column_lists(kernel) == [[9], [8]]

    def test_corrupt_count_detected(self, segment, kernel):
        # header claims more columns than the segment could ever hold
        segment.write_columns([[1]], kernel)
        segment._segment.buf[4:8] = (10**6).to_bytes(4, "little")
        with pytest.raises(StorageError, match="truncated"):
            segment.read_columns(kernel)

    def test_magic_word_value(self, segment, kernel):
        segment.write_columns([], kernel)
        head = bytes(segment._segment.buf[:4])
        assert int.from_bytes(head, "little") == SEGMENT_MAGIC

    def test_column_lists_survive_destroy(self, segment, kernel):
        # read_column_lists copies: nothing aliases the shared buffer
        segment.write_columns([[4, 5, 6]], kernel)
        columns = segment.read_column_lists(kernel)
        segment.destroy()
        assert columns == [[4, 5, 6]]


class TestAttachLifecycle:
    def test_attach_reads_what_the_owner_wrote(self, segment, kernel):
        segment.write_columns([[11, 22]], kernel)
        attached = ColumnSegment.attach(segment.name)
        try:
            assert attached.read_column_lists(kernel) == [[11, 22]]
        finally:
            attached.close()

    def test_attached_unlink_is_a_no_op(self, segment, kernel):
        segment.write_columns([[1]], kernel)
        attached = ColumnSegment.attach(segment.name)
        attached.unlink()  # not the owner: must not destroy
        attached.close()
        again = ColumnSegment.attach(segment.name)
        try:
            assert again.read_column_lists(kernel) == [[1]]
        finally:
            again.close()

    def test_owner_unlink_is_idempotent(self):
        seg = ColumnSegment.create(8)
        seg.close()
        seg.unlink()
        seg.unlink()

    def test_observer_sees_create_and_unlink(self):
        events = []
        set_segment_observer(lambda action, name: events.append((action, name)))
        try:
            seg = ColumnSegment.create(8)
            seg.destroy()
        finally:
            set_segment_observer(None)
        assert events == [("create", seg.name), ("unlink", seg.name)]
