"""Hypothesis stateful (model-based) tests for the storage substrate."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import MemoryBudgetExceeded
from repro.storage import BlockDevice, ExternalStack, MemoryBudget


class ExternalStackMachine(RuleBasedStateMachine):
    """Drive an ExternalStack against a plain-list model."""

    def __init__(self):
        super().__init__()
        self.device = BlockDevice(block_elements=8)
        self.stack = ExternalStack(self.device, page_elements=4, hot_pages=1)
        self.model = []

    @rule(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def push(self, value):
        self.stack.push(value)
        self.model.append(value)

    @rule()
    def pop(self):
        if self.model:
            assert self.stack.pop() == self.model.pop()
        else:
            with pytest.raises(IndexError):
                self.stack.pop()

    @rule()
    def peek(self):
        if self.model:
            assert self.stack.peek() == self.model[-1]

    @invariant()
    def lengths_agree(self):
        assert len(self.stack) == len(self.model)

    @invariant()
    def io_is_balanced(self):
        # reloads can never exceed spills
        assert self.device.stats.reads <= self.device.stats.writes

    def teardown(self):
        self.stack.close()
        self.device.close()


class MemoryBudgetMachine(RuleBasedStateMachine):
    """Drive a MemoryBudget against a dict model."""

    labels = Bundle("labels")

    def __init__(self):
        super().__init__()
        self.budget = MemoryBudget(1000)
        self.model = {}

    @initialize()
    def start(self):
        self.model = {}

    @rule(target=labels, name=st.sampled_from(["a", "b", "c", "d"]))
    def make_label(self, name):
        return name

    @rule(label=labels, amount=st.integers(min_value=0, max_value=400))
    def charge(self, label, amount):
        used = sum(self.model.values())
        if amount <= 1000 - used:
            self.budget.charge(label, amount)
            self.model[label] = self.model.get(label, 0) + amount
        else:
            with pytest.raises(MemoryBudgetExceeded):
                self.budget.charge(label, amount)

    @rule(label=labels, amount=st.integers(min_value=0, max_value=1200))
    def set_charge(self, label, amount):
        used_elsewhere = sum(v for k, v in self.model.items() if k != label)
        if amount <= 1000 - used_elsewhere:
            self.budget.set_charge(label, amount)
            if amount == 0:
                self.model.pop(label, None)
            else:
                self.model[label] = amount
        else:
            with pytest.raises(MemoryBudgetExceeded):
                self.budget.set_charge(label, amount)

    @rule(label=labels)
    def release(self, label):
        self.budget.release(label)
        self.model.pop(label, None)

    @invariant()
    def accounting_agrees(self):
        assert self.budget.used == sum(self.model.values())
        assert self.budget.available == 1000 - sum(self.model.values())
        for label, amount in self.model.items():
            assert self.budget.charged(label) == amount


TestExternalStackStateful = ExternalStackMachine.TestCase
TestExternalStackStateful.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)

TestMemoryBudgetStateful = MemoryBudgetMachine.TestCase
TestMemoryBudgetStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
