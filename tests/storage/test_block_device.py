"""Unit tests for the simulated block device."""

import os

import pytest

from repro.errors import ClosedFileError
from repro.storage import BlockDevice


class TestLifecycle:
    def test_owns_and_removes_temp_directory(self):
        device = BlockDevice()
        directory = device.directory
        assert os.path.isdir(directory)
        device.close()
        assert not os.path.exists(directory)
        assert device.closed

    def test_close_is_idempotent(self):
        device = BlockDevice()
        device.close()
        device.close()

    def test_context_manager(self):
        with BlockDevice() as device:
            directory = device.directory
            assert os.path.isdir(directory)
        assert not os.path.exists(directory)

    def test_external_directory_is_kept(self, tmp_path):
        target = str(tmp_path / "dev")
        device = BlockDevice(directory=target)
        path = device.allocate_path("keepme")
        with open(path, "wb") as handle:
            handle.write(b"x")
        device.close()
        assert os.path.isdir(target)
        assert os.path.exists(path)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockDevice(block_elements=0)


class TestAllocation:
    def test_paths_are_unique(self, device):
        first = device.allocate_path()
        second = device.allocate_path()
        assert first != second
        assert first.startswith(device.directory)

    def test_named_path(self, device):
        path = device.allocate_path("edges-main", suffix=".dat")
        assert os.path.basename(path) == "edges-main.dat"

    def test_closed_device_rejects_operations(self):
        device = BlockDevice()
        device.close()
        with pytest.raises(ClosedFileError):
            device.allocate_path()
        with pytest.raises(ClosedFileError):
            device.create_edge_file()

    def test_repr(self, device):
        assert "open" in repr(device)
        assert str(device.block_elements) in repr(device)
