"""Unit + property tests for the external-memory stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClosedFileError
from repro.storage import BlockDevice, ExternalStack

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestBasics:
    def test_lifo_order(self, device):
        with ExternalStack(device, page_elements=4, hot_pages=1) as stack:
            for value in range(20):
                stack.push(value)
            popped = [stack.pop() for _ in range(20)]
            assert popped == list(range(19, -1, -1))

    def test_len_tracks_contents(self, device):
        with ExternalStack(device, page_elements=3) as stack:
            assert len(stack) == 0
            stack.push(1)
            stack.push(2)
            assert len(stack) == 2
            stack.pop()
            assert len(stack) == 1

    def test_pop_empty_raises(self, device):
        with ExternalStack(device) as stack:
            with pytest.raises(IndexError):
                stack.pop()

    def test_peek_does_not_consume(self, device):
        with ExternalStack(device, page_elements=2, hot_pages=1) as stack:
            stack.push(7)
            stack.push(8)
            assert stack.peek() == 8
            assert len(stack) == 2
            assert stack.pop() == 8

    def test_interleaved_push_pop(self, device):
        with ExternalStack(device, page_elements=2, hot_pages=1) as stack:
            stack.push(1)
            stack.push(2)
            assert stack.pop() == 2
            stack.push(3)
            stack.push(4)
            stack.push(5)
            assert [stack.pop() for _ in range(4)] == [5, 4, 3, 1]

    def test_closed_stack_rejects_operations(self, device):
        stack = ExternalStack(device)
        stack.close()
        stack.close()  # idempotent
        with pytest.raises(ClosedFileError):
            stack.push(1)

    def test_invalid_parameters(self, device):
        with pytest.raises(ValueError):
            ExternalStack(device, hot_pages=0)
        with pytest.raises(ValueError):
            ExternalStack(device, page_elements=0)


class TestSpilling:
    def test_spills_beyond_hot_pages(self, device):
        with ExternalStack(device, page_elements=4, hot_pages=2) as stack:
            for value in range(4 * 4 + 1):  # needs 5 pages
                stack.push(value)
            assert stack.spilled_pages >= 1

    def test_spill_and_reload_charge_io(self, device):
        before = device.stats.snapshot()
        with ExternalStack(device, page_elements=4, hot_pages=1) as stack:
            for value in range(16):
                stack.push(value)
            spill_writes = (device.stats.snapshot() - before).writes
            assert spill_writes >= 2
            for _ in range(16):
                stack.pop()
            delta = device.stats.snapshot() - before
            assert delta.reads == spill_writes  # every spilled page reloads once

    def test_amortized_io_bound(self, device_factory):
        """N pushes + N pops cost O(N / B) I/Os."""
        device = device_factory(block_elements=64)
        count = 64 * 20
        before = device.stats.snapshot()
        with ExternalStack(device, hot_pages=1) as stack:
            for value in range(count):
                stack.push(value)
            for _ in range(count):
                stack.pop()
        delta = device.stats.snapshot() - before
        assert delta.total <= 2 * (count // 64) + 4


class TestStackProperty:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.one_of(int32s.map(lambda v: ("push", v)), st.just(("pop", 0))),
            max_size=300,
        ),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_list_model(self, operations, page_elements, hot_pages):
        model = []
        with BlockDevice(block_elements=16) as device:
            with ExternalStack(device, page_elements, hot_pages) as stack:
                for op, value in operations:
                    if op == "push":
                        stack.push(value)
                        model.append(value)
                    elif model:
                        assert stack.pop() == model.pop()
                    else:
                        with pytest.raises(IndexError):
                            stack.pop()
                    assert len(stack) == len(model)
