"""Unit + property tests for the binary edge/int codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.serialization import (
    EDGE_BYTES,
    INT_BYTES,
    edges_to_blocks,
    pack_edges,
    pack_ints,
    unpack_edges,
    unpack_ints,
)

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
edges = st.tuples(int32s, int32s)


class TestEdgeCodec:
    def test_empty(self):
        assert pack_edges([]) == b""
        assert unpack_edges(b"") == []

    def test_known_bytes(self):
        data = pack_edges([(1, 2)])
        assert len(data) == EDGE_BYTES
        assert data == b"\x01\x00\x00\x00\x02\x00\x00\x00"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_edges([(2**31, 0)])
        with pytest.raises(ValueError):
            pack_edges([(0, -(2**31) - 1)])

    def test_partial_record_rejected(self):
        with pytest.raises(ValueError):
            unpack_edges(b"\x00" * (EDGE_BYTES + 1))

    @given(st.lists(edges, max_size=200))
    def test_roundtrip(self, edge_list):
        assert unpack_edges(pack_edges(edge_list)) == edge_list


class TestIntCodec:
    def test_known_bytes(self):
        assert pack_ints([-1]) == b"\xff\xff\xff\xff"
        assert len(pack_ints([7])) == INT_BYTES

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_ints([2**31])

    def test_partial_record_rejected(self):
        with pytest.raises(ValueError):
            unpack_ints(b"\x00" * 3)

    @given(st.lists(int32s, max_size=200))
    def test_roundtrip(self, values):
        assert unpack_ints(pack_ints(values)) == values


class TestBlocking:
    def test_blocks_have_requested_size(self):
        edge_list = [(i, i + 1) for i in range(10)]
        blocks = list(edges_to_blocks(edge_list, block_edges=4))
        assert [len(b) // EDGE_BYTES for b in blocks] == [4, 4, 2]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(edges_to_blocks([(0, 1)], block_edges=0))

    @given(st.lists(edges, max_size=100), st.integers(min_value=1, max_value=17))
    def test_blocks_concatenate_to_whole(self, edge_list, block_edges):
        blocks = edges_to_blocks(edge_list, block_edges)
        recovered = [e for block in blocks for e in unpack_edges(block)]
        assert recovered == edge_list
