"""Tests for the process-pool part scheduler (:mod:`repro.parallel`).

The pool width defaults to 2 and can be forced from the environment
(``REPRO_TEST_WORKERS``) so CI can run the whole suite at a fixed width.
"""

import multiprocessing
import os
import pickle
import random
from concurrent.futures.process import BrokenProcessPool

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.parallel
from repro import DiskGraph, Tracer
from repro.algorithms import divide_star_dfs, divide_td_dfs
from repro.algorithms.divide_conquer import star_strategy
from repro.core.tree import SpanningTree
from repro.errors import ConvergenceError
from repro.graph import power_law_graph
from repro.graph.digraph import Digraph
from repro.obs import SpanEvent, phase_totals
from repro.parallel import PartOutcome, PartPayload, part_memory_shares
from repro.storage.io_stats import IOSnapshot
from repro.storage.shm import SEGMENT_PREFIX, set_segment_observer

from .conftest import assert_valid_dfs_result

POOL = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def clustered_graph(cluster_count=6, cluster_size=200, extra_edges=400, seed=7):
    """Disconnected strongly connected clusters (a >=4-part division).

    Each cluster is a directed cycle (one SCC) plus random intra-cluster
    edges; no edges cross clusters, so a top-level division reliably
    produces one part per cluster.
    """
    graph = Digraph(cluster_count * cluster_size)
    rng = random.Random(seed)
    for cluster in range(cluster_count):
        base = cluster * cluster_size
        for i in range(cluster_size):
            graph.add_edge(base + i, base + (i + 1) % cluster_size)
        produced = 0
        while produced < extra_edges:
            u = base + rng.randrange(cluster_size)
            v = base + rng.randrange(cluster_size)
            if u == v:
                continue
            graph.add_edge(u, v)
            produced += 1
    return graph


class TestPartMemoryShares:
    def test_even_split_when_floors_allow(self):
        shares, oversubscribed = part_memory_shares(1000, [10, 10, 10, 10], 4)
        assert shares == [250, 250, 250, 250]
        assert not oversubscribed

    def test_fewer_parts_than_workers_widens_the_slice(self):
        shares, _ = part_memory_shares(1000, [10, 10], 8)
        assert shares == [500, 500]

    def test_floor_raises_an_undersized_slice(self):
        # even slice is 100, but a 60-node part needs 3*60 + 2 = 182; the
        # raised share pushes the concurrent total past the budget, which
        # is flagged rather than fatal
        shares, oversubscribed = part_memory_shares(400, [60, 5, 5, 5], 4)
        assert shares[0] == 182
        assert shares[1:] == [100, 100, 100]
        assert oversubscribed

    def test_oversubscription_when_every_floor_exceeds_the_slice(self):
        shares, oversubscribed = part_memory_shares(400, [60, 60, 60, 60], 4)
        assert shares == [182, 182, 182, 182]
        assert oversubscribed

    def test_sequential_width_charges_one_share(self):
        _, oversubscribed = part_memory_shares(200, [60, 60, 60, 60], 1)
        assert not oversubscribed  # parts run one at a time

    def test_empty_parts(self):
        assert part_memory_shares(100, [], 4) == ([], False)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="workers"):
            part_memory_shares(100, [10], 0)
        with pytest.raises(ValueError, match="budget"):
            part_memory_shares(0, [10], 2)


@pytest.fixture(scope="module")
def pool_graph():
    return clustered_graph()


POOL_MEMORY = 3 * 1200 + 400


class TestPoolMatchesSequential:
    """workers>1 must be observationally identical to the sequential run."""

    @pytest.mark.parametrize("workers", sorted({POOL, 4}))
    def test_star_pool_matches_sequential(
        self, device_factory, pool_graph, workers
    ):
        seq_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        sequential = divide_star_dfs(seq_disk, POOL_MEMORY)

        par_device = device_factory(64)
        par_disk = DiskGraph.from_digraph(par_device, pool_graph)
        pooled = divide_star_dfs(par_disk, POOL_MEMORY, workers=workers)

        assert pooled.details.get("parallel_dispatches", 0) >= 1
        assert pooled.order == sequential.order
        assert pooled.io == sequential.io
        assert pooled.passes == sequential.passes
        assert_valid_dfs_result(pooled, par_disk, pool_graph)
        # no worker scratch directories survive a successful run
        assert not [
            name for name in os.listdir(par_device.directory)
            if name.startswith("pool-")
        ]

    def test_td_pool_matches_sequential(self, device_factory, pool_graph):
        seq_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        sequential = divide_td_dfs(seq_disk, POOL_MEMORY)

        par_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        pooled = divide_td_dfs(par_disk, POOL_MEMORY, workers=POOL)

        assert pooled.details.get("parallel_dispatches", 0) >= 1
        assert pooled.order == sequential.order
        assert pooled.io == sequential.io

    def test_workers_one_keeps_the_sequential_loop(
        self, device_factory, pool_graph
    ):
        default_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        default = divide_star_dfs(default_disk, POOL_MEMORY)

        explicit_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        explicit = divide_star_dfs(explicit_disk, POOL_MEMORY, workers=1)

        assert explicit.order == default.order
        assert explicit.io == default.io
        assert explicit.passes == default.passes
        assert "parallel_dispatches" not in explicit.details

    @pytest.mark.parametrize("boundary", ["shm", "pickle"])
    def test_pooled_ios_equal_sequential_under_both_boundaries(
        self, device_factory, pool_graph, boundary
    ):
        """The logical-I/O regression gate for the columnar boundary.

        Whatever crosses the process line — shared int32 columns or the
        legacy pickle — the pooled run must charge *exactly* the block
        transfers of the sequential loop; the boundary is pure transport.
        """
        seq_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        sequential = divide_star_dfs(seq_disk, POOL_MEMORY)

        par_disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        pooled = divide_star_dfs(
            par_disk, POOL_MEMORY, workers=POOL, worker_boundary=boundary
        )

        assert pooled.details.get("parallel_dispatches", 0) >= 1
        assert pooled.io == sequential.io
        assert pooled.io.reads == sequential.io.reads
        assert pooled.io.writes == sequential.io.writes
        assert pooled.order == sequential.order
        if boundary == "shm":
            # shared memory worked end to end; no part fell back
            assert pooled.details.get("worker_boundary_fallbacks", 0) == 0

    def test_mapped_part_scan_charges_identical_ios(self, device_factory):
        """The worker's mmap read path is invisible to logical I/O.

        ``open_sealed(..., mapped=True)`` swaps buffered reads for a
        read-only mapping, but every block still flows through
        ``device.read_block`` — same edges, same charges, byte for byte.
        """
        from repro.storage import edge_file_from_edges
        from repro.storage.edge_file import EdgeFile

        device = device_factory(32)
        edges = [(u, (u * 7 + 3) % 500) for u in range(500)]
        sealed = edge_file_from_edges(device, edges)

        before = device.stats.snapshot()
        plain = EdgeFile.open_sealed(
            device, sealed.path, sealed.edge_count, sealed.block_count
        )
        plain_edges = plain.read_all()
        plain_cost = device.stats.snapshot() - before

        before = device.stats.snapshot()
        mapped = EdgeFile.open_sealed(
            device, sealed.path, sealed.edge_count, sealed.block_count,
            mapped=True,
        )
        mapped_edges = mapped.read_all()
        mapped_cost = device.stats.snapshot() - before

        assert mapped_edges == plain_edges == edges
        assert mapped_cost == plain_cost
        assert mapped_cost.reads == sealed.block_count

    def test_mapped_empty_file_falls_back_to_buffered(self, device_factory):
        from repro.storage import edge_file_from_edges
        from repro.storage.edge_file import EdgeFile

        device = device_factory(32)
        sealed = edge_file_from_edges(device, [])
        mapped = EdgeFile.open_sealed(
            device, sealed.path, 0, 0, mapped=True
        )
        assert mapped.read_all() == []


class TestSpanTiling:
    def test_replayed_worker_phases_tile_the_run_io(
        self, device_factory, pool_graph
    ):
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        result = divide_star_dfs(
            disk, POOL_MEMORY, tracer=Tracer(), workers=POOL
        )
        assert result.details.get("parallel_dispatches", 0) >= 1

        totals = phase_totals(result.events)
        assert sum(t.io.reads for t in totals.values()) == result.io.reads
        assert sum(t.io.writes for t in totals.values()) == result.io.writes

    def test_replayed_events_carry_the_worker_tag(
        self, device_factory, pool_graph
    ):
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        result = divide_star_dfs(
            disk, POOL_MEMORY, tracer=Tracer(), workers=POOL
        )
        workers_seen = {
            event.attributes["worker"]
            for event in result.events
            if "worker" in event.attributes
        }
        # one tag per dispatched part (the clusters are the parts)
        assert len(workers_seen) >= 2
        # every worker-tagged "part" span replays with its own phases
        tagged_phases = {
            event.name for event in result.events
            if "worker" in event.attributes
        }
        assert "part" in tagged_phases


def dense_clusters(cluster_count=4, cluster_size=300, degree=14):
    """Disconnected power-law clusters too dense to fit any memory share.

    Each cluster's part exceeds the run budget ``M`` (let alone a worker's
    slice of it), so after the top-level division the recursion must keep
    restructuring inside the parts — where a tight pass cap then trips
    *after* the part files have been materialized.
    """
    graph = Digraph(cluster_count * cluster_size)
    for cluster in range(cluster_count):
        base = cluster * cluster_size
        shape = power_law_graph(cluster_size, degree, seed=10 + cluster)
        for u, v in shape.edges():
            graph.add_edge(base + u, base + v)
    return graph


DENSE_MEMORY = 3 * 1200 + 150


class TestFailureCleanup:
    """A mid-recursion error must leave zero part artifacts behind."""

    @pytest.mark.parametrize("workers", [1, sorted({POOL, 4})[-1]])
    def test_pass_cap_error_leaves_no_part_files(self, device_factory, workers):
        device = device_factory(64)
        disk = DiskGraph.from_digraph(device, dense_clusters())
        files_before = set(os.listdir(device.directory))
        with pytest.raises(ConvergenceError, match="restructure passes"):
            divide_star_dfs(
                disk, DENSE_MEMORY, max_passes=2, workers=workers
            )
        files_after = set(os.listdir(device.directory))
        assert files_after == files_before

    def test_deadline_error_leaves_no_part_files(self, device_factory):
        device = device_factory(64)
        disk = DiskGraph.from_digraph(device, dense_clusters())
        files_before = set(os.listdir(device.directory))
        with pytest.raises(ConvergenceError, match="deadline"):
            divide_star_dfs(
                disk, DENSE_MEMORY, deadline_seconds=0.0, workers=POOL
            )
        assert set(os.listdir(device.directory)) == files_before


def _crash_worker(payload):
    """Stand-in worker that dies without cleanup (not even atexit runs)."""
    os._exit(3)


def _shm_entries():
    """Current ``/dev/shm`` entries carrying this package's prefix."""
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # non-tmpfs host; the ledger still covers us
        return set()


@pytest.fixture
def segment_ledger():
    """Tracking allocator: records every segment create/unlink in order."""
    ledger = {"create": [], "unlink": []}

    def observer(action, name):
        ledger[action].append(name)

    set_segment_observer(observer)
    try:
        yield ledger
    finally:
        set_segment_observer(None)


def assert_segments_balanced(ledger):
    """Every created segment was unlinked, and none survives on disk."""
    created, unlinked = set(ledger["create"]), set(ledger["unlink"])
    assert created == unlinked
    assert not (_shm_entries() & created)


class TestSegmentLifecycle:
    """Shared-memory segments are parent-owned: no error path may leak.

    The tracking allocator (:func:`repro.storage.shm.set_segment_observer`)
    records every create/unlink in the parent — the only process allowed
    to do either — so balance plus an empty ``/dev/shm`` sweep proves
    leak-freedom without trusting worker cooperation.
    """

    def test_successful_pool_run_unlinks_every_segment(
        self, device_factory, pool_graph, segment_ledger
    ):
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        result = divide_star_dfs(disk, POOL_MEMORY, workers=POOL)
        assert result.details.get("parallel_dispatches", 0) >= 1
        # two segments per part (tree in, outcome out), all reclaimed
        assert len(segment_ledger["create"]) >= 2
        assert_segments_balanced(segment_ledger)

    def test_pass_cap_failure_unlinks_every_segment(
        self, device_factory, segment_ledger
    ):
        disk = DiskGraph.from_digraph(device_factory(64), dense_clusters())
        with pytest.raises(ConvergenceError, match="restructure passes"):
            divide_star_dfs(disk, DENSE_MEMORY, max_passes=2, workers=POOL)
        assert len(segment_ledger["create"]) >= 2
        assert_segments_balanced(segment_ledger)

    def test_deadline_expiry_unlinks_every_segment(
        self, device_factory, segment_ledger
    ):
        disk = DiskGraph.from_digraph(device_factory(64), dense_clusters())
        with pytest.raises(ConvergenceError, match="deadline"):
            divide_star_dfs(
                disk, DENSE_MEMORY, deadline_seconds=0.0, workers=POOL
            )
        assert_segments_balanced(segment_ledger)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="monkeypatched worker entry point needs fork inheritance",
    )
    def test_worker_crash_unlinks_every_segment(
        self, device_factory, pool_graph, segment_ledger, monkeypatch
    ):
        """A worker dying mid-part (no exception, no cleanup) cannot leak.

        ``os._exit`` skips every ``finally`` in the worker; the pool
        surfaces :class:`BrokenProcessPool` and the parent's ``finally``
        still unlinks both segments of every part.
        """
        monkeypatch.setattr(repro.parallel, "_run_part_worker", _crash_worker)
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        with pytest.raises(BrokenProcessPool):
            divide_star_dfs(disk, POOL_MEMORY, workers=POOL)
        assert len(segment_ledger["create"]) >= 2
        assert_segments_balanced(segment_ledger)

    def test_forced_pickle_boundary_creates_no_segments(
        self, device_factory, pool_graph, segment_ledger
    ):
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        result = divide_star_dfs(
            disk, POOL_MEMORY, workers=POOL, worker_boundary="pickle"
        )
        assert result.details.get("parallel_dispatches", 0) >= 1
        assert segment_ledger["create"] == []
        assert segment_ledger["unlink"] == []


def tree_fingerprint(tree):
    """Everything that makes two trees the same ordered rooted tree."""
    preorder = list(tree.preorder())
    return (
        tree.root,
        preorder,
        [tree.parent[node] for node in preorder],
        [tree.is_virtual(node) for node in preorder],
    )


class TestWorkerBoundarySerialization:
    """The parent→worker payloads must survive pickling unchanged."""

    def test_run_result_tree_round_trips(self, device_factory, pool_graph):
        disk = DiskGraph.from_digraph(device_factory(64), pool_graph)
        result = divide_star_dfs(disk, POOL_MEMORY)
        clone = pickle.loads(pickle.dumps(result.tree))
        assert tree_fingerprint(clone) == tree_fingerprint(result.tree)

    def test_part_payload_round_trips(self):
        tree = SpanningTree.initial_star([0, 1, 2], virtual_root=3)
        payload = PartPayload(
            index=1,
            depth=1,
            edge_path="/tmp/part-1.edges",
            edge_count=12,
            block_count=2,
            tree=tree,
            real_node_count=3,
            memory=64,
            pass_limit=5,
            deadline_seconds=1.5,
            strategy=star_strategy,
            algorithm="divide-star",
            block_elements=32,
            kernel="python",
            fault_plan=None,
            max_retries=3,
            backoff_seconds=0.0,
            allocator_start=7,
            worker_dir="/tmp/pool-0-1",
            traced=True,
            block_codec="fixed32",
        )
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.strategy is star_strategy  # pickled by reference
        assert tree_fingerprint(clone.tree) == tree_fingerprint(payload.tree)
        assert (clone.index, clone.edge_path, clone.memory, clone.pass_limit) \
            == (1, "/tmp/part-1.edges", 64, 5)
        assert clone.deadline_seconds == 1.5
        assert clone.traced is True

    def test_part_outcome_round_trips(self):
        event = SpanEvent(
            name="solve", span_id=1, parent_id=None, depth=0, sequence=0,
            elapsed_seconds=0.25,
            io=IOSnapshot(reads=4, writes=1, retries=0, faults=0,
                          checksum_failures=0),
            attributes={"nodes": 3},
        )
        outcome = PartOutcome(
            index=2,
            tree=SpanningTree.initial_star([0, 1], virtual_root=2),
            io=IOSnapshot(reads=9, writes=3, retries=1, faults=1,
                          checksum_failures=0),
            passes=2,
            divisions=1,
            max_depth=3,
            details={"inmemory_solves": 4},
            events=(event,),
        )
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.io == outcome.io
        assert clone.events == outcome.events
        assert clone.details == outcome.details
        assert tree_fingerprint(clone.tree) == tree_fingerprint(outcome.tree)

    @given(st.data())
    def test_random_trees_round_trip(self, data):
        node_count = data.draw(st.integers(min_value=1, max_value=40))
        tree = SpanningTree()
        tree.add_node(0, virtual=True)
        tree.root = 0
        for node in range(1, node_count):
            parent = data.draw(
                st.integers(min_value=0, max_value=node - 1),
                label=f"parent-of-{node}",
            )
            virtual = data.draw(st.booleans(), label=f"virtual-{node}")
            tree.add_node(node, virtual=virtual)
            tree.attach(node, parent)
        clone = pickle.loads(pickle.dumps(tree))
        assert tree_fingerprint(clone) == tree_fingerprint(tree)
