"""Cross-layer integration tests: text file -> device -> DFS -> apps.

These walk realistic multi-step pipelines end to end, checking that the
layers compose (file interop, relabelling, checkpointing, applications)
— not just that each unit works in isolation.
"""

import os

import pytest

from repro import BlockDevice, DiskGraph, semi_external_dfs
from repro.apps import (
    biconnected_components,
    connectivity_report,
    strongly_connected_components,
    topological_order,
    weakly_connected_components,
)
from repro.core import load_tree, save_tree, verify_dfs_tree
from repro.graph import (
    load_edge_list,
    power_law_graph,
    random_dag,
    relabel_graph,
    sample_edges,
    write_edge_list,
)

from .conftest import assert_valid_dfs_result


class TestFileToDFSPipeline:
    def test_text_roundtrip_then_dfs_all_algorithms(self, tmp_path, device):
        graph = power_law_graph(300, 4, seed=1)
        path = str(tmp_path / "g.txt")
        write_edge_list(path, graph.edges(), header="integration test")
        disk = load_edge_list(path, device, node_count=300)
        memory = 3 * 300 + disk.edge_count // 4
        for algorithm in ["edge-by-batch", "divide-star", "divide-td"]:
            result = semi_external_dfs(disk, memory, algorithm=algorithm)
            assert_valid_dfs_result(result, disk, graph)

    def test_sampled_subgraph_pipeline(self, tmp_path, device):
        """The Exp-1 treatment end to end: sample 50% and DFS."""
        graph = power_law_graph(400, 5, seed=2)
        kept = list(sample_edges(graph.edges(), 0.5, seed=9))
        disk = DiskGraph.from_edges(device, 400, kept)
        result = semi_external_dfs(disk, 3 * 400 + len(kept) // 4)
        assert sorted(result.order) == list(range(400))
        assert verify_dfs_tree(disk, result.tree).ok


class TestRelabelPipeline:
    def test_dfs_relabel_dfs(self, device):
        """Compute a DFS order, relabel by it, and DFS the relabelled
        graph — the locality-preprocessing workflow."""
        graph = power_law_graph(300, 4, seed=3)
        disk = DiskGraph.from_digraph(device, graph)
        memory = 3 * 300 + disk.edge_count // 4
        first = semi_external_dfs(disk, memory)
        relabelled = relabel_graph(disk, first.order)
        second = semi_external_dfs(relabelled, memory)
        assert verify_dfs_tree(relabelled, second.tree).ok
        assert sorted(second.order) == list(range(300))


class TestCheckpointPipeline:
    def test_checkpoint_travels_through_file(self, device):
        """Save a checkpoint, reload it, resume, verify — as a crashed
        long run would."""
        from repro.algorithms import edge_by_batch

        graph = power_law_graph(400, 5, seed=4)
        disk = DiskGraph.from_digraph(device, graph)
        memory = 3 * 400 + 150

        full = edge_by_batch(disk, memory, checkpoint_every=2)
        path = full.details.get("checkpoint")
        if path is None:
            pytest.skip("run converged before the first checkpoint")
        restored = load_tree(device, path)
        # the checkpointed tree is itself re-checkpointable
        second_path = save_tree(device, restored)
        assert os.path.exists(second_path)
        resumed = edge_by_batch(disk, memory, initial_tree=restored)
        assert verify_dfs_tree(disk, resumed.tree).ok


class TestAppsCompose:
    def test_condensation_is_a_dag(self, device):
        """SCCs from the semi-external Kosaraju feed a toposort of the
        condensation — the classic two-step analysis."""
        graph = power_law_graph(250, 4, seed=5)
        disk = DiskGraph.from_digraph(device, graph)
        memory = 3 * 250 + disk.edge_count // 4
        components = strongly_connected_components(disk, memory)
        component_of = {}
        for index, members in enumerate(components):
            for node in members:
                component_of[node] = index
        condensation_edges = [
            (component_of[u], component_of[v])
            for u, v in disk.scan()
            if component_of[u] != component_of[v]
        ]
        condensation = DiskGraph.from_edges(
            device, len(components), condensation_edges, validate=False
        )
        order = topological_order(
            condensation, 3 * len(components) + len(condensation_edges) + 8
        )
        position = {c: i for i, c in enumerate(order)}
        for u, v in condensation_edges:
            assert position[u] < position[v]

    def test_connectivity_summary_consistency(self, device):
        """Bridges are exactly the singleton biconnected components."""
        graph = power_law_graph(200, 2, seed=6)
        disk = DiskGraph.from_digraph(device, graph)
        memory = 3 * 200 + disk.edge_count
        report = connectivity_report(disk, memory)
        components = biconnected_components(disk, memory)
        singleton_edges = {
            next(iter(c)) for c in components if len(c) == 1
        }
        found_bridges = {
            (min(u, v), max(u, v)) for u, v in report.bridges
        }
        assert found_bridges == singleton_edges

    def test_weak_components_bound_everything(self, device):
        graph = power_law_graph(200, 3, seed=7)
        disk = DiskGraph.from_digraph(device, graph)
        memory = 3 * 200 + disk.edge_count // 3
        weak = weakly_connected_components(disk)
        strong = strongly_connected_components(disk, memory)
        # every SCC fits inside one weak component
        weak_of = {}
        for index, members in enumerate(weak):
            for node in members:
                weak_of[node] = index
        for members in strong:
            assert len({weak_of[n] for n in members}) == 1


class TestDAGPipeline:
    def test_schedule_then_verify(self, tmp_path, device):
        dag = random_dag(300, 1500, seed=8)
        path = str(tmp_path / "dag.txt")
        write_edge_list(path, dag.edges())
        disk = load_edge_list(path, device, node_count=300)
        order = topological_order(disk, 3 * 300 + 400)
        position = {n: i for i, n in enumerate(order)}
        violations = [(u, v) for u, v in disk.scan() if position[u] >= position[v]]
        assert violations == []
