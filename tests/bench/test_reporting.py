"""Tests for the paper-shaped table rendering."""

from repro.bench import ALGORITHM_LABELS, CellResult, render_csv, render_experiment


def cell(x, algorithm, time_seconds=1.0, ios=10, dnf=False):
    return CellResult(
        x=x, algorithm=algorithm, time_seconds=time_seconds, ios=ios,
        passes=3, divisions=1, node_count=100, edge_count=500, dnf=dnf,
    )


class TestRenderExperiment:
    def test_panels_present(self):
        rows = [cell("20%", "edge-by-batch"), cell("20%", "divide-td")]
        text = render_experiment("Fig.X", rows, "|E| kept")
        assert "Fig.X (a) Processing Time (s)" in text
        assert "Fig.X (b) # of I/Os (blocks)" in text
        assert "restructure passes" in text

    def test_paper_legend_names(self):
        rows = [
            cell("20%", "edge-by-batch"),
            cell("20%", "divide-star"),
            cell("20%", "divide-td"),
        ]
        text = render_experiment("F", rows, "x")
        assert "SEMI-DFS" in text
        assert "Divide-Star" in text
        assert "Divide-TD" in text
        assert ALGORITHM_LABELS["edge-by-batch"] == "SEMI-DFS"

    def test_dnf_rendering(self):
        rows = [cell("20%", "edge-by-batch", dnf=True), cell("20%", "divide-td")]
        text = render_experiment("F", rows, "x")
        assert "DNF" in text

    def test_row_order_follows_sweep(self):
        rows = [cell("20%", "a"), cell("40%", "a"), cell("100%", "a")]
        text = render_experiment("F", rows, "x")
        body = text.splitlines()
        position = {line.split()[0]: i for i, line in enumerate(body) if line}
        assert position["20%"] < position["40%"] < position["100%"]

    def test_missing_cell_rendered_as_dash(self):
        rows = [
            cell("20%", "a"),
            cell("40%", "a"),
            cell("20%", "b"),  # no 40% cell for b
        ]
        text = render_experiment("F", rows, "x")
        forty_line = next(l for l in text.splitlines() if l.startswith("40%"))
        assert forty_line.split()[-1] == "-"


class TestRenderCSV:
    def test_header_and_rows(self):
        rows = [cell("20%", "divide-td", time_seconds=1.2345, ios=42)]
        csv = render_csv(rows)
        lines = csv.splitlines()
        assert lines[0].startswith("x,algorithm,time_seconds,ios")
        assert ",dnf,kernel," in lines[0]
        assert "20%,divide-td,1.2345,42,3,1,100,500,0,0,0,python" in lines[1]

    def test_per_phase_columns(self):
        row = cell("20%", "divide-td")
        row.phase_seconds = {"restructure": 0.5, "solve": 0.25}
        row.phase_ios = {"restructure": 30, "solve": 12}
        csv = render_csv([row])
        header, body = csv.splitlines()
        for phase in ("restructure", "divide", "solve", "merge"):
            assert f"{phase}_seconds,{phase}_ios" in header
        columns = dict(zip(header.split(","), body.split(",")))
        assert columns["restructure_seconds"] == "0.5000"
        assert columns["restructure_ios"] == "30"
        assert columns["solve_ios"] == "12"
        # phases the run never entered render as zero, not blank
        assert columns["divide_ios"] == "0"
        assert columns["merge_seconds"] == "0.0000"

    def test_dnf_flag(self):
        csv = render_csv([cell("20%", "a", dnf=True)])
        columns = dict(zip(*[line.split(",") for line in csv.splitlines()]))
        assert columns["dnf"] == "1"
        assert columns["kernel"] == "python"

    def test_codec_columns(self):
        row = cell("20%", "divide-td")
        row.codec = "delta-varint"
        row.compression_ratio = 3.14159
        row.blocks_per_scan = 17
        csv = render_csv([row])
        columns = dict(zip(*[line.split(",") for line in csv.splitlines()]))
        assert columns["codec"] == "delta-varint"
        assert columns["compression_ratio"] == "3.142"
        assert columns["blocks_per_scan"] == "17"

    def test_codec_defaults_are_fixed32(self):
        csv = render_csv([cell("20%", "a")])
        columns = dict(zip(*[line.split(",") for line in csv.splitlines()]))
        assert columns["codec"] == "fixed32"
        assert columns["compression_ratio"] == "1.000"
