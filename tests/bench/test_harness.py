"""Tests for the benchmark harness (cell runner + DNF semantics)."""

import pytest

from repro.bench import CellResult, run_cell, run_series
from repro.graph import random_graph


class TestRunCell:
    def test_successful_cell(self):
        graph = random_graph(100, 3, seed=1)
        cell = run_cell(
            x="p1",
            algorithm="divide-td",
            node_count=100,
            edges=list(graph.edges()),
            memory=3 * 100 + 150,
            block_elements=64,
        )
        assert not cell.dnf
        assert cell.algorithm == "divide-td"
        assert cell.x == "p1"
        assert cell.node_count == 100
        assert cell.edge_count == graph.edge_count
        assert cell.ios > 0
        assert cell.time_seconds > 0

    def test_dnf_on_tiny_deadline(self):
        graph = random_graph(400, 5, seed=2)
        cell = run_cell(
            x=1,
            algorithm="edge-by-batch",
            node_count=400,
            edges=list(graph.edges()),
            memory=3 * 400 + 100,
            dnf_seconds=0.001,
            block_elements=64,
        )
        assert cell.dnf
        assert cell.passes == 0

    def test_start_node_forwarded(self):
        graph = random_graph(60, 3, seed=3)
        cell = run_cell(
            x=0,
            algorithm="divide-td",
            node_count=60,
            edges=list(graph.edges()),
            memory=3 * 60 + 100,
            start=42,
        )
        assert not cell.dnf

    def test_timeout_env_default(self, monkeypatch):
        from repro.bench import default_dnf_seconds

        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "123.5")
        assert default_dnf_seconds() == 123.5

    def test_run_series_cross_product(self):
        calls = []

        def cell(x, algorithm):
            calls.append((x, algorithm))
            return CellResult(
                x=x, algorithm=algorithm, time_seconds=0.0, ios=0,
                passes=0, divisions=0, node_count=0, edge_count=0,
            )

        rows = run_series([1, 2], ["a", "b"], cell)
        assert len(rows) == 4
        assert calls == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]


class TestExperimentDefinitions:
    def test_table1_parameters_match_paper(self):
        from repro.bench import SYNTHETIC_PARAMETERS as params

        assert params["node_sizes"] == [30_000, 40_000, 50_000, 60_000, 70_000]
        assert params["degrees"] == [3, 4, 5, 6, 7]
        assert params["power_law_ness"] == [0.25, 0.5, 1.0, 2.0, 4.0]
        assert params["memory_gb"] == [0.5, 0.75, 1.0, 1.25, 1.5]
        assert params["default_nodes"] == 50_000
        assert params["default_degree"] == 5

    def test_memory_mapping_respects_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        from repro.bench import default_nodes, memory_for_gb

        n = default_nodes()
        for gb in [0.5, 0.75, 1.0, 1.25, 1.5]:
            assert memory_for_gb(gb) >= 3 * n

    def test_memory_mapping_monotone(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        from repro.bench import memory_for_gb

        values = [memory_for_gb(gb) for gb in [0.5, 0.75, 1.0, 1.25, 1.5]]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_scale_env(self, monkeypatch):
        from repro.bench import bench_scale, default_nodes

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        assert bench_scale() == 0.02
        assert default_nodes() == 1000

    def test_exp1_memory_covers_webspam_tree(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        from repro.bench import exp1_memory, real_dataset_specs

        webspam = real_dataset_specs()["webspam-uk2007"]
        assert exp1_memory() >= 3 * webspam.node_count

    def test_workload_block_elements(self):
        from repro.bench.experiments import workload_block_elements

        assert workload_block_elements(512 * 1000) == 1000
        assert workload_block_elements(10) == 64  # floor

    @pytest.mark.slow
    def test_tiny_experiment_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.004")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "10")
        from repro.bench import exp3_vary_degree

        rows = exp3_vary_degree("power-law")
        assert len(rows) == 5 * 3  # 5 degrees x 3 algorithms
        assert all(cell.ios > 0 or cell.dnf for cell in rows)
