"""Tests for the division core: the four validity properties of Section 5.

node-coverage, contractibility, independence (edge-disjointness, Theorem
5.1), and DFS-preservability (Σ is a DAG, Theorem 6.1) are asserted for
real divisions produced on random graphs.
"""

import random

import pytest

from repro import DiskGraph, MemoryBudget
from repro.algorithms import (
    divide_with_cut,
    initial_star_tree,
    restructure,
    star_cut,
    build_cut_tree,
)
from repro.core.tree import VirtualNodeAllocator
from repro.graph import random_graph, power_law_graph


def prepared_division(device, graph, memory, cut="star", seed_passes=2):
    """Restructure a couple of passes, then attempt one division."""
    disk = DiskGraph.from_digraph(device, graph)
    allocator = VirtualNodeAllocator(graph.node_count)
    tree = initial_star_tree(disk, allocator)
    budget = MemoryBudget(memory)
    budget.charge("tree", budget.tree_charge(graph.node_count))
    for _ in range(seed_passes):
        outcome = restructure(disk.edge_file, tree, budget)
        tree = outcome.tree
        if not outcome.update:
            break
    if cut == "star":
        cut_nodes, expanded = star_cut(tree)
    else:
        cut_nodes, expanded = build_cut_tree(tree, sigma_budget=budget.available)
    division = divide_with_cut(disk.edge_file, tree, cut_nodes, expanded, allocator)
    return disk, tree, division


@pytest.fixture(params=["star", "td"])
def cut_kind(request):
    return request.param


class TestValidityProperties:
    def make(self, device, cut_kind, seed=11):
        graph = power_law_graph(400, 4, seed=seed)
        disk, tree, division = prepared_division(
            device, graph, 3 * 400 + 400, cut=cut_kind
        )
        assert division is not None, "expected a valid division on this input"
        return graph, disk, tree, division

    def test_node_coverage(self, device, cut_kind):
        """V(G_0) ∪ V(G_1) ∪ ... = V(G)   (plus virtual helpers)."""
        graph, disk, tree, division = self.make(device, cut_kind)
        covered = {n for n in division.t0.nodes if not division.t0.is_virtual(n)}
        for part in division.parts:
            covered.update(part.real_nodes)
        assert covered == set(range(graph.node_count))

    def test_contractible(self, device, cut_kind):
        """Every part is strictly smaller than the whole graph."""
        graph, disk, tree, division = self.make(device, cut_kind)
        for part in division.parts:
            assert len(part.real_nodes) < graph.node_count

    def test_independence_edge_disjoint(self, device, cut_kind):
        """Theorem 5.1: part edge sets are pairwise disjoint (by routing:
        every edge lands in at most one part file)."""
        graph, disk, tree, division = self.make(device, cut_kind)
        seen_budget = {}
        total_routed = 0
        original = list(disk.scan())
        multiset = {}
        for e in original:
            multiset[e] = multiset.get(e, 0) + 1
        for part in division.parts:
            for edge in part.edge_file.scan():
                assert multiset.get(edge, 0) > 0, f"edge {edge} over-assigned"
                multiset[edge] -= 1
                total_routed += 1
        assert total_routed <= len(original)

    def test_parts_contain_exactly_internal_edges(self, device, cut_kind):
        graph, disk, tree, division = self.make(device, cut_kind)
        for part in division.parts:
            members = set(part.real_nodes)
            part_edges = list(part.edge_file.scan())
            expected = [
                (u, v) for u, v in disk.scan() if u in members and v in members
            ]
            assert part_edges == expected

    def test_parts_share_only_roots(self, device, cut_kind):
        """Root-based division: V(G_i) ∩ V(G_j) = ∅ for i, j >= 1."""
        graph, disk, tree, division = self.make(device, cut_kind)
        seen = set()
        for part in division.parts:
            members = set(part.real_nodes)
            assert not (members & seen)
            seen.update(members)

    def test_sigma_is_dag(self, device, cut_kind):
        """Theorem 6.1: the division is DFS-preservable iff Σ is a DAG."""
        graph, disk, tree, division = self.make(device, cut_kind)
        assert division.sigma.is_dag()

    def test_sigma_nodes_equal_t0(self, device, cut_kind):
        graph, disk, tree, division = self.make(device, cut_kind)
        assert division.sigma.nodes == set(division.t0.nodes)

    def test_part_roots_are_t0_leaves(self, device, cut_kind):
        graph, disk, tree, division = self.make(device, cut_kind)
        leaves = {
            n for n in division.t0.preorder() if division.t0.first_child[n] is None
        }
        assert {part.root for part in division.parts} == leaves

    def test_part_trees_are_subtrees_of_t(self, device, cut_kind):
        graph, disk, tree, division = self.make(device, cut_kind)
        for part in division.parts:
            for node in part.tree.preorder():
                if node == part.root:
                    continue
                assert part.tree.parent[node] == tree.parent[node]


class TestInvalidDivisions:
    def test_single_child_root_returns_none(self, device):
        # a pure path: after restructure, γ has one child -> no division
        edges = [(i, i + 1) for i in range(49)]
        graph_nodes = 50
        from repro.graph import Digraph

        graph = Digraph.from_edges(graph_nodes, edges)
        disk, tree, division = prepared_division(
            device, graph, 3 * graph_nodes + 10, cut="star", seed_passes=1
        )
        assert division is None

    def test_empty_cut_returns_none(self, device):
        graph = random_graph(30, 3, seed=5)
        disk = DiskGraph.from_digraph(device, graph)
        allocator = VirtualNodeAllocator(30)
        tree = initial_star_tree(disk, allocator)
        assert divide_with_cut(disk.edge_file, tree, {tree.root}, set(), allocator) is None


class TestWideCut:
    """Regression: the T_0 build must stay linear on very wide cuts.

    A previous implementation drained the BFS queue with ``list.pop(0)``,
    which is quadratic in the cut width; a thousands-wide sibling group
    (disconnected micro-clusters) is exactly the shape that triggered it.
    """

    CLUSTERS = 1500
    SIZE = 3  # directed triangles: the smallest nontrivial SCC parts

    def triangle_clusters(self):
        from repro.graph import Digraph

        graph = Digraph(self.CLUSTERS * self.SIZE)
        for cluster in range(self.CLUSTERS):
            base = cluster * self.SIZE
            for i in range(self.SIZE):
                graph.add_edge(base + i, base + (i + 1) % self.SIZE)
        return graph

    def test_wide_flat_division_covers_every_cluster(self, device):
        graph = self.triangle_clusters()
        node_count = graph.node_count
        disk, tree, division = prepared_division(
            device, graph, 3 * node_count + 4000, cut="star", seed_passes=1
        )
        assert division is not None
        # one part per cluster: the cut is CLUSTERS siblings wide, and the
        # top-down T_0 build must enqueue every one of them exactly once
        assert division.part_count == self.CLUSTERS
        covered = sorted(
            node for part in division.parts for node in part.real_nodes
        )
        assert covered == list(range(node_count))
        for part in division.parts:
            assert part.edge_file.edge_count == self.SIZE
