"""Differential suite: semi-external BFS vs the in-memory deque oracle.

The oracle is the textbook queue BFS over adjacency lists held in RAM
(``collections.deque``).  Levels are *unique* — every correct BFS
assigns the same level to every node — so the semi-external levels must
match the oracle exactly, including ``None`` for unreached nodes, on
arbitrary digraphs with self-loops, multi-edges, and disconnected
pieces.  Parents are NOT unique (the oracle breaks ties in queue order,
the semi-external scan in edge-file order), so parents are validated by
property instead: a reached non-start node's parent is the tail of a
real graph edge sitting exactly one level above it.

The hypothesis strategy is shared with the DFS differential suite
(``tests/test_differential.py``); each test runs on every available
kernel backend, so one local run exercises ``>= 2 x max_examples``
generated cases.
"""

from collections import deque
from typing import List, Optional

import pytest
from hypothesis import HealthCheck, given, settings

from repro import BlockDevice, DiskGraph, semi_external_bfs
from repro.graph import Digraph
from repro.kernels import available_backends

from ..test_differential import digraphs

KERNELS = available_backends()

#: 100 examples per backend: with both kernels resolvable this drives
#: >= 200 generated cases through the oracle (the ISSUE acceptance bar).
bfs_settings = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def oracle_bfs_levels(graph: Digraph, start: int) -> List[Optional[int]]:
    """Textbook deque BFS; returns per-node levels (None = unreached)."""
    levels: List[Optional[int]] = [None] * graph.node_count
    levels[start] = 0
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if levels[v] is None:
                levels[v] = levels[u] + 1  # type: ignore[operator]
                queue.append(v)
    return levels


def assert_valid_bfs_result(result, graph: Digraph, start: int) -> None:
    """Structural validity: order, tree shape, and the parent property."""
    n = graph.node_count
    assert sorted(result.order) == list(range(n))
    assert len(result.levels) == n
    assert result.levels[start] == 0
    gamma = result.tree.root
    assert result.tree.is_virtual(gamma)
    edge_set = set(graph.edges())
    for v in range(n):
        level = result.levels[v]
        parent = result.tree.parent[v]
        if level is None or v == start:
            # unreached nodes and the start restart directly under γ
            assert parent == gamma
        else:
            assert (parent, v) in edge_set
            assert result.levels[parent] == level - 1


class TestLevelsMatchOracle:
    @pytest.mark.parametrize("backend", KERNELS)
    @bfs_settings
    @given(digraphs())
    def test_levels_equal_deque_bfs(self, backend, graph):
        with BlockDevice(block_elements=16, kernel=backend) as device:
            disk = DiskGraph.from_digraph(device, graph)
            result = semi_external_bfs(disk, 3 * graph.node_count + 50)
            assert result.levels == oracle_bfs_levels(graph, 0)
            assert_valid_bfs_result(result, graph, 0)

    @bfs_settings
    @given(digraphs())
    def test_levels_from_last_node_start(self, graph):
        """Start-node sweep: the source is data, not a constant."""
        start = graph.node_count - 1
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            result = semi_external_bfs(
                disk, 3 * graph.node_count + 50, start=start
            )
            assert result.levels == oracle_bfs_levels(graph, start)
            assert_valid_bfs_result(result, graph, start)


class TestTargetedShapes:
    """Deterministic cases for the shapes the strategy only sometimes hits."""

    def run(self, graph, start=None):
        with BlockDevice(block_elements=16) as device:
            disk = DiskGraph.from_digraph(device, graph)
            return semi_external_bfs(
                disk, 3 * graph.node_count + 50, start=start
            )

    def test_disconnected_graph(self):
        graph = Digraph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
        result = self.run(graph)
        assert result.levels == [0, 1, 2, None, None, None]
        assert result.reached_count == 3
        # unreached nodes restart under γ, after the start node
        gamma = result.tree.root
        assert [v for v in (3, 4, 5) if result.tree.parent[v] == gamma] == [3, 4, 5]

    def test_self_loops_do_not_advance_levels(self):
        graph = Digraph.from_edges(3, [(0, 0), (0, 1), (1, 1), (1, 2)])
        result = self.run(graph)
        assert result.levels == [0, 1, 2]

    def test_multi_edges_collapse(self):
        graph = Digraph.from_edges(3, [(0, 1)] * 7 + [(1, 2)] * 3)
        result = self.run(graph)
        assert result.levels == [0, 1, 2]
        assert result.passes == 3  # depth 2 + the fixpoint pass

    def test_shortcut_beats_long_path(self):
        # 0→1→2→3 and 0→3: level of 3 must be 1, parent 0.
        graph = Digraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        result = self.run(graph)
        assert result.levels == [0, 1, 2, 1]
        assert result.tree.parent[3] == 0

    def test_parent_is_first_scan_order_minimum(self):
        # Both (2,5)-style minimal-level parents exist; the edge file
        # preserves input order, so the first minimal tail wins.
        graph = Digraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        result = self.run(graph)
        assert result.levels == [0, 1, 1, 2]
        assert result.tree.parent[3] == 1

    def test_empty_graph(self):
        result = self.run(Digraph.from_edges(0, []))
        assert result.levels == []
        assert result.order == []

    def test_single_node_self_loop(self):
        result = self.run(Digraph.from_edges(1, [(0, 0)]))
        assert result.levels == [0]
        assert result.passes == 1
