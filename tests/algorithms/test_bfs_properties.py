"""Property-based invariants of semi-external BFS.

Levels obey the BFS triangle property, unreached ⇔ ``None``, the parent
of every reached non-start node sits one level up, and the whole result
— levels, parents, order, tree preorder, pass count, and I/O totals —
is bit-identical across kernel backends and block codecs, because each
relaxation pass is a pure function of the levels entering it.
"""

from hypothesis import HealthCheck, given, settings

from repro import BlockDevice, DiskGraph, Tracer, RunOptions, semi_external_bfs
from repro.core import check_spanning_tree
from repro.kernels import available_backends
from repro.obs import phase_totals

from ..test_differential import digraphs

KERNELS = available_backends()

property_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_bfs(graph, **kwargs):
    with BlockDevice(block_elements=16, **kwargs) as device:
        disk = DiskGraph.from_digraph(device, graph)
        return semi_external_bfs(disk, 3 * graph.node_count + 50)


def outcome_tuple(result):
    return (
        result.levels,
        result.order,
        result.tree.parent,
        list(result.tree.preorder()),
        result.passes,
        (result.io.reads, result.io.writes),
    )


@property_settings
@given(digraphs())
def test_level_invariants(graph):
    """parent level = child level − 1; unreached ⇔ level is None."""
    result = run_bfs(graph)
    edge_set = set(graph.edges())
    gamma = result.tree.root
    for v in range(graph.node_count):
        level = result.levels[v]
        parent = result.tree.parent[v]
        if level is None:
            assert parent == gamma  # unreached ⇒ a free restart under γ
        elif level == 0:
            assert v == 0 and parent == gamma
        else:
            assert (parent, v) in edge_set
            assert result.levels[parent] == level - 1
    # no edge may skip a level downward: level[v] <= level[u] + 1
    for u, v in graph.edges():
        lu, lv = result.levels[u], result.levels[v]
        if lu is not None:
            assert lv is not None and lv <= lu + 1


@property_settings
@given(digraphs())
def test_tree_spans_all_nodes_and_order_is_level_sorted(graph):
    result = run_bfs(graph)
    structure = check_spanning_tree(result.tree, range(graph.node_count))
    assert structure.ok, structure.problems
    # the order lists reached nodes by (level, id), then unreached by id
    reached = [v for v in result.order if result.levels[v] is not None]
    keys = [(result.levels[v], v) for v in reached]
    assert keys == sorted(keys)
    unreached = [v for v in result.order if result.levels[v] is None]
    assert unreached == sorted(unreached)
    assert result.order == reached + unreached


@property_settings
@given(digraphs())
def test_pass_count_is_depth_plus_one(graph):
    """Jacobi relaxation settles one level per pass, then proves the
    fixpoint: exactly depth(start) + 1 passes, never more."""
    result = run_bfs(graph)
    assert result.passes == result.depth + 1


@property_settings
@given(digraphs())
def test_run_is_deterministic(graph):
    assert outcome_tuple(run_bfs(graph)) == outcome_tuple(run_bfs(graph))


@property_settings
@given(digraphs())
def test_kernel_backends_bit_identical(graph):
    outcomes = [
        outcome_tuple(run_bfs(graph, kernel=backend)) for backend in KERNELS
    ]
    for other in outcomes[1:]:
        assert other == outcomes[0]


@property_settings
@given(digraphs())
def test_block_codecs_bit_identical(graph):
    """fixed32 vs delta-varint: blocks regroup, the result must not."""
    outcomes = [
        outcome_tuple(run_bfs(graph, block_codec=codec))
        for codec in ("fixed32", "delta-varint")
    ]
    # codecs change block counts, hence I/O; compare everything else
    assert outcomes[0][:5] == outcomes[1][:5]


def test_block_size_does_not_change_the_result():
    """Block boundaries move proposals between kernel calls; the frozen
    snapshot keeps the merged outcome identical."""
    from repro.graph import random_graph

    graph = random_graph(80, 4, seed=13)
    outcomes = []
    for block_elements in (4, 16, 64):
        with BlockDevice(block_elements=block_elements) as device:
            disk = DiskGraph.from_digraph(device, graph)
            result = semi_external_bfs(disk, 3 * 80 + 60)
            outcomes.append(outcome_tuple(result)[:5])
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_relax_and_checkpoint_spans_tile_the_io():
    """BFS's LEAF_PHASES spans partition the run's I/O exactly."""
    from repro.graph import random_graph

    graph = random_graph(60, 4, seed=7)
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        tracer = Tracer()
        from repro import semi_external_dfs

        result = semi_external_dfs(
            disk, 3 * 60 + 50, algorithm="bfs",
            options=RunOptions(tracer=tracer),
        )
        totals = phase_totals(result.events)
        assert set(totals) == {"relax", "checkpoint"}
        assert totals["relax"].calls == result.passes
        assert sum(t.io.reads for t in totals.values()) == result.io.reads
        assert sum(t.io.writes for t in totals.values()) == result.io.writes
        # every read happens in relax passes, every write in the seal
        assert totals["relax"].io.writes == 0
        assert totals["checkpoint"].io.reads == 0


def test_memory_budget_and_options_surface():
    """BFS enforces M >= 3|V| and accepts exactly the base options."""
    import pytest

    from repro import MemoryBudgetExceeded, semi_external_dfs
    from repro.graph import random_graph

    graph = random_graph(30, 3, seed=4)
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(MemoryBudgetExceeded):
            semi_external_bfs(disk, 3 * 30 - 1)
        with pytest.raises(ValueError, match="'workers'"):
            semi_external_dfs(
                disk, 3 * 30 + 50, algorithm="bfs",
                options=RunOptions(workers=2),
            )
        result = semi_external_dfs(
            disk, 3 * 30 + 50, algorithm="bfs",
            options=RunOptions(max_passes=40, deadline_seconds=60.0),
        )
        assert result.levels[0] == 0


def test_pass_cap_raises_convergence_error():
    import pytest

    from repro.errors import ConvergenceError
    from repro.graph import Digraph

    chain = Digraph.from_edges(6, [(i, i + 1) for i in range(5)])
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, chain)
        with pytest.raises(ConvergenceError, match="bfs"):
            semi_external_bfs(disk, 3 * 6 + 30, max_passes=2)
