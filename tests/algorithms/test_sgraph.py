"""Tests for S-edges, the summary graph Σ, and SCC-aware contraction."""

import random

import pytest

from repro.algorithms import SummaryGraph, contract_sigma_sccs, s_edge_endpoints
from repro.core import EdgeType, IntervalIndex, SpanningTree
from repro.core.tree import VirtualNodeAllocator
from repro.errors import InvalidDivisionError, NotADAGError


def fig5_tree() -> SpanningTree:
    """The paper's Fig. 5(a) spanning tree.

    A=0, B=1, C=2, D=3, E=4, F=5, G=6, H=7, I=8, J=9, K=10, L=11,
    M=12, N=13, O=14, P=15.  A's children: B, E, H, K;
    B -> {C, D}; E -> {F, G}; H -> {I, J}; K -> {L, M}; M -> {N, O};
    F -> P.
    """
    tree = SpanningTree()
    for node in range(16):
        tree.add_node(node)
    tree.root = 0
    for child, parent in [
        (1, 0), (4, 0), (7, 0), (10, 0),
        (2, 1), (3, 1), (5, 4), (6, 4), (8, 7), (9, 7),
        (11, 10), (12, 10), (13, 12), (14, 12), (15, 5),
    ]:
        tree.attach(child, parent)
    return tree


class TestSEdges:
    def test_paper_pushup_example(self):
        """(H, F) pushes up to the S-edge (H, E) in Fig. 5."""
        tree = fig5_tree()
        index = IntervalIndex(tree)
        a, b, lca = s_edge_endpoints(tree, index, 7, 5)  # (H, F)
        assert (a, b) == (7, 4)  # (H, E)
        assert lca == 0  # A

    def test_s_edge_endpoints_are_siblings(self):
        tree = fig5_tree()
        index = IntervalIndex(tree)
        rng = random.Random(3)
        for _ in range(200):
            u, v = rng.randrange(16), rng.randrange(16)
            if u == v:
                continue
            kind = index.classify(u, v)
            if kind not in (EdgeType.FORWARD_CROSS, EdgeType.BACKWARD_CROSS):
                continue
            a, b, lca = s_edge_endpoints(tree, index, u, v)
            assert tree.parent[a] == lca
            assert tree.parent[b] == lca
            assert a != b

    def test_s_edge_preserves_sides(self):
        """a is an ancestor-or-self of u; b of v."""
        tree = fig5_tree()
        index = IntervalIndex(tree)
        a, b, _ = s_edge_endpoints(tree, index, 15, 9)  # (P, J): deep cross
        assert index.is_ancestor(a, 15)
        assert index.is_ancestor(b, 9)

    def test_non_cross_edge_rejected(self):
        tree = fig5_tree()
        index = IntervalIndex(tree)
        with pytest.raises(InvalidDivisionError):
            s_edge_endpoints(tree, index, 0, 3)  # (A, D) is forward


class TestSummaryGraph:
    def test_add_and_dedup(self):
        sigma = SummaryGraph()
        for node in [0, 1, 2]:
            sigma.add_node(node)
        sigma.add_edge(0, 1)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 2)
        assert sigma.edge_count == 2

    def test_self_edges_ignored(self):
        sigma = SummaryGraph()
        sigma.add_node(0)
        sigma.add_edge(0, 0)
        assert sigma.edge_count == 0

    def test_edge_outside_node_set_rejected(self):
        sigma = SummaryGraph()
        sigma.add_node(0)
        with pytest.raises(InvalidDivisionError):
            sigma.add_edge(0, 5)

    def test_dag_detection(self):
        sigma = SummaryGraph()
        for node in range(3):
            sigma.add_node(node)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 2)
        assert sigma.is_dag()
        sigma.add_edge(2, 0)
        assert not sigma.is_dag()

    def test_topological_order_requires_dag(self):
        sigma = SummaryGraph()
        sigma.add_node(0)
        sigma.add_node(1)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 0)
        with pytest.raises(NotADAGError):
            sigma.topological_order()

    def test_contract_rewires_edges(self):
        sigma = SummaryGraph()
        for node in range(5):
            sigma.add_node(node)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 2)
        sigma.add_edge(2, 1)
        sigma.add_edge(2, 3)
        sigma.add_edge(4, 1)
        sigma.contract([1, 2], 99)
        assert sigma.nodes == {0, 3, 4, 99}
        assert sorted(sigma.edges()) == [(0, 99), (4, 99), (99, 3)]
        assert sigma.is_dag()

    def test_restrict(self):
        sigma = SummaryGraph()
        for node in range(4):
            sigma.add_node(node)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 3)
        sigma.restrict({0, 1})
        assert sigma.nodes == {0, 1}
        assert list(sigma.edges()) == [(0, 1)]


class TestContraction:
    def test_paper_example_eh_contraction(self):
        """Fig. 5/6(a): the SCC {E, H} contracts into a virtual node."""
        tree = fig5_tree()
        sigma = SummaryGraph()
        for node in [0, 1, 4, 7, 10]:  # A, B, E, H, K
            sigma.add_node(node)
        for child in [1, 4, 7, 10]:
            sigma.add_edge(0, child)
        # S-edges of the example: (B,EH) as (B,E), (E,H), (H,E), (K,E), (K,B)
        sigma.add_edge(1, 4)
        sigma.add_edge(4, 7)
        sigma.add_edge(7, 4)
        sigma.add_edge(10, 4)
        sigma.add_edge(10, 1)
        allocator = VirtualNodeAllocator(16)
        contractions = contract_sigma_sccs(sigma, tree, allocator)
        assert len(contractions) == 1
        virtual, members = contractions[0]
        assert virtual == 16
        assert members == [4, 7]  # E, H in sibling order
        assert sigma.is_dag()
        # the tree now has the virtual node between A and {E, H}
        assert tree.parent[virtual] == 0
        assert tree.parent[4] == virtual
        assert tree.parent[7] == virtual
        assert tree.is_virtual(virtual)
        # A's children: B, K, and the virtual node
        assert set(tree.child_list(0)) == {1, 10, virtual}

    def test_no_contraction_on_dag(self):
        tree = fig5_tree()
        sigma = SummaryGraph()
        for node in [0, 1, 4]:
            sigma.add_node(node)
        sigma.add_edge(0, 1)
        sigma.add_edge(1, 4)
        assert contract_sigma_sccs(sigma, tree, VirtualNodeAllocator(16)) == []

    def test_non_sibling_scc_rejected(self):
        tree = fig5_tree()
        sigma = SummaryGraph()
        sigma.add_node(1)   # B (child of A)
        sigma.add_node(2)   # C (child of B)  -- not siblings
        sigma.add_edge(1, 2)
        sigma.add_edge(2, 1)
        with pytest.raises(InvalidDivisionError):
            contract_sigma_sccs(sigma, tree, VirtualNodeAllocator(16))
