"""Tests for run tracing and checkpoint/resume."""

import pytest

from repro import DiskGraph
from repro.algorithms import divide_td_dfs, edge_by_batch
from repro.core import load_tree, verify_dfs_tree
from repro.errors import ConvergenceError
from repro.graph import power_law_graph


class TestTrace:
    def test_trace_off_by_default(self, device):
        graph = power_law_graph(300, 4, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        result = divide_td_dfs(disk, 3 * 300 + 200)
        assert result.trace == []

    def test_trace_records_levels(self, device):
        graph = power_law_graph(500, 5, seed=2)
        disk = DiskGraph.from_digraph(device, graph)
        result = divide_td_dfs(disk, 3 * 500 + 300, trace=True)
        events = {entry["event"] for entry in result.trace}
        assert "restructure" in events
        if result.divisions:
            assert "division" in events
            division_events = [
                e for e in result.trace if e["event"] == "division"
            ]
            assert len(division_events) == result.divisions
            for entry in division_events:
                assert entry["parts"] >= 2
                assert len(entry["part_sizes"]) == entry["parts"]
        if result.details.get("inmemory_solves"):
            assert "inmemory" in events

    def test_trace_depths_consistent(self, device):
        graph = power_law_graph(500, 5, seed=3)
        disk = DiskGraph.from_digraph(device, graph)
        result = divide_td_dfs(disk, 3 * 500 + 300, trace=True)
        max_traced = max((e["depth"] for e in result.trace), default=0)
        assert max_traced == result.max_depth


class TestCheckpointResume:
    def test_checkpoint_written_and_recorded(self, device):
        graph = power_law_graph(300, 4, seed=4)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_batch(disk, 3 * 300 + 200, checkpoint_every=1)
        assert result.passes >= 1
        assert "checkpoint" in result.details
        restored = load_tree(device, result.details["checkpoint"])
        assert restored.root == result.tree.root

    def test_interrupted_run_resumes_to_valid_tree(self, device):
        graph = power_law_graph(400, 5, seed=5)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ConvergenceError) as exc_info:
            edge_by_batch(disk, 3 * 400 + 150, max_passes=2, checkpoint_every=1)
        path = exc_info.value.checkpoint_path
        assert path

        restored = load_tree(device, path)
        resumed = edge_by_batch(disk, 3 * 400 + 150, initial_tree=restored)
        assert verify_dfs_tree(disk, resumed.tree).ok
        # resuming skips the work the first run already did
        full = edge_by_batch(disk, 3 * 400 + 150)
        assert resumed.passes <= full.passes

    def test_resume_excludes_start_and_order(self, device):
        graph = power_law_graph(100, 3, seed=6)
        disk = DiskGraph.from_digraph(device, graph)
        first = edge_by_batch(disk, 3 * 100 + 100, checkpoint_every=1)
        restored = load_tree(device, first.details["checkpoint"])
        with pytest.raises(ValueError):
            edge_by_batch(disk, 3 * 100 + 100, initial_tree=restored, start=3)

    def test_no_checkpoint_without_option(self, device):
        graph = power_law_graph(150, 3, seed=7)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_batch(disk, 3 * 150 + 150)
        assert "checkpoint" not in result.details

    def test_deadline_raise_takes_the_checkpoint_path(self, device):
        # an already-expired deadline aborts before the first pass ends
        # (per-pass check, plus per-batch via restructure's check_deadline);
        # with checkpointing on, the abort still writes a resumable tree
        graph = power_law_graph(200, 4, seed=8)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ConvergenceError, match="deadline") as exc_info:
            edge_by_batch(
                disk, 3 * 200 + 150, deadline_seconds=0.0, checkpoint_every=1,
            )
        path = exc_info.value.checkpoint_path
        assert path
        restored = load_tree(device, path)
        resumed = edge_by_batch(disk, 3 * 200 + 150, initial_tree=restored)
        assert verify_dfs_tree(disk, resumed.tree).ok
