"""Tests for the EdgeByEdge and EdgeByBatch (SEMI-DFS) baselines."""

import pytest

from repro import DiskGraph
from repro.algorithms import edge_by_batch, edge_by_edge
from repro.errors import ConvergenceError, MemoryBudgetExceeded
from repro.graph import (
    Digraph,
    directed_cycle,
    disconnected_clusters,
    grid_graph,
    random_dag,
    random_graph,
)

from ..conftest import assert_valid_dfs_result

SHAPES = [
    ("random", lambda: random_graph(150, 4, seed=1)),
    ("dag", lambda: random_dag(120, 500, seed=2)),
    ("cycle", lambda: directed_cycle(80)),
    ("grid", lambda: grid_graph(10, 10)),
    ("disconnected", lambda: disconnected_clusters([40, 50, 20], seed=3)),
    ("empty-edges", lambda: Digraph(30)),
    ("single-node", lambda: Digraph(1)),
]


@pytest.mark.parametrize("name,factory", SHAPES)
@pytest.mark.parametrize("algorithm", [edge_by_edge, edge_by_batch])
def test_valid_dfs_tree_on_shapes(device, name, factory, algorithm):
    graph = factory()
    disk = DiskGraph.from_digraph(device, graph)
    memory = 3 * max(graph.node_count, 1) + max(64, graph.edge_count // 4)
    result = algorithm(disk, memory)
    assert_valid_dfs_result(result, disk, graph)


class TestEdgeByEdge:
    def test_memory_below_3n_rejected(self, device):
        graph = random_graph(20, 2, seed=1)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(MemoryBudgetExceeded):
            edge_by_edge(disk, 3 * 20 - 1)

    def test_pass_cap_raises(self, device):
        graph = random_graph(100, 4, seed=2)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ConvergenceError):
            edge_by_edge(disk, 3 * 100 + 100, max_passes=1)

    def test_start_node_visited_first(self, device):
        graph = random_graph(60, 3, seed=3)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_edge(disk, 3 * 60 + 100, start=17)
        assert result.order[0] == 17

    def test_reattachment_counter_reported(self, device):
        graph = random_graph(60, 4, seed=4)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_edge(disk, 3 * 60 + 100)
        assert result.details["reattachments"] > 0

    def test_io_is_reads_only(self, device):
        graph = random_graph(40, 3, seed=5)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_edge(disk, 3 * 40 + 100)
        assert result.io.writes == 0
        assert result.io.reads > 0


class TestEdgeByBatch:
    def test_fewer_passes_with_more_memory(self, device_factory):
        graph = random_graph(200, 5, seed=6)
        low_dev, high_dev = device_factory(64), device_factory(64)
        low = edge_by_batch(
            DiskGraph.from_digraph(low_dev, graph), 3 * 200 + 150
        )
        high = edge_by_batch(
            DiskGraph.from_digraph(high_dev, graph), 3 * 200 + 5000
        )
        assert high.passes <= low.passes
        assert high.io.reads <= low.io.reads

    def test_external_stack_adds_write_io(self, device_factory):
        graph = random_graph(300, 4, seed=7)
        dev_a, dev_b = device_factory(16), device_factory(16)
        with_stack = edge_by_batch(
            DiskGraph.from_digraph(dev_a, graph), 3 * 300 + 400,
            use_external_stack=True,
        )
        without = edge_by_batch(
            DiskGraph.from_digraph(dev_b, graph), 3 * 300 + 400,
            use_external_stack=False,
        )
        assert without.io.writes == 0
        assert with_stack.io.total >= without.io.total
        # identical trees either way
        assert with_stack.order == without.order

    def test_pass_cap_raises(self, device):
        graph = random_graph(150, 5, seed=8)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ConvergenceError):
            edge_by_batch(disk, 3 * 150 + 100, max_passes=1)

    def test_restart_priority_order_respected(self, device):
        """γ-children of the result appear in the given priority order."""
        graph = random_graph(80, 3, seed=9)
        disk = DiskGraph.from_digraph(device, graph)
        priority = list(range(79, -1, -1))
        result = edge_by_batch(disk, 3 * 80 + 200, order=priority)
        roots = result.tree.child_list(result.tree.root)
        positions = {node: i for i, node in enumerate(priority)}
        root_positions = [positions[r] for r in roots]
        assert root_positions == sorted(root_positions)
        assert result.order[0] == 79

    def test_order_and_start_mutually_exclusive(self, device):
        graph = random_graph(10, 2, seed=10)
        disk = DiskGraph.from_digraph(device, graph)
        with pytest.raises(ValueError):
            edge_by_batch(disk, 3 * 10 + 50, start=1, order=list(range(10)))

    def test_batches_counted(self, device):
        graph = random_graph(100, 5, seed=11)
        disk = DiskGraph.from_digraph(device, graph)
        result = edge_by_batch(disk, 3 * 100 + 100)
        assert result.details["batches"] >= result.passes
