"""End-to-end property-based tests: every algorithm, arbitrary digraphs.

The single most important invariant of the whole library (DESIGN.md §7):
for ANY directed graph and ANY admissible memory budget, each of the four
algorithms must return a genuine DFS forest — spanning, forward-cross-free
on a full disk scan, real tree edges — and all four must agree that such a
tree exists.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BlockDevice, DiskGraph
from repro.algorithms import (
    divide_star_dfs,
    divide_td_dfs,
    edge_by_batch,
    edge_by_edge,
)
from repro.graph import Digraph

from ..conftest import assert_valid_dfs_result

ALGORITHMS = [edge_by_edge, edge_by_batch, divide_star_dfs, divide_td_dfs]


@st.composite
def digraphs(draw):
    """Arbitrary small digraphs, including self-loops and duplicates."""
    node_count = draw(st.integers(min_value=1, max_value=40))
    edge_count = draw(st.integers(min_value=0, max_value=4 * node_count))
    node = st.integers(min_value=0, max_value=node_count - 1)
    edges = draw(
        st.lists(st.tuples(node, node), min_size=edge_count, max_size=edge_count)
    )
    return Digraph.from_edges(node_count, edges)


@st.composite
def digraphs_with_budget(draw):
    graph = draw(digraphs())
    slack = draw(st.integers(min_value=1, max_value=2 * graph.node_count + 40))
    return graph, 3 * graph.node_count + slack


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@common_settings
@given(digraphs_with_budget())
def test_edge_by_edge_always_valid(case):
    graph, memory = case
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        assert_valid_dfs_result(edge_by_edge(disk, memory), disk, graph)


@common_settings
@given(digraphs_with_budget())
def test_edge_by_batch_always_valid(case):
    graph, memory = case
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        assert_valid_dfs_result(edge_by_batch(disk, memory), disk, graph)


@common_settings
@given(digraphs_with_budget())
def test_divide_star_always_valid(case):
    graph, memory = case
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        assert_valid_dfs_result(divide_star_dfs(disk, memory), disk, graph)


@common_settings
@given(digraphs_with_budget())
def test_divide_td_always_valid(case):
    graph, memory = case
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        assert_valid_dfs_result(divide_td_dfs(disk, memory), disk, graph)


@common_settings
@given(digraphs())
def test_all_algorithms_agree_on_start_node(graph):
    """With a fixed start node, every algorithm's order begins there."""
    start = graph.node_count - 1
    memory = 3 * graph.node_count + 50
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        for algorithm in ALGORITHMS:
            result = algorithm(disk, memory, start=start)
            assert result.order[0] == start


@common_settings
@given(digraphs())
def test_order_is_tree_preorder(graph):
    """DFSResult.order must equal the tree's real-node preorder."""
    memory = 3 * graph.node_count + 60
    with BlockDevice(block_elements=16) as device:
        disk = DiskGraph.from_digraph(device, graph)
        for algorithm in (edge_by_batch, divide_td_dfs):
            result = algorithm(disk, memory)
            preorder = [
                n for n in result.tree.preorder() if not result.tree.is_virtual(n)
            ]
            assert result.order == preorder
