"""Tests for the shared Restructure procedure (Algorithm 1, lines 7-16)."""

import math

from repro import DiskGraph, MemoryBudget
from repro.algorithms import initial_star_tree, restructure
from repro.core import verify_dfs_tree
from repro.core.tree import VirtualNodeAllocator
from repro.graph import random_graph


def setup_run(device, graph, memory):
    disk = DiskGraph.from_digraph(device, graph)
    allocator = VirtualNodeAllocator(graph.node_count)
    tree = initial_star_tree(disk, allocator)
    budget = MemoryBudget(memory)
    budget.charge("tree", budget.tree_charge(graph.node_count))
    return disk, tree, budget


class TestSinglePass:
    def test_pass_scans_whole_file_once(self, device_factory):
        device = device_factory(block_elements=16, block_codec="fixed32")
        graph = random_graph(50, 4, seed=1)
        disk, tree, budget = setup_run(device, graph, 3 * 50 + 1000)
        before = device.stats.snapshot()
        restructure(disk.edge_file, tree, budget)
        delta = device.stats.snapshot() - before
        assert delta.reads == math.ceil(graph.edge_count / 16)
        assert delta.writes == 0

    def test_update_flag_true_when_forward_cross_seen(self, device):
        graph = random_graph(50, 4, seed=2)
        disk, tree, budget = setup_run(device, graph, 3 * 50 + 1000)
        outcome = restructure(disk.edge_file, tree, budget)
        # from the id-ordered star, a random graph always has some
        # forward-cross edge (any edge (u, v) with u < v and u not an
        # ancestor yet)
        assert outcome.update

    def test_update_flag_false_on_converged_tree(self, device):
        graph = random_graph(50, 4, seed=3)
        disk, tree, budget = setup_run(device, graph, 3 * 50 + 10_000)
        outcome = restructure(disk.edge_file, tree, budget)
        while outcome.update:
            outcome = restructure(disk.edge_file, outcome.tree, budget)
        assert verify_dfs_tree(disk, outcome.tree).ok
        # one more pass confirms stability
        final = restructure(disk.edge_file, outcome.tree, budget)
        assert not final.update
        assert final.rebuilds == 0

    def test_batch_count_reflects_capacity(self, device):
        graph = random_graph(60, 5, seed=4)  # 300 edges
        disk, tree, budget = setup_run(device, graph, 3 * 60 + 75)
        outcome = restructure(disk.edge_file, tree, budget)
        # capacity 75 edges -> at least ceil(non-tree-edges / 75) batches
        assert outcome.batches >= 3

    def test_whole_graph_in_one_batch(self, device):
        graph = random_graph(60, 5, seed=5)
        disk, tree, budget = setup_run(device, graph, 3 * 60 + 10_000)
        outcome = restructure(disk.edge_file, tree, budget)
        assert outcome.batches == 1
        # a single batch over the full edge set IS an in-memory DFS:
        assert verify_dfs_tree(disk, outcome.tree).ok

    def test_budget_too_small_raises(self, device):
        graph = random_graph(10, 2, seed=6)
        disk, tree, budget = setup_run(device, graph, 3 * 10)
        try:
            restructure(disk.edge_file, tree, budget)
            raised = False
        except Exception:
            raised = True
        assert raised

    def test_tree_edges_skipped_for_memory(self, device):
        """A file that only contains current tree edges converges at once."""
        graph = random_graph(30, 3, seed=7)
        disk, tree, budget = setup_run(device, graph, 3 * 30 + 10_000)
        outcome = restructure(disk.edge_file, tree, budget)
        tree_only = DiskGraph.from_edges(
            device,
            31,
            [
                (u, v)
                for u, v in outcome.tree.tree_edges()
                if not outcome.tree.is_virtual(u)
            ],
            validate=False,
        )
        final = restructure(tree_only.edge_file, outcome.tree, budget)
        assert not final.update
        assert final.rebuilds == 0


class TestPerBatchDeadline:
    """The check_deadline callback must be able to abort a pass mid-scan."""

    def test_callback_fires_once_per_batch(self, device):
        graph = random_graph(200, 4, seed=8)
        # a tight budget forces many small batches within the single pass
        disk, tree, budget = setup_run(device, graph, 3 * 200 + 60)
        calls = []
        restructure(
            disk.edge_file, tree, budget,
            check_deadline=lambda: calls.append(None),
        )
        outcome_calls = len(calls)
        assert outcome_calls >= 2  # the pass genuinely ran in batches

    def test_raising_callback_aborts_the_pass(self, device):
        from repro.errors import ConvergenceError

        graph = random_graph(200, 4, seed=8)
        disk, tree, budget = setup_run(device, graph, 3 * 200 + 60)
        calls = []

        def expire_after_two():
            calls.append(None)
            if len(calls) >= 2:
                raise ConvergenceError("wall-clock deadline expired mid-pass")

        before = device.stats.snapshot()
        try:
            restructure(
                disk.edge_file, tree, budget, check_deadline=expire_after_two
            )
            raised = False
        except ConvergenceError:
            raised = True
        assert raised
        assert len(calls) == 2  # aborted at the second batch, not at the end
        # the aborted pass stopped reading: strictly fewer blocks than a scan
        delta = device.stats.snapshot() - before
        assert delta.reads < disk.edge_file.block_count
