"""Regression tests for the divide-family start-node priority.

ROADMAP recorded a hypothesis counterexample on multi-edge graphs where
``divide_star_dfs(start=...)`` returned an order that did not begin with
the requested start node, while the baselines honoured it.  The minimal
shrunk shape (found by re-running the hunt): heavy ``(0, 0)`` self-loop
multiplicity forces edge-at-a-time batches, the lone chain
``start -> 1 -> 0`` converges to ``0`` as a *sibling* of the start's
subtree, and a division taken at that point registers the S-edge
``(start, 0)`` in Σ — whose reverse topological order then forces part
``0`` before the start's part in the merge.  No sibling permutation can
honour the hint under that division; the fix vetoes it and keeps
restructuring instead (see ``_division_first_real`` in
``repro.algorithms.divide_conquer``).
"""

import os

import pytest

from repro import BlockDevice, DiskGraph
from repro.algorithms import divide_star_dfs, divide_td_dfs, edge_by_batch
from repro.graph import Digraph

from ..conftest import assert_valid_dfs_result

#: The shrunk counterexample: 26 copies of (0,0) fill the scan with
#: self-loops, (1,0) + (12,1) form the chain the start must follow.
COUNTEREXAMPLE_NODES = 13
COUNTEREXAMPLE_EDGES = [(0, 0)] * 26 + [(1, 0)] + [(12, 1)]
COUNTEREXAMPLE_START = 12

#: memory=40 is the minimum legal semi-external budget (3·13 + 1): the
#: graph (|V|+|E| = 41) misses the in-memory base case by one element,
#: so the run *must* divide — the configuration that dropped the hint.
TIGHT_MEMORY = 3 * COUNTEREXAMPLE_NODES + 1


@pytest.mark.parametrize(
    "algorithm", [divide_star_dfs, divide_td_dfs, edge_by_batch]
)
@pytest.mark.parametrize("memory", [TIGHT_MEMORY, 3 * COUNTEREXAMPLE_NODES + 50])
def test_start_hint_survives_division(algorithm, memory):
    with BlockDevice(block_elements=32) as device:
        graph = DiskGraph.from_edges(
            device, COUNTEREXAMPLE_NODES, COUNTEREXAMPLE_EDGES
        )
        result = algorithm(graph, memory=memory, start=COUNTEREXAMPLE_START)
        assert result.order[0] == COUNTEREXAMPLE_START
        # The whole chain must be followed depth-first from the start:
        # 12 -> 1 (edge (12,1)), then 1 -> 0 (edge (1,0)).
        assert result.order[:3] == [12, 1, 0]


def test_vetoed_division_leaves_no_part_files():
    """A vetoed division must delete its part files and its virtuals."""
    with BlockDevice(block_elements=32) as device:
        graph = DiskGraph.from_edges(
            device, COUNTEREXAMPLE_NODES, COUNTEREXAMPLE_EDGES
        )
        before = set(os.listdir(device.directory))
        result = divide_star_dfs(
            graph, memory=TIGHT_MEMORY, start=COUNTEREXAMPLE_START
        )
        assert result.order[0] == COUNTEREXAMPLE_START
        assert set(os.listdir(device.directory)) == before


def test_divide_agrees_with_baseline_on_counterexample():
    digraph = Digraph(COUNTEREXAMPLE_NODES)
    for u, v in COUNTEREXAMPLE_EDGES:
        digraph.add_edge(u, v)
    orders = {}
    for name, algorithm in (
        ("star", divide_star_dfs),
        ("td", divide_td_dfs),
        ("batch", edge_by_batch),
    ):
        with BlockDevice(block_elements=32) as device:
            graph = DiskGraph.from_digraph(device, digraph)
            result = algorithm(
                graph, memory=TIGHT_MEMORY, start=COUNTEREXAMPLE_START
            )
            assert_valid_dfs_result(result, graph, digraph)
            orders[name] = result.order
    assert orders["star"] == orders["batch"]
    assert orders["td"] == orders["batch"]
